"""Crash-safe model persistence: atomic saves, backups, corruption checks.

The serializers in this package produce text; this module owns getting
that text onto disk so that *no sequence of crashes leaves the model
file unreadable without a recovery path*:

* **atomic save** — serialize, write to a temporary sibling, flush +
  ``fsync``, then ``os.replace`` onto the real path (atomic on POSIX and
  Windows).  A crash mid-write tears only the temp file; the previous
  save stays intact.
* **backup retention** — before the swap, the current file is preserved
  as ``<path>.bak`` (hard link when the filesystem allows, copy
  otherwise), so even a logic error that commits garbage atomically
  still leaves the previous generation recoverable.
* **corruption detection** — every save embeds a SHA-256 digest of the
  payload (an XML trailer comment / a top-level JSON key, both invisible
  to the normal readers); :func:`load_model` verifies it and raises the
  typed, recoverable :class:`CorruptModelError` — carrying the backup
  path if one exists — instead of returning a silently wrong model on
  truncated or garbled input.

Fault-injection probes (``io.write``, ``io.write.partial``,
``io.replace``) cover the three crash windows; the chaos suite drives
them to show interrupted saves always leave a loadable state behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from typing import Iterable, Optional, Union

from .. import faults as _faults
from ..mof.errors import MofError
from ..mof.kernel import Element, MetaPackage
from ..mof.repository import Model, Repository
from .jsonio import read_json, write_json
from .reader import read_xml
from .writer import write_xml

_XML_DIGEST_RE = re.compile(
    r"\n?<!--repro:sha256:([0-9a-f]{64})-->\s*$")

_DIGEST_KEY = "sha256"


class PersistenceError(MofError):
    """Base class for model file persistence failures."""


class CorruptModelError(PersistenceError):
    """A model file failed to parse or failed its digest check.

    Recoverable by construction: ``backup_path`` points at the retained
    previous generation when one exists (load it, or pass
    ``fallback_to_backup=True`` to :func:`load_model`).
    """

    def __init__(self, path: str, reason: str,
                 backup_path: Optional[str] = None):
        self.path = path
        self.reason = reason
        self.backup_path = backup_path
        hint = (f"; previous generation retained at '{backup_path}'"
                if backup_path else "; no backup present")
        super().__init__(f"model file '{path}' is corrupt: {reason}{hint}")


def backup_path(path: Union[str, os.PathLike]) -> str:
    return os.fspath(path) + ".bak"


def _detect_format(path: str, format: Optional[str]) -> str:
    if format in ("xml", "json"):
        return format
    if format is not None:
        raise PersistenceError(f"unknown model format {format!r}")
    return "json" if path.endswith(".json") else "xml"


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Digest embedding / verification
# ---------------------------------------------------------------------------

def _seal_xml(payload: str) -> str:
    # a trailing comment is valid XML 'Misc' content after the document
    # element; ElementTree skips it on parse, so plain read_xml still works
    return f"{payload}\n<!--repro:sha256:{_digest(payload)}-->\n"


def _check_xml(text: str, path: str,
               backup: Optional[str]) -> str:
    match = _XML_DIGEST_RE.search(text)
    if match is None:
        return text                      # unsealed file (foreign tool): parse as-is
    payload = text[:match.start()]
    if _digest(payload) != match.group(1):
        raise CorruptModelError(
            path, "embedded SHA-256 digest does not match content "
                  "(truncated or modified after save)", backup)
    return payload


def _canonical_json(document: dict) -> str:
    body = {k: v for k, v in document.items() if k != _DIGEST_KEY}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _seal_json(payload: str, indent: int = 2) -> str:
    document = json.loads(payload)
    document[_DIGEST_KEY] = _digest(_canonical_json(document))
    return json.dumps(document, indent=indent)


def _check_json(text: str, path: str,
                backup: Optional[str]) -> str:
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise CorruptModelError(path, f"invalid JSON: {exc}", backup) \
            from exc
    if not isinstance(document, dict):
        raise CorruptModelError(
            path, "top level is not a JSON object", backup)
    stored = document.get(_DIGEST_KEY)
    if stored is not None \
            and stored != _digest(_canonical_json(document)):
        raise CorruptModelError(
            path, "embedded SHA-256 digest does not match content "
                  "(truncated or modified after save)", backup)
    return text                          # JsonReader ignores the digest key


# ---------------------------------------------------------------------------
# Atomic write
# ---------------------------------------------------------------------------

def atomic_write_text(path: Union[str, os.PathLike], text: str, *,
                      keep_backup: bool = True) -> None:
    """Write *text* to *path* with write-to-temp + fsync + atomic rename.

    When *keep_backup* is true and *path* already exists, the current
    content survives as ``<path>.bak``.  A crash (or injected fault) at
    any point leaves either the old generation, or the old generation
    plus a torn ``.tmp``/complete ``.bak`` — never a torn *path*.
    """
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    if _faults.ACTIVE is not None:
        _faults.probe("io.write")
    half = len(text) // 2
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text[:half])
            if _faults.ACTIVE is not None:
                # the torn-file crash: half a payload is on disk
                _faults.probe("io.write.partial")
            handle.write(text[half:])
            handle.flush()
            os.fsync(handle.fileno())
        if keep_backup and os.path.exists(path):
            bak = backup_path(path)
            try:
                if os.path.exists(bak):
                    os.remove(bak)
                os.link(path, bak)       # zero-copy where supported
            except OSError:
                shutil.copy2(path, bak)
        if _faults.ACTIVE is not None:
            _faults.probe("io.replace")
        os.replace(tmp_path, path)
    except BaseException:
        # best effort: do not leave temp droppings behind on failure
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    # persist the rename itself (directory entry) where the OS allows
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:                      # pragma: no cover - exotic fs
        return
    try:
        os.fsync(dir_fd)
    except OSError:                      # pragma: no cover
        pass
    finally:
        os.close(dir_fd)


# ---------------------------------------------------------------------------
# Model-level API
# ---------------------------------------------------------------------------

def serialize_model(source: Union[Model, Element], *,
                    format: str = "xmi") -> str:
    """The digest-sealed serialized text :func:`save_model` would write.

    For callers that stream to stdout or a transport instead of a file;
    the output round-trips through :func:`load_model` either way.
    """
    if format == "json":
        return _seal_json(write_json(source))
    if format in ("xmi", "xml"):
        return _seal_xml(write_xml(source))
    raise ValueError(f"unknown serialization format {format!r}; "
                     f"expected 'xmi' or 'json'")


def save_model(source: Union[Model, Element], path: Union[str, os.PathLike],
               *, format: Optional[str] = None,
               keep_backup: bool = True) -> str:
    """Serialize *source* and save it crash-safely; return the format used."""
    path = os.fspath(path)
    fmt = _detect_format(path, format)
    text = serialize_model(source, format=fmt)
    atomic_write_text(path, text, keep_backup=keep_backup)
    return fmt


def load_model(path: Union[str, os.PathLike],
               packages: Iterable[MetaPackage], *,
               profiles: Iterable = (),
               format: Optional[str] = None,
               repository: Optional[Repository] = None,
               fallback_to_backup: bool = False) -> Model:
    """Load a model file saved by :func:`save_model` (or any plain
    XMI/JSON document), verifying the embedded digest when present.

    Truncated, garbled or digest-mismatching input raises
    :class:`CorruptModelError`; with *fallback_to_backup* the retained
    ``.bak`` generation is loaded instead when one exists.
    """
    path = os.fspath(path)
    fmt = _detect_format(path, format)
    try:
        model = _load_checked(path, packages, profiles, fmt)
    except CorruptModelError as exc:
        if not (fallback_to_backup and exc.backup_path):
            raise
        # the backup keeps the primary's format (its name just adds .bak)
        model = _load_checked(exc.backup_path, packages, profiles, fmt)
    if repository is not None:
        repository.add_model(model)
    return model


def _load_checked(path: str, packages: Iterable[MetaPackage],
                  profiles: Iterable, fmt: str) -> Model:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    bak = backup_path(path)
    backup = bak if os.path.exists(bak) else None
    if not text.strip():
        raise CorruptModelError(path, "file is empty", backup)
    if fmt == "json":
        payload = _check_json(text, path, backup)
        try:
            return read_json(payload, packages, profiles=profiles)
        except CorruptModelError:
            raise
        except Exception as exc:  # noqa: BLE001 - typed re-raise
            raise CorruptModelError(
                path, f"JSON model rejected: {exc}", backup) from exc
    payload = _check_xml(text, path, backup)
    try:
        return read_xml(payload, packages, profiles=profiles)
    except Exception as exc:  # noqa: BLE001 - typed re-raise
        raise CorruptModelError(
            path, f"XML model rejected: {exc}", backup) from exc
