"""JSON serialization of models — same information as the XML dialect, in
a shape convenient for web tooling and diffing."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from ..mof.errors import RepositoryError
from ..mof.kernel import Attribute, Element, MetaPackage, Reference
from ..mof.repository import Model, Repository
from ..obs import trace as _trace
from .ids import assign_ids
from .reader import TypeRegistry, _stereotype_registry
from .writer import _observe_io, _should_serialize, _type_label


def to_dict(element: Element, ids: Dict[int, str]) -> Dict[str, Any]:
    """One element (and its containment subtree) as plain dicts."""
    out: Dict[str, Any] = {
        "type": _type_label(element),
        "id": ids[id(element)],
    }
    attrs: Dict[str, Any] = {}
    children: Dict[str, List[Dict[str, Any]]] = {}
    refs: Dict[str, List[str]] = {}
    for feature in element.meta.all_features().values():
        if not _should_serialize(feature):
            continue
        if isinstance(feature, Attribute):
            if feature.many:
                values = list(element.eget(feature.name))
                if values:
                    attrs[feature.name] = values
            elif element.eis_set(feature.name):
                value = element.eget(feature.name)
                if value is not None:
                    attrs[feature.name] = value
        elif feature.containment:
            value = element.eget(feature.name)
            kids = list(value) if feature.many else (
                [value] if value is not None else [])
            if kids:
                children[feature.name] = [to_dict(kid, ids) for kid in kids]
        else:
            value = element.eget(feature.name)
            targets = list(value) if feature.many else (
                [value] if value is not None else [])
            target_ids = [ids[id(t)] for t in targets if id(t) in ids]
            if target_ids:
                refs[feature.name] = target_ids
    if attrs:
        out["attrs"] = attrs
    if children:
        out["children"] = children
    if refs:
        out["refs"] = refs
    stereotypes = _stereotype_dicts(element)
    if stereotypes:
        out["stereotypes"] = stereotypes
    return out


def _stereotype_dicts(element: Element) -> List[Dict[str, Any]]:
    from ..profiles.base import applications_of
    out: List[Dict[str, Any]] = []
    for application in applications_of(element):
        stereotype = application.stereotype
        out.append({
            "profile": stereotype.profile.name if stereotype.profile
            else "",
            "name": stereotype.name,
            "values": dict(application.values),
        })
    return out


def write_json(source: Union[Model, Element], *, indent: int = 2,
               uri: str = "urn:model", name: str = "model") -> str:
    """Serialize a model or a single root element to JSON text."""
    if isinstance(source, Model):
        roots, uri, name = list(source.roots), source.uri, source.name
    else:
        roots = [source]
    def _build() -> str:
        ids = assign_ids(roots)
        document = {
            "uri": uri,
            "name": name,
            "version": "1.0",
            "roots": [to_dict(root, ids) for root in roots],
        }
        return json.dumps(document, indent=indent)

    if _trace.ON:
        with _trace.span("xmi.write", format="json") as sp:
            text = _build()
        _observe_io(sp, "xmi.write", "json", roots, len(text))
        return text
    return _build()


class JsonReader:
    def __init__(self, packages: Iterable[MetaPackage],
                 profiles: Iterable = ()):
        self.registry = TypeRegistry(packages)
        self._stereotypes = _stereotype_registry(profiles)
        self._by_id: Dict[str, Element] = {}
        self._pending: List[tuple] = []

    def read(self, text: str) -> Model:
        document = json.loads(text)
        model = Model(document.get("uri", "urn:model"),
                      document.get("name"))
        self._by_id.clear()
        self._pending.clear()
        for root_dict in document.get("roots", []):
            model.add_root(self._build(root_dict))
        self._resolve()
        return model

    def _build(self, data: Dict[str, Any]) -> Element:
        metaclass = self.registry.resolve(data["type"])
        element = metaclass.instantiate()
        doc_id = data.get("id")
        if doc_id:
            element.set_eid(doc_id)
            self._by_id[doc_id] = element
        for name, value in data.get("attrs", {}).items():
            feature = metaclass.find_feature(name)
            if not isinstance(feature, Attribute):
                raise RepositoryError(f"'{metaclass.name}' has no attribute "
                                      f"{name!r}")
            if feature.many:
                element.eget(name).extend(value)
            else:
                element.eset(name, value)
        for name, child_dicts in data.get("children", {}).items():
            feature = metaclass.find_feature(name)
            if not isinstance(feature, Reference) or not feature.containment:
                raise RepositoryError(f"'{metaclass.name}' has no containment "
                                      f"feature {name!r}")
            for child_dict in child_dicts:
                child = self._build(child_dict)
                if feature.many:
                    element.eget(name).append(child)
                else:
                    element.eset(name, child)
        for name, target_ids in data.get("refs", {}).items():
            self._pending.append((element, name, target_ids))
        for stereotype_dict in data.get("stereotypes", []):
            label = (f"{stereotype_dict.get('profile', '')}:"
                     f"{stereotype_dict.get('name', '')}")
            stereotype = self._stereotypes.get(label)
            if stereotype is None:
                raise RepositoryError(
                    f"unknown stereotype {label!r}; pass its profile to "
                    f"the reader")
            stereotype.apply(element, **stereotype_dict.get("values", {}))
        return element

    def _resolve(self) -> None:
        for element, name, target_ids in self._pending:
            feature = element.meta.find_feature(name)
            if not isinstance(feature, Reference):
                raise RepositoryError(f"'{element.meta.name}' has no "
                                      f"reference {name!r}")
            targets = []
            for target_id in target_ids:
                target = self._by_id.get(target_id)
                if target is None:
                    raise RepositoryError(f"dangling reference {target_id!r}")
                targets.append(target)
            if feature.many:
                collection = element.eget(name)
                for target in targets:
                    if target not in collection:
                        collection.append(target)
                # restore the serialized order (opposites may have
                # pre-populated the collection in document order)
                for position, target in enumerate(targets):
                    if collection[position] is not target:
                        collection.move(position, target)
            elif targets and element.eget(name) is not targets[0]:
                element.eset(name, targets[0])


def read_json(text: str, packages: Iterable[MetaPackage], *,
              profiles: Iterable = (),
              repository: Optional[Repository] = None) -> Model:
    """Parse JSON text into a fresh :class:`Model` (see :func:`read_xml`
    for the *profiles* parameter)."""
    if _trace.ON:
        with _trace.span("xmi.read", format="json") as sp:
            model = JsonReader(packages, profiles).read(text)
        _observe_io(sp, "xmi.read", "json", model, len(text))
    else:
        model = JsonReader(packages, profiles).read(text)
    if repository is not None:
        repository.add_model(model)
    return model
