"""``repro.xmi`` — model interchange: XMI-style XML and JSON.

* :func:`write_xml` / :func:`read_xml`
* :func:`write_json` / :func:`read_json`
* :class:`TypeRegistry` for label → metaclass resolution
"""

from .ids import assign_ids
from .jsonio import read_json, write_json
from .reader import TypeRegistry, XmiReader, read_xml
from .writer import XmiWriter, write_xml

__all__ = [
    "TypeRegistry", "XmiReader", "XmiWriter", "assign_ids", "read_json",
    "read_xml", "write_json", "write_xml",
]
