"""``repro.xmi`` — model interchange: XMI-style XML and JSON.

* :func:`write_xml` / :func:`read_xml`
* :func:`write_json` / :func:`read_json`
* :class:`TypeRegistry` for label → metaclass resolution
* crash-safe files: :func:`save_model` / :func:`load_model`
  (atomic rename, ``.bak`` retention, digest-verified loads raising
  :class:`CorruptModelError`)
"""

from .ids import assign_ids
from .jsonio import read_json, write_json
from .persist import (
    CorruptModelError,
    PersistenceError,
    atomic_write_text,
    backup_path,
    load_model,
    save_model,
    serialize_model,
)
from .reader import TypeRegistry, XmiReader, read_xml
from .writer import XmiWriter, write_xml

__all__ = [
    "CorruptModelError", "PersistenceError", "TypeRegistry", "XmiReader",
    "XmiWriter", "assign_ids", "atomic_write_text", "backup_path",
    "load_model", "read_json",
    "read_xml", "save_model", "serialize_model", "write_json", "write_xml",
]
