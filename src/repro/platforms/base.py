"""The platform description metamodel.

A *platform model* describes the target onto which a PIM is mapped: its
execution engines (threads, tasks, ISRs, hardware modules), communication
mechanisms (queues, signals, buses), services, resource limits and its
native data types.  Transformations take the whole platform model as a
parameter — keeping every platform fact out of the domain model, which is
the separation the paper calls "the key to success".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mof import (
    Attribute,
    Element,
    M_0N,
    MBoolean,
    MInteger,
    MetaEnum,
    MetaPackage,
    MReal,
    MString,
    Reference,
)

PLATFORM = MetaPackage("platform", uri="urn:repro:platform")

ServiceKind = MetaEnum(
    "ServiceKind",
    ["scheduling", "communication", "storage", "timing", "io", "fault"],
    package=PLATFORM)

EngineKind = MetaEnum(
    "EngineKind",
    ["process", "thread", "task", "isr", "hw_module", "virtual_machine"],
    package=PLATFORM)

CommKind = MetaEnum(
    "CommKind",
    ["queue", "shared_memory", "signal", "rpc", "bus", "topic"],
    package=PLATFORM)


class PlatformElement(Element):
    _mof_package = PLATFORM
    _mof_abstract = True

    name = Attribute(MString)

    def __repr__(self) -> str:
        label = f" '{self.name}'" if self.name else ""
        return f"<{self.meta.name}{label}>"


class PlatformType(PlatformElement):
    """A native data type of the platform (e.g. ``int32_t``)."""

    bits = Attribute(MInteger, 32)
    is_signed = Attribute(MBoolean, True)
    is_floating = Attribute(MBoolean, False)


class TypeMapping(PlatformElement):
    """Maps a PIM primitive type name to a platform type."""

    pim_type = Attribute(MString, doc="PIM type name, e.g. 'Integer'.")
    platform_type = Reference(PlatformType)


class PlatformService(PlatformElement):
    """A named capability with an invocation overhead."""

    kind = Attribute(ServiceKind, "scheduling")
    overhead_us = Attribute(MReal, 0.0,
                            doc="Per-invocation overhead in microseconds.")


class ExecutionEngine(PlatformElement):
    """A unit of execution the platform can schedule."""

    kind = Attribute(EngineKind, "thread")
    context_switch_us = Attribute(MReal, 1.0)
    supports_priorities = Attribute(MBoolean, True)
    priority_levels = Attribute(MInteger, 32)
    max_instances = Attribute(MInteger, -1, doc="-1 = unbounded.")
    stack_bytes = Attribute(MInteger, 4096)


class CommunicationMechanism(PlatformElement):
    """A way for engines to exchange data."""

    kind = Attribute(CommKind, "queue")
    latency_us = Attribute(MReal, 10.0)
    is_reliable = Attribute(MBoolean, True)
    is_synchronous = Attribute(MBoolean, False)
    max_message_bytes = Attribute(MInteger, 256)
    depth = Attribute(MInteger, 16, doc="Default queue depth, if queued.")


class ResourceBudget(PlatformElement):
    """A platform-wide capacity limit."""

    resource = Attribute(MString, doc="e.g. 'memory_kb', 'timers'.")
    capacity = Attribute(MInteger, 0)


class PlatformModel(PlatformElement):
    """The root of one platform description."""

    description = Attribute(MString)
    vendor = Attribute(MString)
    is_real_time = Attribute(MBoolean, False)
    types = Reference(PlatformType, containment=True, multiplicity=M_0N)
    type_mappings = Reference(TypeMapping, containment=True,
                              multiplicity=M_0N)
    services = Reference(PlatformService, containment=True,
                         multiplicity=M_0N)
    engines = Reference(ExecutionEngine, containment=True, multiplicity=M_0N)
    comms = Reference(CommunicationMechanism, containment=True,
                      multiplicity=M_0N)
    budgets = Reference(ResourceBudget, containment=True, multiplicity=M_0N)

    # -- construction helpers -------------------------------------------

    def add_type(self, name: str, *, bits: int = 32, is_signed: bool = True,
                 is_floating: bool = False) -> PlatformType:
        platform_type = PlatformType(name=name, bits=bits,
                                     is_signed=is_signed,
                                     is_floating=is_floating)
        self.types.append(platform_type)
        return platform_type

    def map_type(self, pim_type: str, platform_type: PlatformType
                 ) -> TypeMapping:
        mapping = TypeMapping(pim_type=pim_type,
                              platform_type=platform_type)
        self.type_mappings.append(mapping)
        return mapping

    def add_engine(self, name: str, kind: str, **attrs) -> ExecutionEngine:
        engine = ExecutionEngine(name=name, kind=kind, **attrs)
        self.engines.append(engine)
        return engine

    def add_comm(self, name: str, kind: str, **attrs
                 ) -> CommunicationMechanism:
        comm = CommunicationMechanism(name=name, kind=kind, **attrs)
        self.comms.append(comm)
        return comm

    def add_service(self, name: str, kind: str, **attrs) -> PlatformService:
        service = PlatformService(name=name, kind=kind, **attrs)
        self.services.append(service)
        return service

    # -- lookup ----------------------------------------------------------

    def type_for(self, pim_type_name: str) -> Optional[PlatformType]:
        """The platform type a PIM primitive maps to."""
        for mapping in self.type_mappings:
            if mapping.pim_type == pim_type_name:
                return mapping.platform_type
        return None

    def engine_for(self, *preferred_kinds: str) -> Optional[ExecutionEngine]:
        """The first engine matching the preference order, else any."""
        for kind in preferred_kinds:
            for engine in self.engines:
                if engine.kind == kind:
                    return engine
        return self.engines[0] if len(self.engines) else None

    def comm_for(self, *preferred_kinds: str
                 ) -> Optional[CommunicationMechanism]:
        for kind in preferred_kinds:
            for comm in self.comms:
                if comm.kind == kind:
                    return comm
        return self.comms[0] if len(self.comms) else None

    def service_named(self, name: str) -> Optional[PlatformService]:
        for service in self.services:
            if service.name == name:
                return service
        return None

    def platform_type_names(self) -> List[str]:
        return [t.name for t in self.types]
