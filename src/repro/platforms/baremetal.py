"""A bare-metal hardware platform description.

Models the "hardware aspects" the paper says UML is particularly lacking
for: no OS, hardware modules as execution engines, signals/wires for
communication, narrow fixed-width types and a tight memory budget.
"""

from __future__ import annotations

from ..transform.engine import Transformation
from .base import PlatformModel, ResourceBudget
from .mapping import make_pim_to_psm


def baremetal_platform() -> PlatformModel:
    """Build the bare-metal hardware platform model."""
    platform = PlatformModel(
        name="baremetal_hw",
        description="bare-metal microcontroller / ASIC-like target",
        vendor="repro", is_real_time=True)

    int16 = platform.add_type("int16_t", bits=16)
    platform.add_type("uint8_t", bits=8, is_signed=False)
    fixed = platform.add_type("q15_t", bits=16)   # Q15 fixed-point for Real
    flag = platform.add_type("bit", bits=1, is_signed=False)
    text = platform.add_type("char[16]", bits=128, is_signed=False)

    platform.map_type("Integer", int16)
    platform.map_type("Real", fixed)
    platform.map_type("Boolean", flag)
    platform.map_type("String", text)

    platform.add_engine("hw_fsm", "hw_module", context_switch_us=0.0,
                        supports_priorities=False, priority_levels=1,
                        stack_bytes=0)
    platform.add_engine("main_loop_task", "task", context_switch_us=0.5,
                        priority_levels=4, stack_bytes=512)
    platform.add_engine("irq", "isr", context_switch_us=0.2,
                        priority_levels=8, stack_bytes=256)

    platform.add_comm("wire", "signal", latency_us=0.01, is_reliable=True,
                      is_synchronous=True, max_message_bytes=4, depth=1)
    platform.add_comm("ring_buffer", "queue", latency_us=0.5, depth=8,
                      max_message_bytes=16)

    platform.add_service("tick_timer", "timing", overhead_us=0.1)
    platform.add_service("gpio", "io", overhead_us=0.05)

    platform.budgets.append(ResourceBudget(name="memory_kb",
                                           resource="memory_kb",
                                           capacity=64))
    platform.budgets.append(ResourceBudget(name="timers",
                                           resource="timers", capacity=4))
    return platform


def baremetal_transformation() -> Transformation:
    """The generic PIM→PSM engine instantiated for bare metal."""
    return make_pim_to_psm(baremetal_platform())
