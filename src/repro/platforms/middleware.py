"""A publish/subscribe message-bus middleware platform description.

Represents the distributed-middleware targets (CORBA-era in the paper's
timeframe; topic buses today): processes as engines, topics as the
communication mechanism, marshalled wide types, higher latencies, built-in
fault-tolerance services.
"""

from __future__ import annotations

from ..transform.engine import Transformation
from .base import PlatformModel, ResourceBudget
from .mapping import make_pim_to_psm


def middleware_platform() -> PlatformModel:
    """Build the message-bus middleware platform model."""
    platform = PlatformModel(
        name="msgbus_mw",
        description="publish/subscribe middleware over a message bus",
        vendor="repro", is_real_time=False)

    int64 = platform.add_type("Int64", bits=64)
    float64 = platform.add_type("Float64", bits=64, is_floating=True)
    utf8 = platform.add_type("Utf8String", bits=0, is_signed=False)
    boolean = platform.add_type("Bool", bits=8, is_signed=False)

    platform.map_type("Integer", int64)
    platform.map_type("Real", float64)
    platform.map_type("String", utf8)
    platform.map_type("Boolean", boolean)

    platform.add_engine("service_process", "process",
                        context_switch_us=100.0, priority_levels=10,
                        stack_bytes=1 << 22)
    platform.add_engine("worker_thread", "thread", context_switch_us=8.0,
                        priority_levels=10, stack_bytes=1 << 18)

    platform.add_comm("topic_bus", "topic", latency_us=500.0, depth=1024,
                      max_message_bytes=1 << 16)
    platform.add_comm("rpc_call", "rpc", latency_us=800.0,
                      is_synchronous=True, max_message_bytes=1 << 16)

    platform.add_service("broker", "communication", overhead_us=120.0)
    platform.add_service("replication", "fault", overhead_us=300.0)
    platform.add_service("persistence", "storage", overhead_us=1000.0)

    platform.budgets.append(ResourceBudget(name="memory_kb",
                                           resource="memory_kb",
                                           capacity=8 * 1024 * 1024))
    return platform


def middleware_transformation() -> Transformation:
    """The generic PIM→PSM engine instantiated for the middleware."""
    return make_pim_to_psm(middleware_platform())
