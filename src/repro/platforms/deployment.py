"""Deployment allocation: PSM → component & deployment model.

The last mapping step of the MDA chain: active PSM classes become
components with ports derived from their channels, components are
manifested by artifacts, and artifacts are deployed onto an execution
node description derived from the platform model.  The output is a plain
UML package (components/artifacts/nodes), so it serializes, diffs and
validates like everything else.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mof.query import instances_of
from ..uml import (
    Artifact,
    Behavior,
    Clazz,
    Component,
    Connector,
    Deployment,
    ExecutionNode,
    Interface,
    Operation,
    Package,
)
from .base import PlatformModel
from .footprint import estimate_footprint


def _channel_classes(psm_root: Package) -> List[Clazz]:
    """Channel classes produced by the mapping (``*_queue``/``*_topic``/
    ``*_signal``...)."""
    suffixes = ("_queue", "_topic", "_signal", "_bus", "_rpc",
                "_shared_memory")
    return [cls for cls in instances_of(psm_root, Clazz)
            if not isinstance(cls, Behavior)
            and cls.name.endswith(suffixes)]


def allocate(psm_root: Package, platform: PlatformModel, *,
             node_name: Optional[str] = None) -> Package:
    """Build the deployment model for *psm_root* on *platform*."""
    deployment_pkg = Package(
        name=f"{psm_root.name}_deployment")

    # the target node, described from the platform
    memory_kb = 0
    for budget in platform.budgets:
        if budget.resource == "memory_kb":
            memory_kb = budget.capacity
    node = ExecutionNode(
        name=node_name or f"{platform.name}_node",
        memory_kb=memory_kb,
        is_real_time=platform.is_real_time)
    deployment_pkg.add(node)

    channels = _channel_classes(psm_root)
    channel_interfaces: Dict[int, Interface] = {}
    for channel in channels:
        interface = Interface(name=f"I{channel.name}")
        for operation in channel.all_operations():
            interface.owned_operations.append(
                Operation(name=operation.name))
        deployment_pkg.add(interface)
        channel_interfaces[id(channel)] = interface

    # one component per active class; ports from the channels whose name
    # embeds the class's associations
    components: Dict[str, Component] = {}
    for cls in instances_of(psm_root, Clazz):
        if isinstance(cls, Behavior) or not cls.is_active:
            continue
        component = Component(name=f"{cls.name}Component")
        component.realizing_classes.append(cls)
        deployment_pkg.add(component)
        components[cls.name] = component

    # wire ports: a channel '<assoc>_<kind>' realises the association
    # '<assoc>' of the PSM; its two end types name the components
    from ..uml import Association
    associations = {a.name: a
                    for a in instances_of(psm_root, Association)}
    connectors: List[Connector] = []
    for channel in channels:
        interface = channel_interfaces[id(channel)]
        association_name = channel.name.rsplit("_", 1)[0]
        association = associations.get(association_name)
        ends: List[Component] = []
        if association is not None:
            for end in association.member_ends:
                if end.type is not None:
                    component = components.get(end.type.name)
                    if component is not None:
                        ends.append(component)
        if len(ends) < 2:
            continue            # dangling channel: nothing to wire
        provider, consumer = ends[0], ends[1]
        out_port = provider.add_port(f"{channel.name}_out",
                                     required=interface)
        in_port = consumer.add_port(f"{channel.name}_in",
                                    provided=interface)
        connector = Connector.between(out_port, in_port,
                                      name=channel.name)
        deployment_pkg.add(connector)
        connectors.append(connector)

    # artifacts: one per component, deployed on the node
    for component in components.values():
        artifact = Artifact(name=f"{component.name}.bin",
                            file_name=f"{component.name.lower()}.bin")
        artifact.manifested_components.append(component)
        deployment_pkg.add(artifact)
        node.deploy(artifact)
        deployment_pkg.add(Deployment(
            name=f"deploy_{component.name}",
            location=node, deployed_artifact=artifact))
    return deployment_pkg


def deployment_fits(psm_root: Package, platform: PlatformModel, *,
                    instances: Optional[Dict[str, int]] = None) -> bool:
    """Does the allocated system fit the node's memory budget?"""
    return estimate_footprint(psm_root, platform,
                              instances=instances).fits
