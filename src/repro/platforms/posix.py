"""A POSIX-like RTOS platform description.

Stands in for the proprietary phone-platform targets of the paper's Nokia
context: preemptive priority scheduling, pthreads-style engines, message
queues, C-native types.
"""

from __future__ import annotations

from ..transform.engine import Transformation
from .base import PlatformModel
from .mapping import make_pim_to_psm


def posix_platform() -> PlatformModel:
    """Build the POSIX RTOS platform model."""
    platform = PlatformModel(
        name="posix_rtos",
        description="POSIX-like real-time operating system",
        vendor="repro", is_real_time=True)

    int32 = platform.add_type("int32_t", bits=32)
    platform.add_type("uint32_t", bits=32, is_signed=False)
    double = platform.add_type("double", bits=64, is_floating=True)
    char_p = platform.add_type("char*", bits=64, is_signed=False)
    bool_t = platform.add_type("bool", bits=8, is_signed=False)

    platform.map_type("Integer", int32)
    platform.map_type("Real", double)
    platform.map_type("String", char_p)
    platform.map_type("Boolean", bool_t)

    platform.add_engine("pthread", "thread", context_switch_us=5.0,
                        priority_levels=99, stack_bytes=65536)
    platform.add_engine("process", "process", context_switch_us=50.0,
                        priority_levels=40, stack_bytes=1 << 20)

    platform.add_comm("mqueue", "queue", latency_us=15.0, depth=32,
                      max_message_bytes=8192)
    platform.add_comm("unix_signal", "signal", latency_us=8.0,
                      is_reliable=False, max_message_bytes=0)
    platform.add_comm("shm", "shared_memory", latency_us=1.0,
                      max_message_bytes=1 << 20)

    platform.add_service("sched_fifo", "scheduling", overhead_us=2.0)
    platform.add_service("posix_timer", "timing", overhead_us=3.0)
    platform.add_service("mmap_storage", "storage", overhead_us=20.0)

    platform.budgets.append(_budget("memory_kb", 262144))
    platform.budgets.append(_budget("threads", 1024))
    return platform


def _budget(resource: str, capacity: int):
    from .base import ResourceBudget
    return ResourceBudget(name=resource, resource=resource,
                          capacity=capacity)


def posix_transformation() -> Transformation:
    """The generic PIM→PSM engine instantiated for the POSIX platform."""
    return make_pim_to_psm(posix_platform())
