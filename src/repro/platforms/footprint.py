"""Static memory-footprint estimation against platform budgets.

Ties the platform model's :class:`~repro.platforms.base.ResourceBudget`
entries to the PSM: each class's instance size is estimated from the bit
widths of its (platform-typed) attributes, engine wrappers add their
stack allocation, channels their queue storage.  A deployment plan
(class → instance count) is then checked against the ``memory_kb``
budget — the kind of early platform-fit question the paper's systems
designers ask of a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mof.query import instances_of
from ..uml import Behavior, Clazz, Package
from .base import PlatformModel

POINTER_BITS = 32
STATE_FIELD_BITS = 8


@dataclass
class ClassFootprint:
    name: str
    instance_bytes: int = 0
    stack_bytes: int = 0
    queue_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.instance_bytes + self.stack_bytes + self.queue_bytes


@dataclass
class FootprintReport:
    classes: Dict[str, ClassFootprint] = field(default_factory=dict)
    total_bytes: int = 0
    budget_bytes: Optional[int] = None

    @property
    def fits(self) -> bool:
        return self.budget_bytes is None \
            or self.total_bytes <= self.budget_bytes

    @property
    def utilization(self) -> Optional[float]:
        if not self.budget_bytes:
            return None
        return self.total_bytes / self.budget_bytes

    def summary(self) -> str:
        budget = (f"{self.budget_bytes // 1024} KiB budget"
                  if self.budget_bytes else "no budget")
        verdict = "FITS" if self.fits else "OVER BUDGET"
        return (f"footprint: {self.total_bytes} B across "
                f"{len(self.classes)} classes vs {budget} -> {verdict}")


def _type_bits(platform: PlatformModel, type_name: str) -> int:
    for platform_type in platform.types:
        if platform_type.name == type_name:
            return max(platform_type.bits, 8)
    return POINTER_BITS      # unknown/object-typed: a pointer


def class_footprint(cls: Clazz, platform: PlatformModel) -> ClassFootprint:
    """Estimate one class's per-instance memory on *platform*."""
    footprint = ClassFootprint(cls.name)
    bits = 0
    for prop in cls.all_attributes():
        type_name = prop.type.name if prop.type is not None else ""
        if isinstance(prop.type, Clazz):
            bits += POINTER_BITS
        else:
            bits += _type_bits(platform, type_name)
    if cls.state_machine() is not None:
        bits += STATE_FIELD_BITS
    footprint.instance_bytes = (bits + 7) // 8

    # engine wrappers declare their stack through a default value
    stack_attr = cls.attribute("stack_bytes")
    if stack_attr is not None and stack_attr.default_value:
        try:
            footprint.stack_bytes = int(stack_attr.default_value)
        except ValueError:
            pass
    # channels declare queue depth; message size from the platform comm
    depth_attr = cls.attribute("depth")
    if depth_attr is not None and depth_attr.default_value:
        try:
            depth = int(depth_attr.default_value)
        except ValueError:
            depth = 0
        comm = platform.comm_for("queue", "topic", "signal")
        message_bytes = comm.max_message_bytes if comm is not None else 0
        footprint.queue_bytes = depth * max(message_bytes, 1)
    return footprint


def estimate_footprint(psm_root: Package, platform: PlatformModel, *,
                       instances: Optional[Dict[str, int]] = None
                       ) -> FootprintReport:
    """Estimate the whole PSM's footprint against the platform's
    ``memory_kb`` budget.

    *instances* maps class names to instance counts (default 1 each).
    """
    report = FootprintReport()
    counts = instances or {}
    for cls in instances_of(psm_root, Clazz):
        if isinstance(cls, Behavior):
            continue
        footprint = class_footprint(cls, platform)
        report.classes[cls.name] = footprint
        report.total_bytes += footprint.total_bytes \
            * counts.get(cls.name, 1)
    for budget in platform.budgets:
        if budget.resource == "memory_kb":
            report.budget_bytes = budget.capacity * 1024
            break
    return report
