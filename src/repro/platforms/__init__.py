"""``repro.platforms`` — platform description models and the generic
PIM→PSM mapping engine.

* metamodel: :class:`PlatformModel`, :class:`ExecutionEngine`,
  :class:`CommunicationMechanism`, :class:`PlatformService`,
  :class:`PlatformType`, :class:`TypeMapping`, :class:`ResourceBudget`;
* the generic engine: :func:`make_pim_to_psm`, :data:`PIM_TO_PSM`;
* three concrete platforms: :func:`posix_platform`,
  :func:`baremetal_platform`, :func:`middleware_platform` (each with a
  ``*_transformation()`` shortcut).
"""

from .base import (
    CommKind,
    CommunicationMechanism,
    EngineKind,
    ExecutionEngine,
    PLATFORM,
    PlatformElement,
    PlatformModel,
    PlatformService,
    PlatformType,
    ResourceBudget,
    ServiceKind,
    TypeMapping,
)
from .baremetal import baremetal_platform, baremetal_transformation
from .deployment import allocate, deployment_fits
from .footprint import (
    ClassFootprint,
    FootprintReport,
    class_footprint,
    estimate_footprint,
)
from .mapping import (
    CHANNEL_ROLE,
    ENGINE_ROLE,
    PIM_TO_PSM,
    make_pim_to_psm,
)
from .middleware import middleware_platform, middleware_transformation
from .posix import posix_platform, posix_transformation

__all__ = [
    "CHANNEL_ROLE", "ClassFootprint", "CommKind", "FootprintReport",
    "allocate", "deployment_fits",
    "class_footprint", "estimate_footprint", "CommunicationMechanism", "ENGINE_ROLE",
    "EngineKind", "ExecutionEngine", "PIM_TO_PSM", "PLATFORM",
    "PlatformElement", "PlatformModel", "PlatformService", "PlatformType",
    "ResourceBudget", "ServiceKind", "TypeMapping", "baremetal_platform",
    "baremetal_transformation", "make_pim_to_psm", "middleware_platform",
    "middleware_transformation", "posix_platform", "posix_transformation",
]
