"""The generic PIM→PSM mapping engine, parameterised by a platform model.

This module is the reproduction's centrepiece for the paper's §1 claim
that a transformation can be "a generic engine that takes a model of a
platform as its parameter": :func:`make_pim_to_psm` builds, from *any*
:class:`~repro.platforms.base.PlatformModel`, a semantic transformation
that

* retypes every primitive-typed property to the platform's native types;
* wraps every **active** class in an execution-engine wrapper class
  (thread/task/ISR/hardware module, whatever the platform offers);
* realises every association between active classes as a communication
  channel class built on the platform's preferred mechanism;
* flattens hierarchical state machines (the flat form is what platform
  schedulers and code generators consume);
* copies passive structure faithfully.

All platform knowledge is consumed *here*; the PIM contains none of it,
and the produced PSM contains all of it — which is what makes the
transformation *semantic* (abstraction level changes) rather than
syntactic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mof.kernel import Element
from ..transform.engine import Transformation, TransformationContext
from ..transform.library import flatten_state_machine
from ..transform.platformparam import PlatformParametricTransformation
from ..transform.rule import Rule
from ..uml import (
    Association,
    Behavior,
    Clazz,
    DataType,
    Enumeration,
    EnumerationLiteral,
    Generalization,
    Interface,
    Operation,
    Package,
    Parameter,
    PrimitiveDataType,
    Property,
    StateMachine,
    UmlModel,
)
from .base import PlatformModel

ENGINE_ROLE = "engine_wrapper"
CHANNEL_ROLE = "channel"


def _attach_to_container_image(source: Element, target: Element,
                               ctx: TransformationContext,
                               feature_name: str) -> None:
    """Put *target* into the image of *source*'s container, under the given
    containment feature."""
    container = source.container
    if container is None:
        return
    image = ctx.resolve_optional(container)
    if image is None:
        return
    collection = image.eget(feature_name)
    if target not in collection:
        collection.append(target)


class ModelRule(Rule):
    source_type = UmlModel

    def create(self, source, ctx):
        platform: PlatformModel = ctx.platform
        return UmlModel(name=f"{source.name}_{platform.name}")


class PrimitiveTypeRule(Rule):
    """PIM primitive → platform native type (the retyping map)."""

    source_type = PrimitiveDataType

    def create(self, source, ctx):
        platform: PlatformModel = ctx.platform
        native = platform.type_for(source.name)
        native_name = native.name if native is not None else source.name
        return DataType(name=native_name)

    def bind(self, source, targets, ctx):
        _attach_to_container_image(source, targets["default"],
                                   ctx, "packaged_elements")


class EnumerationRule(Rule):
    source_type = Enumeration

    def create(self, source, ctx):
        return Enumeration(name=source.name)

    def bind(self, source, targets, ctx):
        target = targets["default"]
        for literal in source.literals:
            target.add_literal(literal.name)
        _attach_to_container_image(source, target, ctx, "packaged_elements")


class PackageRule(Rule):
    source_type = Package

    def create(self, source, ctx):
        return Package(name=source.name)

    def bind(self, source, targets, ctx):
        _attach_to_container_image(source, targets["default"],
                                   ctx, "packaged_elements")


class InterfaceRule(Rule):
    source_type = Interface

    def create(self, source, ctx):
        return Interface(name=source.name)

    def bind(self, source, targets, ctx):
        _attach_to_container_image(source, targets["default"],
                                   ctx, "packaged_elements")


class ClassRule(Rule):
    """PIM class → PSM class (+ engine wrapper when active)."""

    source_type = Clazz

    def matches(self, element, ctx):
        if not super().matches(element, ctx):
            return False
        return not isinstance(element, Behavior)   # behaviours handled apart

    def create(self, source: Clazz, ctx):
        platform: PlatformModel = ctx.platform
        psm_class = Clazz(name=source.name, is_abstract=source.is_abstract,
                          is_active=source.is_active)
        targets = {"default": psm_class}
        if source.is_active:
            engine = platform.engine_for("thread", "task", "hw_module")
            if engine is not None:
                wrapper = Clazz(name=f"{source.name}_{engine.kind}")
                wrapper.owned_attributes.append(Property(
                    name="priority", default_value="0"))
                wrapper.owned_attributes.append(Property(
                    name="stack_bytes",
                    default_value=str(engine.stack_bytes)))
                for op_name in ("start", "stop", "run"):
                    wrapper.owned_operations.append(Operation(name=op_name))
                targets[ENGINE_ROLE] = wrapper
        return targets

    def bind(self, source: Clazz, targets, ctx):
        psm_class = targets["default"]
        _attach_to_container_image(source, psm_class, ctx,
                                   "packaged_elements")
        wrapper = targets.get(ENGINE_ROLE)
        if wrapper is not None:
            _attach_to_container_image(source, wrapper, ctx,
                                       "packaged_elements")
            # the wrapper holds its subject by composition
            subject = Property(name="subject", type=psm_class,
                               aggregation="composite")
            wrapper.owned_attributes.append(subject)


class PropertyRule(Rule):
    source_type = Property

    def create(self, source: Property, ctx):
        return Property(name=source.name, lower=source.lower,
                        upper=source.upper,
                        aggregation=source.aggregation,
                        default_value=source.default_value or None)

    def bind(self, source: Property, targets, ctx):
        target = targets["default"]
        if source.type is not None:
            target.type = ctx.resolve_optional(source.type) or None
        container = source.container
        image = ctx.resolve_optional(container) if container else None
        if image is None:
            return
        if isinstance(container, Association):
            image.eget("owned_ends").append(target)
        else:
            image.eget("owned_attributes").append(target)


class OperationRule(Rule):
    source_type = Operation

    def create(self, source: Operation, ctx):
        return Operation(name=source.name, is_query=source.is_query,
                         is_abstract=source.is_abstract, body=source.body)

    def bind(self, source, targets, ctx):
        _attach_to_container_image(source, targets["default"], ctx,
                                   "owned_operations")


class ParameterRule(Rule):
    source_type = Parameter

    def create(self, source: Parameter, ctx):
        return Parameter(name=source.name, direction=source.direction,
                         lower=source.lower, upper=source.upper)

    def bind(self, source: Parameter, targets, ctx):
        target = targets["default"]
        if source.type is not None:
            target.type = ctx.resolve_optional(source.type) or None
        _attach_to_container_image(source, target, ctx, "parameters")


class GeneralizationRule(Rule):
    source_type = Generalization

    def create(self, source, ctx):
        return Generalization()

    def bind(self, source: Generalization, targets, ctx):
        target = targets["default"]
        specific = ctx.resolve_optional(source.specific)
        general = ctx.resolve_optional(source.general)
        if general is not None:
            target.general = general
        if specific is not None:
            specific.generalizations.append(target)


class AssociationRule(Rule):
    """Association → association (+ channel class for active↔active)."""

    source_type = Association

    def create(self, source: Association, ctx):
        platform: PlatformModel = ctx.platform
        psm_assoc = Association(name=source.name)
        targets = {"default": psm_assoc}
        ends = list(source.member_ends)
        end_types = [end.type for end in ends if end.type is not None]
        both_active = (len(end_types) == 2
                       and all(isinstance(t, Clazz) and t.is_active
                               for t in end_types))
        if both_active:
            comm = platform.comm_for("queue", "topic", "signal", "bus")
            if comm is not None:
                channel = Clazz(name=f"{source.name}_{comm.kind}")
                channel.owned_attributes.append(Property(
                    name="depth", default_value=str(comm.depth)))
                channel.owned_attributes.append(Property(
                    name="latency_us",
                    default_value=str(comm.latency_us)))
                send = Operation(name="send")
                send.add_parameter("message")
                channel.owned_operations.append(send)
                channel.owned_operations.append(Operation(name="receive"))
                targets[CHANNEL_ROLE] = channel
        return targets

    def bind(self, source: Association, targets, ctx):
        psm_assoc = targets["default"]
        _attach_to_container_image(source, psm_assoc, ctx,
                                   "packaged_elements")
        for end in source.member_ends:
            end_image = ctx.resolve_optional(end)
            if end_image is not None and end_image not in \
                    psm_assoc.member_ends:
                psm_assoc.member_ends.append(end_image)
        channel = targets.get(CHANNEL_ROLE)
        if channel is not None:
            _attach_to_container_image(source, channel, ctx,
                                       "packaged_elements")


class StateMachineRule(Rule):
    """Hierarchical PIM machine → flat PSM machine."""

    source_type = StateMachine

    def create(self, source: StateMachine, ctx):
        if not source.regions:
            return StateMachine(name=source.name)
        return flatten_state_machine(source, name=source.name)

    def bind(self, source: StateMachine, targets, ctx):
        target = targets["default"]
        owner = source.container
        image = ctx.resolve_optional(owner) if owner is not None else None
        if image is None:
            return
        image.eget("owned_behaviors").append(target)
        if getattr(owner, "classifier_behavior", None) is source:
            image.eset("classifier_behavior", target)


def make_pim_to_psm(platform: PlatformModel) -> Transformation:
    """Build the concrete PIM→PSM transformation for *platform*."""
    rules = [
        ModelRule(),            # must precede PackageRule (UmlModel is one)
        PrimitiveTypeRule(),    # must precede generic class handling
        EnumerationRule(),
        PackageRule(),
        InterfaceRule(),
        StateMachineRule(),     # must precede ClassRule (Behavior is a Clazz)
        ClassRule(),
        PropertyRule(),
        OperationRule(),
        ParameterRule(),
        GeneralizationRule(),
        AssociationRule(),
    ]
    return Transformation(
        f"pim_to_psm[{platform.name}]", rules,
        kind="semantic", abstraction_delta=-1,
        description="generic PIM->PSM engine instantiated for "
                    f"platform '{platform.name}'")


PIM_TO_PSM = PlatformParametricTransformation(
    "pim_to_psm", make_pim_to_psm,
    description="The paper's generic engine: one transformation, "
                "parameterised by a platform model.")
