"""``repro.faults`` — deterministic seeded fault injection.

Robustness claims need an adversary.  This module supplies one: a
:class:`FaultPlan` armed process-wide decides, per *probe point*, whether
the instrumented operation raises :class:`InjectedFault` before doing its
work.  Probe points sit at the layer boundaries the transaction and
recovery machinery protects:

``kernel.write``
    every high-level model mutation (attribute/reference set, collection
    insert/remove/move), fired *before* the mutation applies;
``transform.rule``
    each rule application in the transformation engine's create phase
    (and each bind), the "rule that throws halfway" scenario;
``checker.run``
    each (check, element) unit executed by the incremental engine — the
    "checker that crashes mid-watch" scenario;
``parallel.worker``
    each worker launch in :func:`repro.parallel.parallel_check` — a
    scheduled fault makes that worker die without reporting, so the
    parent must degrade to an in-process re-check of the partition
    (with a :class:`RuntimeWarning`), never crash or drop diagnostics;
``io.write`` / ``io.write.partial`` / ``io.replace``
    the staged file-IO protocol in :mod:`repro.xmi.persist`;
    ``io.write.partial`` fires after half the payload is on disk, so an
    armed plan leaves a torn temp file behind — exactly the crash an
    atomic save must survive;
``wal.append``
    each write-ahead-log append in :mod:`repro.server.durability`,
    fired before the record's bytes reach the file — the append fails,
    the edit transaction rolls back, and the log must be truncated to
    its pre-append length so disk and memory agree;
``wal.replay``
    each recovered transaction re-applied during server-start WAL
    recovery — a failed recovery must be retryable and idempotent;
``net.read`` / ``net.write``
    each socket receive/send on the server side of the TCP transport
    (:mod:`repro.server.transport`) — the connection dies, the server
    keeps serving, and a retrying client converges anyway.

Determinism: a plan is seeded, and every decision consumes the plan's
own RNG in probe-firing order, so the same (seed, workload) always
injects the same faults — chaos runs replay exactly.  With no plan
armed, a probe costs one module-attribute load and a falsy test, the
same budget as the kernel's read/write hooks.

This module deliberately imports nothing from the rest of ``repro`` so
any layer (including the MOF kernel) can probe it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class InjectedFault(RuntimeError):
    """The exception a firing probe raises.  Deliberately *not* a
    :class:`~repro.mof.errors.MofError`: fault handling code must treat
    it like any foreign exception escaping a layer."""

    def __init__(self, site: str, ordinal: int):
        self.site = site
        self.ordinal = ordinal
        super().__init__(f"injected fault #{ordinal} at probe {site!r}")


class FaultPlan:
    """A seeded schedule of failures over the probe sites.

    Parameters
    ----------
    seed:
        Seeds the plan's private RNG; identical seeds replay identical
        fault schedules for identical probe-firing sequences.
    rate:
        Probability in ``[0, 1]`` that an armed probe firing raises.
    sites:
        Site prefixes the plan arms (``None`` = every site).  A probe
        matches when its name equals a prefix or extends it past a dot,
        so ``"io"`` arms ``io.write`` and ``io.replace`` but not a
        hypothetical ``iostats``.
    at:
        Explicit firing ordinals (1-based, per site) that must fail, as
        ``{site: [n, ...]}`` — deterministic point faults for regression
        tests, applied on top of *rate*.
    max_faults:
        Stop injecting after this many faults (``None`` = unbounded).
    """

    def __init__(self, seed: int = 0, rate: float = 0.0, *,
                 sites: Optional[Sequence[str]] = None,
                 at: Optional[Dict[str, Sequence[int]]] = None,
                 max_faults: Optional[int] = None):
        import random
        self.seed = seed
        self.rate = rate
        self.sites = tuple(sites) if sites is not None else None
        self.at = {site: set(ordinals)
                   for site, ordinals in (at or {}).items()}
        self.max_faults = max_faults
        self._rng = random.Random(seed)
        self.firings: Dict[str, int] = {}
        self.injected: List[Tuple[str, int]] = []

    # -- bookkeeping -------------------------------------------------------

    @property
    def fault_count(self) -> int:
        return len(self.injected)

    def armed(self, site: str) -> bool:
        if self.sites is None:
            return True
        return any(site == prefix or site.startswith(prefix + ".")
                   for prefix in self.sites)

    def should_fail(self, site: str) -> bool:
        """Count the firing; decide (deterministically) whether to raise."""
        ordinal = self.firings.get(site, 0) + 1
        self.firings[site] = ordinal
        if not self.armed(site):
            return False
        if self.max_faults is not None \
                and len(self.injected) >= self.max_faults:
            return False
        scheduled = ordinal in self.at.get(site, ())
        if not scheduled and self.rate > 0.0:
            scheduled = self._rng.random() < self.rate
        if scheduled:
            self.injected.append((site, ordinal))
        return scheduled

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} rate={self.rate} "
                f"sites={self.sites} injected={len(self.injected)}>")


#: The armed plan, or None.  Probe call sites read this module attribute
#: directly (``if faults.ACTIVE is not None: faults.probe(site)``) so the
#: disarmed fast path costs one load and a falsy test.
ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Arm *plan* process-wide; return the previously armed plan."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = plan
    return previous


def uninstall() -> None:
    """Disarm fault injection."""
    install(None)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm *plan* for the duration of the block, restoring the previous
    plan (usually None) afterwards."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def probe(site: str) -> None:
    """Fire the probe at *site*: raise :class:`InjectedFault` when the
    armed plan schedules a failure here, else return immediately."""
    plan = ACTIVE
    if plan is not None and plan.should_fail(site):
        raise InjectedFault(site, plan.fault_count)
