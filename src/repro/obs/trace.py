"""Hierarchical tracing: spans, sinks and text renderers.

A span is a named, tagged interval measured with ``time.perf_counter``.
Spans nest: each thread keeps its own stack, so concurrent checkers do
not interleave their trees.  When tracing is disabled (the default) the
module-level ``ON`` flag short-circuits ``span()`` into a shared null
context manager — the cost of an instrumented call site is one global
read plus one function call.

Finished spans are pushed to pluggable sinks: :class:`MemorySink` keeps
the completed root trees for in-process inspection, :class:`JsonlSink`
streams one JSON object per span to a file for offline analysis.
``render_tree`` and ``top_table`` turn a forest of spans into the
flamegraph-style text dumps used by ``python -m repro profile``.
"""

from __future__ import annotations

import functools
import itertools
import json
import threading
import time
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Union

#: Master switch.  Instrumented call sites read this attribute before
#: building span tags; ``span()`` reads it again before allocating.
ON = False


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Span:
    """One timed interval in a trace tree.  Used as a context manager."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "tags",
                 "started", "ended", "children", "thread_name")

    def __init__(self, tracer: "Tracer", name: str,
                 tags: Optional[Dict[str, Any]] = None) -> None:
        self.tracer = tracer
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.started = 0.0
        self.ended = 0.0
        self.children: List[Span] = []
        self.thread_name = ""

    @property
    def duration(self) -> float:
        """Wall-clock seconds; 0.0 until the span has finished."""
        return self.ended - self.started if self.ended else 0.0

    @property
    def self_time(self) -> float:
        """Duration minus the time attributed to child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            parent.children.append(self)
        stack.append(self)
        self.thread_name = threading.current_thread().name
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.ended = time.perf_counter()
        stack = self.tracer._stack()
        depth = len(stack) - 1
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:            # unbalanced exit; recover anyway
            stack.remove(self)
            depth = 0
        for sink in self.tracer._sinks:
            sink.on_finish(self, depth)
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"children={len(self.children)})")


class Tracer:
    """Owns the per-thread span stacks and the sink list."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._sinks: List[Any] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def add_sink(self, sink: Any) -> None:
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)


_TRACER = Tracer()


def span(name: str, **tags: Any) -> Union[Span, _NullSpan]:
    """Open a span under the current thread's innermost span.

    Returns the shared :data:`NULL_SPAN` while tracing is disabled, so
    bare ``with span("x"):`` costs almost nothing when off.  Call sites
    with expensive tag expressions should additionally gate on
    ``trace.ON`` to skip building the keyword dict.
    """
    if not ON:
        return NULL_SPAN
    return Span(_TRACER, name, tags)


def traced(name: Optional[str] = None, **tags: Any) -> Callable:
    """Decorator form: wraps the callable in a span named after it."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__.split('.')[-1]}.{fn.__name__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not ON:
                return fn(*args, **kwargs)
            with Span(_TRACER, span_name, tags):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def add_sink(sink: Any) -> None:
    _TRACER.add_sink(sink)


def remove_sink(sink: Any) -> None:
    _TRACER.remove_sink(sink)


class MemorySink:
    """Keeps finished root spans (with their subtree) in memory."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.span_count = 0
        self._lock = threading.Lock()

    def on_finish(self, span: Span, depth: int) -> None:
        with self._lock:
            self.span_count += 1
            if depth == 0:
                self.roots.append(span)

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()
            self.span_count = 0


class JsonlSink:
    """Streams one JSON object per finished span to *target*.

    *target* may be a path or an open text file.  Spans are written as
    they finish (children before parents, as in any post-order trace);
    the ``parent`` id field lets readers rebuild the tree.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.span_count = 0
        self._lock = threading.Lock()

    def on_finish(self, span: Span, depth: int) -> None:
        record = {
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "depth": depth,
            "start": round(span.started, 9),
            "ms": round(span.duration * 1e3, 6),
            "thread": span.thread_name,
        }
        if span.tags:
            record["tags"] = {k: _jsonable(v) for k, v in span.tags.items()}
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.span_count += 1
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def render_tree(roots: Sequence[Span], *, min_fraction: float = 0.0) -> str:
    """Indented flamegraph-style dump of a span forest.

    Children contributing less than *min_fraction* of their root's
    duration are folded into a ``... (+n)`` line.
    """
    out: List[str] = []

    def walk(span: Span, indent: int, total: float) -> None:
        pct = f" {span.duration / total * 100:5.1f}%" if total else ""
        tags = ""
        if span.tags:
            tags = " " + " ".join(f"{k}={v}" for k, v in
                                  sorted(span.tags.items()))
        out.append(f"{'  ' * indent}{span.duration * 1e3:9.3f}ms{pct} "
                   f"{span.name}{tags}")
        hidden = 0
        for child in span.children:
            if total and child.duration < total * min_fraction:
                hidden += 1
                continue
            walk(child, indent + 1, total)
        if hidden:
            out.append(f"{'  ' * (indent + 1)}      ... (+{hidden} "
                       f"below {min_fraction * 100:g}%)")

    for root in roots:
        walk(root, 0, root.duration)
    return "\n".join(out)


def aggregate(roots: Sequence[Span]) -> List[Dict[str, Any]]:
    """Fold a span forest into per-name rows sorted by self-time."""
    rows: Dict[str, Dict[str, Any]] = {}

    def walk(span: Span) -> None:
        row = rows.setdefault(span.name, {
            "name": span.name, "calls": 0, "total_s": 0.0, "self_s": 0.0})
        row["calls"] += 1
        row["total_s"] += span.duration
        row["self_s"] += span.self_time
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    return sorted(rows.values(), key=lambda r: r["self_s"], reverse=True)


def top_table(roots: Sequence[Span], n: int = 10) -> str:
    """The profile verb's top-N table: hot names by cumulative self-time."""
    rows = aggregate(roots)[:n]
    out = [f"{'self ms':>10} {'total ms':>10} {'calls':>7}  name"]
    for row in rows:
        out.append(f"{row['self_s'] * 1e3:>10.3f} "
                   f"{row['total_s'] * 1e3:>10.3f} "
                   f"{row['calls']:>7}  {row['name']}")
    return "\n".join(out)
