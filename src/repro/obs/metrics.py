"""Counters, gauges and fixed-bucket histograms with a shared registry.

Zero-dependency, Prometheus-shaped: a *family* is a named metric with a
kind and help string, and each distinct label combination materialises
one child instrument.  :data:`REGISTRY` is the process-wide registry
every engine layer reports into; exporters render it as Prometheus text
exposition or plain JSON.

Hot-path note: ``inc``/``observe`` deliberately take no lock — under
CPython the float/int updates are cheap and a rare lost increment in a
racing thread is an acceptable trade for keeping kernel hooks almost
free.  Family creation and snapshotting do lock.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 0.1ms .. 2.5s, +Inf implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: LabelItems) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (depths, sizes, ratios)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: LabelItems) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    __slots__ = ("labels", "bounds", "counts", "sum", "count")

    def __init__(self, labels: LabelItems,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0..1) from the bucket counts.

        Prometheus-style: linear interpolation within the first bucket
        whose cumulative count reaches ``q * count``; the +Inf bucket
        reports the last finite bound (an underestimate by design).
        Used by the model-server ``stats`` verb and the E20 benchmark
        for p50/p99 latency readouts.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            if running + count >= rank and count:
                fraction = (rank - running) / count
                return lower + (bound - lower) * fraction
            running += count
            lower = bound
        return self.bounds[-1] if self.bounds else 0.0


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help: str,
                 buckets: Optional[Sequence[float]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        self.children: Dict[LabelItems, Any] = {}


class MetricsRegistry:
    """Get-or-create instrument store keyed by (name, label items)."""

    _CTORS = {"counter": Counter, "gauge": Gauge}

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _instrument(self, kind: str, name: str, help: str,
                    buckets: Optional[Sequence[float]],
                    labels: Dict[str, Any]) -> Any:
        items: LabelItems = tuple(sorted(
            (k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(
                    name, kind, help, buckets)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            child = family.children.get(items)
            if child is None:
                if kind == "histogram":
                    child = Histogram(items, family.buckets)
                else:
                    child = self._CTORS[kind](items)
                family.children[items] = child
            return child

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._instrument("counter", name, help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._instrument("gauge", name, help, None, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        return self._instrument("histogram", name, help, buckets, labels)

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        items: LabelItems = tuple(sorted(
            (k, str(v)) for k, v in labels.items()))
        family = self._families.get(name)
        return family.children.get(items) if family else None

    def families(self) -> List[str]:
        return sorted(self._families)

    def reset(self) -> None:
        """Drop every family — used by tests and benchmark harnesses."""
        with self._lock:
            self._families.clear()

    # -- exporters -------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {}
            for name in sorted(self._families):
                family = self._families[name]
                series = []
                for items, child in sorted(family.children.items()):
                    entry: Dict[str, Any] = {"labels": dict(items)}
                    if family.kind == "histogram":
                        entry.update(
                            count=child.count, sum=round(child.sum, 9),
                            buckets={_le(b): c for b, c in
                                     _cumulative(child)})
                    else:
                        entry["value"] = child.value
                    series.append(entry)
                out[name] = {"type": family.kind, "help": family.help,
                             "series": series}
            return out

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._families):
                family = self._families[name]
                prom = _prom_name(name)
                if family.kind == "counter":
                    prom += "_total"
                if family.help:
                    lines.append(f"# HELP {prom} {family.help}")
                lines.append(f"# TYPE {prom} {family.kind}")
                for items, child in sorted(family.children.items()):
                    if family.kind == "histogram":
                        for bound, cum in _cumulative(child):
                            lines.append(f"{prom}_bucket"
                                         f"{_labels(items, le=_le(bound))}"
                                         f" {cum}")
                        lines.append(f"{prom}_sum{_labels(items)}"
                                     f" {_num(child.sum)}")
                        lines.append(f"{prom}_count{_labels(items)}"
                                     f" {child.count}")
                    else:
                        lines.append(f"{prom}{_labels(items)}"
                                     f" {_num(child.value)}")
            return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, float]:
        """Flat {name{labels}: value} map for quick asserts in tests."""
        with self._lock:
            flat: Dict[str, float] = {}
            for name, family in self._families.items():
                for items, child in family.children.items():
                    key = name + _labels(items)
                    if family.kind == "histogram":
                        flat[key + ".count"] = float(child.count)
                        flat[key + ".sum"] = child.sum
                    else:
                        flat[key] = child.value
            return flat


def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _labels(items: LabelItems, **extra: str) -> str:
    pairs = [f'{k}="{v}"' for k, v in items]
    pairs += [f'{k}="{v}"' for k, v in extra.items()]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"{bound:g}"


def _num(value: float) -> str:
    return f"{value:g}"


def _cumulative(hist: Histogram) -> List[Tuple[float, int]]:
    out: List[Tuple[float, int]] = []
    running = 0
    for bound, count in zip(hist.bounds + (float("inf"),), hist.counts):
        running += count
        out.append((bound, running))
    return out


#: The process-wide registry all engine layers report into.
REGISTRY = MetricsRegistry()
