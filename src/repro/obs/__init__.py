"""``repro.obs`` — zero-dependency observability for every engine layer.

Two pillars:

* :mod:`repro.obs.trace` — hierarchical spans with thread-local stacks,
  pluggable sinks (in-memory tree, JSONL file) and flamegraph-style text
  renderers;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms in the process-wide :data:`REGISTRY`, exportable as
  Prometheus text or JSON.

Everything is off by default: instrumented call sites in the MOF kernel,
OCL evaluator, transform engine, codegen, XMI serialisation and the
incremental engine gate on ``trace.ON`` (one module-attribute read), so
the disabled overhead is within noise of uninstrumented code — E15
benchmarks it at <5%.  :func:`enable` flips the flag and installs the
kernel read/write/notification probes; :func:`disable` restores the
previous hooks.

Span names are dotted ``<layer>.<operation>`` (``ocl.invariant``,
``transform.run``, ``incremental.revalidate``); metric names follow the
same scheme with Prometheus labels for the variable part
(``ocl.invariant.seconds{invariant=...}``).  See DESIGN.md for the full
naming table.
"""

from __future__ import annotations

from typing import Any, Optional

from . import metrics, trace
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from .trace import (
    JsonlSink,
    MemorySink,
    NULL_SPAN,
    Span,
    Tracer,
    add_sink,
    aggregate,
    remove_sink,
    render_tree,
    span,
    top_table,
    traced,
)

__all__ = [
    "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram", "JsonlSink",
    "MemorySink", "MetricsRegistry", "NULL_SPAN", "REGISTRY", "Span",
    "Tracer", "add_sink", "aggregate", "disable", "enable", "is_enabled",
    "metrics", "remove_sink", "render_tree", "span", "top_table", "trace",
    "traced",
]

_prev_hooks: Optional[dict] = None


def is_enabled() -> bool:
    return trace.ON


def enable(*sinks: Any) -> None:
    """Turn the observability layer on.

    Sets the tracing flag every instrumented call site gates on,
    registers *sinks* with the global tracer and installs the kernel
    read/write/notification probes feeding the ``mof.*`` counters.
    Idempotent: a second call only adds sinks.
    """
    for sink in sinks:
        trace.add_sink(sink)
    if trace.ON:
        return
    _install_kernel_probes()
    trace.ON = True


def disable() -> None:
    """Turn the layer off and restore the previous kernel hooks.

    Sinks stay registered (they see no spans while off); collected
    metrics stay in :data:`REGISTRY` until ``REGISTRY.reset()``.
    """
    if not trace.ON:
        return
    trace.ON = False
    _remove_kernel_probes()


def _install_kernel_probes() -> None:
    global _prev_hooks
    from ..mof import kernel, notify

    reads = REGISTRY.counter(
        "mof.reads", help="feature reads seen by the kernel read hook")
    writes = REGISTRY.counter(
        "mof.mutations", help="high-level feature writes (eset and friends)")
    notif_counters = {
        kind: REGISTRY.counter(
            "mof.notifications",
            help="change notifications dispatched, by kind",
            kind=kind.value)
        for kind in notify.ChangeKind
    }

    prev_read = kernel.set_read_hook(None)

    if prev_read is None:
        def read_probe(element: Any, feature: str) -> None:
            reads.value += 1
    else:
        def read_probe(element: Any, feature: str) -> None:
            reads.value += 1
            prev_read(element, feature)

    def write_probe(element: Any, feature: str) -> None:
        writes.value += 1

    def notify_probe(notification: Any) -> None:
        notif_counters[notification.kind].value += 1

    kernel.set_read_hook(read_probe)
    _prev_hooks = {
        "read": prev_read,
        "read_probe": read_probe,
        "write": kernel.set_write_hook(write_probe),
        "notify": notify.set_notify_hook(notify_probe),
    }


def _remove_kernel_probes() -> None:
    global _prev_hooks
    if _prev_hooks is None:
        return
    from ..mof import kernel, notify

    kernel.set_write_hook(_prev_hooks["write"])
    notify.set_notify_hook(_prev_hooks["notify"])
    # Another party (e.g. an incremental engine inside ``collect_reads``)
    # may have chained onto our read probe after enable(); only restore
    # the pre-enable hook if ours is still the innermost one.
    current = kernel.set_read_hook(_prev_hooks["read"])
    if current is not _prev_hooks["read_probe"]:
        kernel.set_read_hook(current)
    _prev_hooks = None
