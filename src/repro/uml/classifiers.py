"""UML classifiers: classes, interfaces, data types, enumerations, signals.

Structural features (properties, operations) are defined in
``repro.uml.features``; the containment references that tie them to
classifiers live here and use string targets resolved within the shared
``UML`` metamodel package.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MBoolean,
    MString,
    Reference,
)
from .package import NamedElement, PackageableElement, UML


class Type(PackageableElement):
    """Anything usable as the type of a typed element."""

    _mof_abstract = True


class Classifier(Type):
    """A type with features and generalizations."""

    _mof_abstract = True

    is_abstract = Attribute(MBoolean, False)
    generalizations = Reference("Generalization", containment=True,
                                multiplicity=M_0N, opposite="specific",
                                doc="Owned generalization links to more "
                                    "general classifiers.")
    incoming_generalizations = Reference("Generalization",
                                         multiplicity=M_0N,
                                         doc="Generalizations whose general "
                                             "end is this classifier.")

    # -- generalization convenience -------------------------------------

    def supers(self) -> List["Classifier"]:
        """Directly more general classifiers."""
        return [g.general for g in self.generalizations
                if g.general is not None]

    def all_supers(self) -> List["Classifier"]:
        """Transitively more general classifiers, nearest first."""
        out: List[Classifier] = []
        stack = self.supers()
        while stack:
            sup = stack.pop(0)
            if sup in out:
                continue
            out.append(sup)
            stack.extend(sup.supers())
        return out

    def specializations(self) -> List["Classifier"]:
        """Direct specializations (requires same-model scan via opposite)."""
        return [g.specific for g in self._incoming_generalizations()]

    def _incoming_generalizations(self):
        # Generalization.general has opposite 'specializations_of' stored here
        return list(self.eget("incoming_generalizations"))

    def conforms_to(self, other: "Classifier") -> bool:
        """UML type conformance: self is other or a descendant of it."""
        return self is other or other in self.all_supers()

    def add_super(self, general: "Classifier") -> "Generalization":
        """Create and own a generalization to *general*."""
        from .relationships import Generalization
        link = Generalization(general=general)
        self.generalizations.append(link)
        return link

    def inheritance_depth(self) -> int:
        """Length of the longest generalization path above this classifier."""
        supers = self.supers()
        if not supers:
            return 0
        return 1 + max(s.inheritance_depth() for s in supers)


class DataType(Classifier):
    """A value type (no identity): primitives and structured values."""


class PrimitiveDataType(DataType):
    """A UML-level primitive type (String, Integer, Real, Boolean)."""


class EnumerationLiteral(NamedElement):
    """One literal of an :class:`Enumeration`."""


class Enumeration(DataType):
    """A user-defined enumeration type."""

    literals = Reference(EnumerationLiteral, containment=True,
                         multiplicity=M_0N)

    def add_literal(self, name: str) -> EnumerationLiteral:
        literal = EnumerationLiteral(name=name)
        self.literals.append(literal)
        return literal

    def literal_names(self) -> List[str]:
        return [lit.name for lit in self.literals]


class StructuredClassifier(Classifier):
    """A classifier with owned attributes and operations."""

    _mof_abstract = True

    owned_attributes = Reference("Property", containment=True,
                                 multiplicity=M_0N, opposite="owner",
                                 doc="Attributes and navigable association "
                                     "ends owned by this classifier.")
    owned_operations = Reference("Operation", containment=True,
                                 multiplicity=M_0N, opposite="owner")

    # -- feature lookup --------------------------------------------------

    def attribute(self, name: str) -> Optional["Property"]:
        for prop in self.all_attributes():
            if prop.name == name:
                return prop
        return None

    def operation(self, name: str) -> Optional["Operation"]:
        for op in self.all_operations():
            if op.name == name:
                return op
        return None

    def all_attributes(self) -> List["Property"]:
        """Own attributes plus inherited ones (inherited first)."""
        out: List["Property"] = []
        for sup in reversed(self.all_supers()):
            if isinstance(sup, StructuredClassifier):
                out.extend(sup.owned_attributes)
        out.extend(self.owned_attributes)
        return out

    def all_operations(self) -> List["Operation"]:
        out: List["Operation"] = []
        for sup in reversed(self.all_supers()):
            if isinstance(sup, StructuredClassifier):
                out.extend(sup.owned_operations)
        out.extend(self.owned_operations)
        return out


class Interface(StructuredClassifier):
    """A declaration of a coherent set of public features."""


class Clazz(StructuredClassifier):
    """A UML Class (named ``Clazz`` to avoid the Python keyword).

    Besides attributes and operations, a class may own behaviour (state
    machines), realize interfaces, and own ports (see components module).
    """

    is_active = Attribute(MBoolean, False,
                          doc="Active objects own a thread of control.")
    interface_realizations = Reference("InterfaceRealization",
                                       containment=True, multiplicity=M_0N,
                                       opposite="implementing_class")
    owned_behaviors = Reference("Behavior", containment=True,
                                multiplicity=M_0N,
                                doc="Owned behaviours, e.g. state machines.")
    classifier_behavior = Reference("Behavior",
                                    doc="The behaviour started when an "
                                        "instance is created.")

    def realize(self, interface: Interface) -> "InterfaceRealization":
        from .relationships import InterfaceRealization
        link = InterfaceRealization(contract=interface)
        self.interface_realizations.append(link)
        return link

    def realized_interfaces(self) -> List[Interface]:
        return [r.contract for r in self.interface_realizations
                if r.contract is not None]

    def state_machine(self) -> Optional["StateMachine"]:
        """The classifier behaviour if it is a state machine, else the first
        owned state machine."""
        from .statemachines import StateMachine
        behavior = self.classifier_behavior
        if isinstance(behavior, StateMachine):
            return behavior
        for owned in self.owned_behaviors:
            if isinstance(owned, StateMachine):
                return owned
        return None


class Signal(Classifier):
    """A specification of an asynchronous stimulus."""

    parameters = Reference("Parameter", containment=True, multiplicity=M_0N)


class Behavior(Clazz):
    """Abstract behaviour; concrete kinds: OpaqueBehavior, StateMachine,
    Interaction."""

    _mof_abstract = True


class OpaqueBehavior(Behavior):
    """Behaviour given as text in some action language."""

    body = Attribute(MString, "")
    language = Attribute(MString, "action")
