"""Graphviz DOT export for the three main diagram kinds.

Models must "convey information to the users of those models"; these
renderers turn class structures, state machines and activities into DOT
text any Graphviz installation draws.  Pure text generation — no external
dependency.
"""

from __future__ import annotations

from typing import List, Optional

from ..mof.query import instances_of
from .activities import (
    ActionNode,
    Activity,
    ActivityFinalNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    MergeNode,
)
from .classifiers import Behavior, Clazz, Enumeration, Interface
from .package import Package
from .relationships import Association
from .statemachines import (
    FinalState,
    Pseudostate,
    State,
    StateMachine,
)


def _quote(text: str) -> str:
    return '"' + text.replace('"', r'\"') + '"'


def _node_id(element) -> str:
    return f"n{element.eid}"


# ---------------------------------------------------------------------------
# class diagrams
# ---------------------------------------------------------------------------

def class_diagram(root: Package, *, show_members: bool = True) -> str:
    """All classifiers under *root* as a DOT digraph (UML-ish record
    nodes, open arrows for generalization, plain edges for
    associations)."""
    lines: List[str] = [
        f"digraph {_quote(root.name or 'model')} {{",
        "  rankdir=BT;",
        "  node [shape=record, fontsize=10];",
    ]
    classifiers = [c for c in instances_of(root, Clazz)
                   if not isinstance(c, Behavior)]
    classifiers += instances_of(root, Interface)
    classifiers += instances_of(root, Enumeration)
    for classifier in classifiers:
        label_parts = [classifier.name or "?"]
        if isinstance(classifier, Interface):
            label_parts[0] = f"«interface»\\n{label_parts[0]}"
        elif isinstance(classifier, Enumeration):
            label_parts[0] = f"«enumeration»\\n{label_parts[0]}"
        elif classifier.is_abstract:
            label_parts[0] = f"«abstract»\\n{label_parts[0]}"
        if show_members and hasattr(classifier, "owned_attributes"):
            attributes = "\\l".join(
                f"{p.name}: {p.type.name if p.type else '?'}"
                for p in classifier.owned_attributes) + "\\l" \
                if len(classifier.owned_attributes) else ""
            operations = "\\l".join(
                f"{op.name}()"
                for op in classifier.owned_operations) + "\\l" \
                if len(classifier.owned_operations) else ""
            label_parts.extend([attributes, operations])
        if isinstance(classifier, Enumeration):
            label_parts.append(
                "\\l".join(classifier.literal_names()) + "\\l"
                if classifier.literals else "")
        label = "{" + "|".join(label_parts) + "}"
        lines.append(f"  {_node_id(classifier)} [label={_quote(label)}];")

    drawn = {id(c) for c in classifiers}
    for classifier in classifiers:
        if not hasattr(classifier, "generalizations"):
            continue
        for sup in classifier.supers():
            if id(sup) in drawn:
                lines.append(
                    f"  {_node_id(classifier)} -> {_node_id(sup)} "
                    f"[arrowhead=onormal];")
    for association in instances_of(root, Association):
        ends = list(association.member_ends)
        if len(ends) != 2:
            continue
        left, right = ends[0].type, ends[1].type
        if left is None or right is None:
            continue
        if id(left) not in drawn or id(right) not in drawn:
            continue
        label = association.name or ""
        lines.append(
            f"  {_node_id(right)} -> {_node_id(left)} "
            f"[arrowhead=vee, label={_quote(label)}, fontsize=9, "
            f"constraint=false];")
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# state machine diagrams
# ---------------------------------------------------------------------------

def statemachine_diagram(machine: StateMachine) -> str:
    """The machine's (flattened view of the top region) as a DOT
    digraph: rounded states, dot initial, double-circle final, diamond
    choices."""
    lines: List[str] = [
        f"digraph {_quote(machine.name or 'sm')} {{",
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]

    def _emit_region(region, prefix: str = "") -> None:
        for vertex in region.subvertices:
            node = _node_id(vertex)
            if isinstance(vertex, Pseudostate):
                if vertex.kind == "initial":
                    lines.append(f"  {node} [shape=point, width=0.15];")
                elif vertex.kind == "choice":
                    lines.append(f"  {node} [shape=diamond, "
                                 f"label=\"\", width=0.3];")
                else:
                    lines.append(f"  {node} [shape=circle, "
                                 f"label={_quote(vertex.kind)}];")
            elif isinstance(vertex, FinalState):
                lines.append(f"  {node} [shape=doublecircle, "
                             f"label=\"\", width=0.18];")
            elif isinstance(vertex, State):
                extras = []
                if vertex.entry:
                    extras.append(f"entry / {vertex.entry}")
                if vertex.exit:
                    extras.append(f"exit / {vertex.exit}")
                label = vertex.name + (
                    "\\n" + "\\n".join(extras) if extras else "")
                lines.append(f"  {node} [shape=box, style=rounded, "
                             f"label={_quote(label)}];")
                for sub_region in vertex.regions:
                    _emit_region(sub_region, prefix + vertex.name + "::")
        for transition in region.transitions:
            if transition.source is None or transition.target is None:
                continue
            lines.append(
                f"  {_node_id(transition.source)} -> "
                f"{_node_id(transition.target)} "
                f"[label={_quote(transition.label())}, fontsize=9];")

    for region in machine.regions:
        _emit_region(region)
    lines.append("}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# activity diagrams
# ---------------------------------------------------------------------------

def activity_diagram(activity: Activity) -> str:
    """The activity as a DOT digraph with UML-conventional node shapes."""
    lines: List[str] = [
        f"digraph {_quote(activity.name or 'activity')} {{",
        "  rankdir=TB;",
        "  node [fontsize=10];",
    ]
    for node in activity.nodes:
        dot_node = _node_id(node)
        if isinstance(node, InitialNode):
            lines.append(f"  {dot_node} [shape=point, width=0.15];")
        elif isinstance(node, ActivityFinalNode):
            lines.append(f"  {dot_node} [shape=doublecircle, "
                         f"label=\"\", width=0.18];")
        elif isinstance(node, FlowFinalNode):
            lines.append(f"  {dot_node} [shape=circle, label=\"X\", "
                         f"width=0.2];")
        elif isinstance(node, DecisionNode):
            lines.append(f"  {dot_node} [shape=diamond, label=\"\", "
                         f"width=0.3];")
        elif isinstance(node, MergeNode):
            lines.append(f"  {dot_node} [shape=diamond, label=\"\", "
                         f"width=0.3, style=dashed];")
        elif isinstance(node, (ForkNode, JoinNode)):
            lines.append(f"  {dot_node} [shape=box, label=\"\", "
                         f"height=0.06, style=filled, "
                         f"fillcolor=black];")
        elif isinstance(node, ActionNode):
            label = node.name + (f"\\n{node.body}" if node.body else "")
            lines.append(f"  {dot_node} [shape=box, style=rounded, "
                         f"label={_quote(label)}];")
    for edge in activity.edges:
        if edge.source is None or edge.target is None:
            continue
        guard = f"[{edge.guard}]" if edge.guard else ""
        lines.append(f"  {_node_id(edge.source)} -> "
                     f"{_node_id(edge.target)} "
                     f"[label={_quote(guard)}, fontsize=9];")
    lines.append("}")
    return "\n".join(lines)
