"""UML relationships: generalization, realization, associations,
dependencies.

Associations follow the UML ownership model: each navigable end is a
``Property`` owned by the classifier at the *other* end; non-navigable ends
are owned by the association itself.  Every end, wherever owned, appears in
``Association.member_ends``.
"""

from __future__ import annotations

from typing import List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MBoolean,
    MString,
    Multiplicity,
    Reference,
)
from .classifiers import Classifier, Clazz, Interface
from .features import Property
from .package import PackageableElement, UML

M_22 = Multiplicity(2, 2)


class Generalization(PackageableElement):
    """A taxonomic link: ``specific`` is-a ``general``.

    The paper insists inheritance is "the taxonomy mechanism it really is",
    not a development mechanism; the well-formedness rules in
    ``repro.uml.wellformed`` and the metrics in ``repro.validation.metrics``
    lean on this distinction.
    """

    specific = Reference(Classifier,
                         doc="The more specific classifier (owner).")
    general = Reference(Classifier, opposite="incoming_generalizations",
                        doc="The more general classifier.")


class InterfaceRealization(PackageableElement):
    """A class promises to implement an interface's contract."""

    implementing_class = Reference(Clazz)
    contract = Reference(Interface)


class Association(PackageableElement):
    """A semantic relationship between (two) classifiers."""

    is_derived = Attribute(MBoolean, False)
    member_ends = Reference(Property, multiplicity=M_22, opposite="association",
                            doc="All ends, wherever owned.")
    owned_ends = Reference(Property, containment=True, multiplicity=M_0N,
                           doc="Ends not owned by a classifier "
                               "(non-navigable ends).")

    def end_for(self, classifier: Classifier) -> Optional[Property]:
        """The end typed by *classifier* (first match)."""
        for end in self.member_ends:
            if end.type is classifier:
                return end
        return None

    def other_end(self, classifier: Classifier) -> Optional[Property]:
        """The end whose type is not *classifier* (self-associations return
        the second end)."""
        ends = list(self.member_ends)
        non_matching = [e for e in ends if e.type is not classifier]
        if non_matching:
            return non_matching[0]
        return ends[1] if len(ends) > 1 else None

    def classifiers(self) -> List[Classifier]:
        return [end.type for end in self.member_ends if end.type is not None]


class Dependency(PackageableElement):
    """The client requires the supplier for its specification or
    implementation."""

    client = Reference(PackageableElement)
    supplier = Reference(PackageableElement)


class Usage(Dependency):
    """A dependency in which the client *uses* the supplier."""


class Abstraction(Dependency):
    """Client and supplier represent the same concept at different
    abstraction levels — the static record of a refinement."""

    mapping = Attribute(MString,
                        doc="Name of the transformation that produced the "
                            "client from the supplier.")


class Refinement(Abstraction):
    """A PSM element refining a PIM element (client refines supplier)."""
