"""Convenience factory for building UML (M1) models.

The factory removes the boilerplate of stitching classes, properties and
associations together, and owns the standard primitive data types
(``STRING``, ``INTEGER``, ``REAL``, ``BOOLEAN``) every model shares.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from .classifiers import (
    Classifier,
    Clazz,
    DataType,
    Enumeration,
    Interface,
    PrimitiveDataType,
)
from .features import Operation, Parameter, Property
from .package import Package, UmlModel
from .relationships import Association


def primitive_types_package() -> Package:
    """A fresh package holding the four standard primitive types.

    Each model gets its own copy so that models stay self-contained
    (single containment root), mirroring how UML tools import a types
    library per model.
    """
    pkg = Package(name="PrimitiveTypes")
    for type_name in ("String", "Integer", "Real", "Boolean"):
        pkg.add(PrimitiveDataType(name=type_name))
    return pkg


class ModelFactory:
    """Builds an :class:`UmlModel` with a primitive-types library attached."""

    def __init__(self, name: str = "model"):
        self.model = UmlModel(name=name)
        self.types = primitive_types_package()
        self.model.add(self.types)

    # -- standard types ---------------------------------------------------

    @property
    def string(self) -> PrimitiveDataType:
        return self.types.member("String")

    @property
    def integer(self) -> PrimitiveDataType:
        return self.types.member("Integer")

    @property
    def real(self) -> PrimitiveDataType:
        return self.types.member("Real")

    @property
    def boolean(self) -> PrimitiveDataType:
        return self.types.member("Boolean")

    def type_named(self, name: str) -> Optional[Classifier]:
        """Find a type anywhere in the model by simple name."""
        for element in self.model.all_members():
            if isinstance(element, Classifier) and element.name == name:
                return element
        return None

    # -- structure ---------------------------------------------------------

    def package(self, name: str,
                parent: Optional[Package] = None) -> Package:
        pkg = Package(name=name)
        (parent or self.model).add(pkg)
        return pkg

    def clazz(self, name: str, *,
              package: Optional[Package] = None,
              attrs: Optional[Dict[str, Union[Classifier, str]]] = None,
              supers: Iterable[Clazz] = (),
              is_abstract: bool = False,
              is_active: bool = False) -> Clazz:
        """Create a class with attributes given as ``{name: type}``.

        Types may be classifiers or names of standard primitives.
        """
        cls = Clazz(name=name, is_abstract=is_abstract, is_active=is_active)
        (package or self.model).add(cls)
        for attr_name, attr_type in (attrs or {}).items():
            self.attribute(cls, attr_name, attr_type)
        for sup in supers:
            cls.add_super(sup)
        return cls

    def interface(self, name: str, *,
                  package: Optional[Package] = None,
                  operations: Iterable[str] = ()) -> Interface:
        iface = Interface(name=name)
        (package or self.model).add(iface)
        for op_name in operations:
            iface.owned_operations.append(Operation(name=op_name))
        return iface

    def enumeration(self, name: str, literals: Iterable[str], *,
                    package: Optional[Package] = None) -> Enumeration:
        enum = Enumeration(name=name)
        (package or self.model).add(enum)
        for literal in literals:
            enum.add_literal(literal)
        return enum

    def _resolve_type(self, type_spec: Union[Classifier, str, None]
                      ) -> Optional[Classifier]:
        if type_spec is None or isinstance(type_spec, Classifier):
            return type_spec
        resolved = self.type_named(type_spec)
        if resolved is None:
            raise KeyError(f"no type named {type_spec!r} in model "
                           f"'{self.model.name}'")
        return resolved

    def attribute(self, cls: Clazz, name: str,
                  type_spec: Union[Classifier, str, None] = None, *,
                  lower: int = 1, upper: int = 1,
                  default: Optional[str] = None) -> Property:
        prop = Property(name=name, lower=lower, upper=upper)
        resolved = self._resolve_type(type_spec)
        if resolved is not None:
            prop.type = resolved
        if default is not None:
            prop.default_value = default
        cls.owned_attributes.append(prop)
        return prop

    def operation(self, cls: Clazz, name: str, *,
                  params: Optional[Dict[str, Union[Classifier, str]]] = None,
                  returns: Union[Classifier, str, None] = None,
                  body: str = "", is_query: bool = False) -> Operation:
        op = Operation(name=name, is_query=is_query, body=body)
        for param_name, param_type in (params or {}).items():
            op.add_parameter(param_name, self._resolve_type(param_type))
        if returns is not None:
            op.add_parameter("result", self._resolve_type(returns),
                             direction="return")
        cls.owned_operations.append(op)
        return op

    def associate(self, a: Clazz, b: Clazz, *,
                  name: str = "",
                  end_a: str = "", end_b: str = "",
                  a_lower: int = 0, a_upper: int = 1,
                  b_lower: int = 0, b_upper: int = 1,
                  navigable_a_to_b: bool = True,
                  navigable_b_to_a: bool = False,
                  composite_a: bool = False,
                  package: Optional[Package] = None) -> Association:
        """Create a binary association between *a* and *b*.

        ``end_b`` names the end typed by *b* (reachable from *a*), and
        symmetrically for ``end_a``.  Navigable ends become owned attributes
        of the classifier at the other end; non-navigable ends are owned by
        the association.  ``composite_a`` marks *a* as composing *b*.
        """
        association = Association(name=name or f"{a.name}_{b.name}")
        (package or self.model).add(association)

        to_b = Property(name=end_b or b.name.lower(), type=b,
                        lower=b_lower, upper=b_upper)
        if composite_a:
            to_b.aggregation = "composite"
        to_a = Property(name=end_a or a.name.lower(), type=a,
                        lower=a_lower, upper=a_upper)

        if navigable_a_to_b:
            a.owned_attributes.append(to_b)
        else:
            association.owned_ends.append(to_b)
        if navigable_b_to_a:
            b.owned_attributes.append(to_a)
        else:
            association.owned_ends.append(to_a)

        association.member_ends.append(to_b)
        association.member_ends.append(to_a)
        return association
