"""UML components and deployment: ports, connectors, nodes, artifacts.

These metaclasses carry the *platform-specific* side of PIM→PSM mappings:
transformations allocate classes to components, wire ports with connectors,
and deploy artifacts onto nodes described by a platform model.
"""

from __future__ import annotations

from typing import List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MBoolean,
    MInteger,
    MString,
    Reference,
)
from .classifiers import Clazz, Interface
from .package import NamedElement, PackageableElement, UML


class Port(NamedElement):
    """An interaction point of a component or class."""

    provided = Reference(Interface, multiplicity=M_0N)
    required = Reference(Interface, multiplicity=M_0N)
    is_service = Attribute(MBoolean, True)


class Component(Clazz):
    """A modular, replaceable unit with explicit provided/required
    interfaces."""

    ports = Reference(Port, containment=True, multiplicity=M_0N)
    realizing_classes = Reference(Clazz, multiplicity=M_0N,
                                  doc="Classes realizing this component's "
                                      "behaviour.")

    def add_port(self, name: str, *,
                 provided: Optional[Interface] = None,
                 required: Optional[Interface] = None) -> Port:
        port = Port(name=name)
        if provided is not None:
            port.provided.append(provided)
        if required is not None:
            port.required.append(required)
        self.ports.append(port)
        return port

    def provided_interfaces(self) -> List[Interface]:
        out: List[Interface] = []
        for port in self.ports:
            out.extend(port.provided)
        return out

    def required_interfaces(self) -> List[Interface]:
        out: List[Interface] = []
        for port in self.ports:
            out.extend(port.required)
        return out


class ConnectorEnd(NamedElement):
    """One end of a connector, attached to a port."""

    port = Reference(Port)


class Connector(PackageableElement):
    """A communication path between two ports."""

    ends = Reference(ConnectorEnd, containment=True, multiplicity=M_0N)

    @classmethod
    def between(cls, a: Port, b: Port, name: str = "") -> "Connector":
        connector = cls(name=name)
        connector.ends.append(ConnectorEnd(name=a.name, port=a))
        connector.ends.append(ConnectorEnd(name=b.name, port=b))
        return connector

    def ports(self) -> List[Port]:
        return [end.port for end in self.ends if end.port is not None]


class Artifact(PackageableElement):
    """A physical piece of information used or produced by development
    (binary, library, configuration)."""

    file_name = Attribute(MString)
    manifested_components = Reference(Component, multiplicity=M_0N)


class ExecutionNode(PackageableElement):
    """A computational resource onto which artifacts are deployed.

    Capacity attributes let schedulability analysis and the pollution
    checker reason about platform limits.
    """

    processor_count = Attribute(MInteger, 1)
    memory_kb = Attribute(MInteger, 0)
    is_real_time = Attribute(MBoolean, False)
    nested_nodes = Reference("ExecutionNode", containment=True,
                             multiplicity=M_0N)
    deployed_artifacts = Reference(Artifact, multiplicity=M_0N)

    def deploy(self, artifact: Artifact) -> None:
        self.deployed_artifacts.append(artifact)


class Deployment(PackageableElement):
    """The allocation record of an artifact onto a node."""

    location = Reference(ExecutionNode)
    deployed_artifact = Reference(Artifact)
