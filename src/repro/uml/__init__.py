"""``repro.uml`` — a UML metamodel subset (the M2 layer).

Defined entirely with the :mod:`repro.mof` kernel, so every UML model is
reflective, serializable and transformable.  Coverage: packages, classes,
interfaces, data types, enumerations, associations with UML ownership
semantics, generalization-as-taxonomy, hierarchical state machines,
interactions (sequence diagrams), use cases (as test obligations),
components, ports, connectors and deployment nodes — plus the
well-formedness rules of :mod:`repro.uml.wellformed` and the model-building
:class:`ModelFactory`.
"""

from .activities import (
    ActionNode,
    Activity,
    ActivityEdge,
    ActivityFinalNode,
    ActivityNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    MergeNode,
)
from .classifiers import (
    Behavior,
    Classifier,
    Clazz,
    DataType,
    Enumeration,
    EnumerationLiteral,
    Interface,
    OpaqueBehavior,
    PrimitiveDataType,
    Signal,
    StructuredClassifier,
    Type,
)
from .components import (
    Artifact,
    Component,
    Connector,
    ConnectorEnd,
    Deployment,
    ExecutionNode,
    Port,
)
from .diagrams import activity_diagram, class_diagram, statemachine_diagram
from .factory import ModelFactory, primitive_types_package
from .features import (
    AggregationKind,
    MultiplicityElement,
    Operation,
    Parameter,
    ParameterDirection,
    Property,
    TypedElement,
    VisibilityKind,
)
from .interactions import Interaction, Lifeline, Message, MessageSort
from .package import (
    Comment,
    NamedElement,
    Package,
    PackageableElement,
    UML,
    UmlElement,
    UmlModel,
)
from .relationships import (
    Abstraction,
    Association,
    Dependency,
    Generalization,
    InterfaceRealization,
    Refinement,
    Usage,
)
from .statemachines import (
    FinalState,
    Pseudostate,
    PseudostateKind,
    Region,
    State,
    StateMachine,
    Transition,
    Vertex,
)
from .usecases import Actor, UseCase
from .wellformed import ALL_RULES, check_model, run_wellformed_rules, watch_model

__all__ = [
    "ALL_RULES", "ActionNode", "Activity", "ActivityEdge",
    "ActivityFinalNode", "ActivityNode", "DecisionNode", "FlowFinalNode",
    "ForkNode", "InitialNode", "JoinNode", "MergeNode",
    "activity_diagram", "class_diagram", "statemachine_diagram", "Abstraction", "Actor", "AggregationKind", "Artifact",
    "Association", "Behavior", "Classifier", "Clazz", "Comment",
    "Component", "Connector", "ConnectorEnd", "DataType", "Dependency",
    "Deployment", "Enumeration", "EnumerationLiteral", "ExecutionNode",
    "FinalState", "Generalization", "Interaction", "Interface",
    "InterfaceRealization", "Lifeline", "Message", "MessageSort",
    "ModelFactory", "MultiplicityElement", "NamedElement", "OpaqueBehavior",
    "Operation", "Package", "PackageableElement", "Parameter",
    "ParameterDirection", "Port", "PrimitiveDataType", "Property",
    "Pseudostate", "PseudostateKind", "Refinement", "Region", "Signal",
    "State", "StateMachine", "StructuredClassifier", "Transition", "Type",
    "TypedElement", "UML", "UmlElement", "UmlModel", "Usage", "UseCase",
    "Vertex", "VisibilityKind", "check_model", "run_wellformed_rules",
    "watch_model", "primitive_types_package",
]
