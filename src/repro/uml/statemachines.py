"""UML state machines: hierarchical states, regions, transitions.

Guards are OCL-like boolean expressions over the context object's
attributes; effects/entry/exit actions are written in the small action
language interpreted by ``repro.validation.statemachine_sim`` (assignment,
``send`` and ``call`` statements).  Keeping behaviour textual keeps models
serializable and analyzable — the model checker enumerates exactly the same
semantics the simulator executes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MetaEnum,
    MString,
    Reference,
)
from .classifiers import Behavior
from .package import NamedElement, UML

PseudostateKind = MetaEnum(
    "PseudostateKind",
    ["initial", "choice", "junction", "shallowHistory", "deepHistory",
     "terminate"],
    package=UML)


class Vertex(NamedElement):
    """A node in a region: state, pseudostate or final state."""

    _mof_abstract = True

    @property
    def container_region(self) -> Optional["Region"]:
        parent = self.container
        return parent if isinstance(parent, Region) else None

    def outgoing(self) -> List["Transition"]:
        region = self.container_region
        if region is None:
            return []
        return [t for t in region.transitions if t.source is self]

    def incoming(self) -> List["Transition"]:
        region = self.container_region
        if region is None:
            return []
        return [t for t in region.transitions if t.target is self]


class Pseudostate(Vertex):
    """Transient control node (initial, choice, junction, ...)."""

    kind = Attribute(PseudostateKind, "initial")


class FinalState(Vertex):
    """Entering a final state completes the enclosing region."""


class State(Vertex):
    """A stable situation; may be composite via owned regions."""

    entry = Attribute(MString, doc="Action executed on entry.")
    exit = Attribute(MString, doc="Action executed on exit.")
    do_activity = Attribute(MString, doc="Activity while in the state.")
    regions = Reference("Region", containment=True, multiplicity=M_0N)

    @property
    def is_composite(self) -> bool:
        return len(self.regions) > 0

    def add_region(self, name: str = "") -> "Region":
        region = Region(name=name)
        self.regions.append(region)
        return region

    def all_substates(self) -> Iterator["State"]:
        for region in self.regions:
            for vertex in region.subvertices:
                if isinstance(vertex, State):
                    yield vertex
                    yield from vertex.all_substates()


TransitionKind = MetaEnum("TransitionKind", ["external", "internal"],
                          package=UML)


class Transition(NamedElement):
    """An edge between vertices of the same state machine.

    ``trigger`` is an event name (empty = completion transition); ``guard``
    an OCL-like boolean expression; ``effect`` an action-language program.
    An ``internal`` transition (UML kind internal) must be a self-loop and
    fires without exiting/re-entering its state — entry/exit actions do
    not run.
    """

    source = Reference(Vertex)
    target = Reference(Vertex)
    trigger = Attribute(MString, doc="Triggering event name; '' means "
                                     "completion transition.")
    guard = Attribute(MString, doc="OCL-like guard over context attributes.")
    effect = Attribute(MString, doc="Action-language effect.")
    kind = Attribute(TransitionKind, "external")

    @property
    def is_internal(self) -> bool:
        return self.kind == "internal"

    @property
    def is_completion(self) -> bool:
        return not self.trigger

    def label(self) -> str:
        parts = [self.trigger or ""]
        if self.guard:
            parts.append(f"[{self.guard}]")
        if self.effect:
            parts.append(f"/{self.effect}")
        return "".join(parts)


class Region(NamedElement):
    """An orthogonal part of a state machine or composite state."""

    subvertices = Reference(Vertex, containment=True, multiplicity=M_0N)
    transitions = Reference(Transition, containment=True, multiplicity=M_0N)

    # -- construction helpers -------------------------------------------

    def add_state(self, name: str, *, entry: str = "", exit: str = "",
                  do_activity: str = "") -> State:
        state = State(name=name, entry=entry, exit=exit,
                      do_activity=do_activity)
        self.subvertices.append(state)
        return state

    def add_initial(self, name: str = "initial") -> Pseudostate:
        pseudo = Pseudostate(name=name, kind="initial")
        self.subvertices.append(pseudo)
        return pseudo

    def add_choice(self, name: str) -> Pseudostate:
        pseudo = Pseudostate(name=name, kind="choice")
        self.subvertices.append(pseudo)
        return pseudo

    def add_final(self, name: str = "final") -> FinalState:
        final = FinalState(name=name)
        self.subvertices.append(final)
        return final

    def add_transition(self, source: Vertex, target: Vertex, *,
                       trigger: str = "", guard: str = "",
                       effect: str = "", name: str = "",
                       kind: str = "external") -> Transition:
        transition = Transition(name=name, source=source, target=target,
                                trigger=trigger, guard=guard, effect=effect,
                                kind=kind)
        self.transitions.append(transition)
        return transition

    # -- queries ----------------------------------------------------------

    def initial_pseudostate(self) -> Optional[Pseudostate]:
        for vertex in self.subvertices:
            if isinstance(vertex, Pseudostate) and vertex.kind == "initial":
                return vertex
        return None

    def states(self) -> List[State]:
        return [v for v in self.subvertices if isinstance(v, State)]

    def vertex(self, name: str) -> Optional[Vertex]:
        for vertex in self.subvertices:
            if vertex.name == name:
                return vertex
        return None


class StateMachine(Behavior):
    """A behaviour expressed as an event-driven transition system."""

    regions = Reference(Region, containment=True, multiplicity=M_0N)

    def add_region(self, name: str = "main") -> Region:
        region = Region(name=name)
        self.regions.append(region)
        return region

    def main_region(self) -> Region:
        """The first region, created on demand."""
        if not self.regions:
            return self.add_region()
        return self.regions[0]

    def all_vertices(self) -> List[Vertex]:
        out: List[Vertex] = []
        stack: List[Region] = list(self.regions)
        while stack:
            region = stack.pop(0)
            for vertex in region.subvertices:
                out.append(vertex)
                if isinstance(vertex, State):
                    stack.extend(vertex.regions)
        return out

    def all_transitions(self) -> List[Transition]:
        out: List[Transition] = []
        stack: List[Region] = list(self.regions)
        while stack:
            region = stack.pop(0)
            out.extend(region.transitions)
            for vertex in region.subvertices:
                if isinstance(vertex, State):
                    stack.extend(vertex.regions)
        return out

    def find_state(self, name: str) -> Optional[State]:
        for vertex in self.all_vertices():
            if isinstance(vertex, State) and vertex.name == name:
                return vertex
        return None

    def events(self) -> List[str]:
        """All distinct trigger names, sorted."""
        return sorted({t.trigger for t in self.all_transitions()
                       if t.trigger})
