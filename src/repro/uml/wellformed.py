"""Well-formedness rules for UML models.

These are the checks the paper claims are skipped by "use case based
development": that objects shown in interactions exist in the class model,
that inheritance is acyclic taxonomy rather than a development trick, that
state machines are executable, and that names are unambiguous.

Each rule appends :class:`~repro.mof.validate.Diagnostic` entries — the
record shared with the structural validator and the
:mod:`repro.analysis` lint engine, carrying a stable ``uml-*`` code,
the element's containment path and an optional fix hint — to a shared
:class:`~repro.mof.validate.ValidationReport`; ``run_wellformed_rules``
runs all of them (``check_model`` remains as a deprecated alias; the
lint engine re-runs the same rules through its registry).
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Set

from ..mof import Severity, ValidationReport, instances_of
from .classifiers import Classifier, Clazz, Interface, StructuredClassifier
from .features import Property
from .interactions import Interaction, Lifeline
from .package import Package
from .relationships import Association
from .statemachines import (
    FinalState,
    Pseudostate,
    Region,
    State,
    StateMachine,
    Transition,
)
from .activities import (
    Activity,
    ActivityFinalNode,
    DecisionNode,
    InitialNode,
    JoinNode,
)
from .usecases import UseCase

Rule = Callable[[Package, ValidationReport], None]


def rule_unique_member_names(root: Package, report: ValidationReport) -> None:
    """Direct members of a namespace must have distinct names."""
    for pkg in [root] + instances_of(root, Package, include_self=False):
        seen: Set[str] = set()
        for member in pkg.packaged_elements:
            if not member.name:
                report.add(Severity.WARNING, member,
                           "unnamed packaged element", code="uml-name",
                           hint="give the element a name")
                continue
            if member.name in seen:
                report.add(Severity.ERROR, member,
                           f"duplicate name '{member.name}' in package "
                           f"'{pkg.name}'", code="uml-unique-name",
                           hint="rename one of the clashing members")
            seen.add(member.name)


def rule_no_generalization_cycles(root: Package,
                                  report: ValidationReport) -> None:
    """Generalization must be acyclic (it is a taxonomy)."""
    for classifier in instances_of(root, Classifier):
        if classifier in classifier.all_supers():
            report.add(Severity.ERROR, classifier,
                       "generalization cycle", code="uml-gen-cycle",
                       hint="remove one generalization to restore the taxonomy")


def rule_typed_properties(root: Package, report: ValidationReport) -> None:
    """Every property should have a type."""
    for prop in instances_of(root, Property):
        if prop.type is None:
            report.add(Severity.WARNING, prop,
                       "untyped property", code="uml-untyped",
                       hint="set the property's type")


def rule_association_ends(root: Package, report: ValidationReport) -> None:
    """Binary associations need exactly two typed member ends."""
    for association in instances_of(root, Association):
        ends = list(association.member_ends)
        if len(ends) != 2:
            report.add(Severity.ERROR, association,
                       f"association has {len(ends)} member end(s), "
                       f"expected 2", code="uml-assoc-arity")
            continue
        for end in ends:
            if end.type is None:
                report.add(Severity.ERROR, association,
                           f"association end '{end.name}' is untyped",
                           code="uml-assoc-untyped")


def rule_lifelines_represent_classifiers(root: Package,
                                         report: ValidationReport) -> None:
    """The paper's central complaint: interaction objects must exist in the
    class model ("the objects are never shown nor specified in a class
    diagram")."""
    for interaction in instances_of(root, Interaction):
        for lifeline in interaction.floating_lifelines():
            report.add(Severity.ERROR, lifeline,
                       f"lifeline '{lifeline.name}' of interaction "
                       f"'{interaction.name}' does not represent any "
                       f"classifier", code="uml-floating-lifeline",
                       hint="set lifeline.represents to a class of the "
                            "model")


def rule_messages_match_operations(root: Package,
                                   report: ValidationReport) -> None:
    """A message's name should be an operation (or signal reception) of the
    receiving lifeline's classifier."""
    for interaction in instances_of(root, Interaction):
        for message in interaction.messages:
            receiver = message.receive_lifeline
            if receiver is None or receiver.represents is None:
                continue
            classifier = receiver.represents
            if not isinstance(classifier, StructuredClassifier):
                continue
            ops = {op.name for op in classifier.all_operations()}
            for iface in (classifier.realized_interfaces()
                          if isinstance(classifier, Clazz) else []):
                ops.update(op.name for op in iface.all_operations())
            machine = (classifier.state_machine()
                       if isinstance(classifier, Clazz) else None)
            events = set(machine.events()) if machine else set()
            if message.name not in ops and message.name not in events:
                report.add(Severity.ERROR, message,
                           f"message '{message.name}' is neither an "
                           f"operation nor an event of "
                           f"'{classifier.name}'", code="uml-msg-unknown")


def rule_statemachine_initial(root: Package,
                              report: ValidationReport) -> None:
    """Every non-empty region needs exactly one initial pseudostate."""
    for machine in instances_of(root, StateMachine):
        regions: List[Region] = list(machine.regions)
        for state in machine.all_vertices():
            if isinstance(state, State):
                regions.extend(state.regions)
        for region in regions:
            if not region.subvertices:
                continue
            initials = [v for v in region.subvertices
                        if isinstance(v, Pseudostate) and v.kind == "initial"]
            if len(initials) != 1:
                report.add(Severity.ERROR, region,
                           f"region '{region.name}' has {len(initials)} "
                           f"initial pseudostates, expected 1",
                           code="uml-sm-initial",
                           hint="add one initial pseudostate with a "
                                "single outgoing transition")
            for initial in initials:
                if len(initial.outgoing()) != 1:
                    report.add(Severity.ERROR, initial,
                               "initial pseudostate needs exactly one "
                               "outgoing transition", code="uml-sm-initial-out")


SUPPORTED_PSEUDOSTATE_KINDS = {"initial", "choice"}


def rule_supported_pseudostates(root: Package,
                                report: ValidationReport) -> None:
    """History/junction/terminate parse but neither the simulator nor the
    flattener executes them — warn loudly instead of failing late."""
    for pseudo in instances_of(root, Pseudostate):
        if pseudo.kind not in SUPPORTED_PSEUDOSTATE_KINDS:
            report.add(Severity.WARNING, pseudo,
                       f"pseudostate kind '{pseudo.kind}' is not executable "
                       f"in this subset (supported: "
                       f"{sorted(SUPPORTED_PSEUDOSTATE_KINDS)})",
                       code="uml-sm-unsupported-kind")


def rule_transitions_local(root: Package, report: ValidationReport) -> None:
    """Transition source/target must be set and live in the same region
    (this subset does not support inter-level transitions)."""
    for transition in instances_of(root, Transition):
        if transition.source is None or transition.target is None:
            report.add(Severity.ERROR, transition,
                       "transition with missing source or target",
                       code="uml-sm-dangling")
            continue
        if transition.source.container is not transition.container:
            report.add(Severity.ERROR, transition,
                       "transition source lives in another region",
                       code="uml-sm-crossregion")
        if transition.target.container is not transition.container:
            report.add(Severity.ERROR, transition,
                       "transition target lives in another region",
                       code="uml-sm-crossregion")
        if isinstance(transition.source, FinalState):
            report.add(Severity.ERROR, transition,
                       "transitions cannot leave a final state",
                       code="uml-sm-final-out")


def rule_usecases_testable(root: Package, report: ValidationReport) -> None:
    """A use case without scenarios cannot be tested — and per the paper an
    untestable model element is pointless."""
    for usecase in instances_of(root, UseCase):
        if not usecase.is_testable():
            report.add(Severity.WARNING, usecase,
                       f"use case '{usecase.name}' has no realising "
                       f"scenario (untestable)", code="uml-uc-untestable")
        if usecase in usecase.all_included():
            report.add(Severity.ERROR, usecase,
                       "use case include cycle", code="uml-uc-cycle")


def rule_abstract_not_instantiable_leaf(root: Package,
                                        report: ValidationReport) -> None:
    """An abstract classifier with no specializations is dead weight."""
    for classifier in instances_of(root, Classifier):
        if classifier.is_abstract and not classifier.eget(
                "incoming_generalizations"):
            report.add(Severity.WARNING, classifier,
                       f"abstract classifier '{classifier.name}' has no "
                       f"specializations", code="uml-abstract-leaf")


def rule_activity_structure(root: Package,
                            report: ValidationReport) -> None:
    """Activities need one initial node, a reachable final, decisions with
    a default branch, and joins with at least two incoming edges."""
    for activity in instances_of(root, Activity):
        initials = [n for n in activity.nodes
                    if isinstance(n, InitialNode)]
        if len(initials) != 1:
            report.add(Severity.ERROR, activity,
                       f"activity '{activity.name}' has {len(initials)} "
                       f"initial nodes, expected 1", code="uml-act-initial")
        if not any(isinstance(n, ActivityFinalNode)
                   for n in activity.nodes):
            report.add(Severity.WARNING, activity,
                       f"activity '{activity.name}' has no final node",
                       code="uml-act-final")
        for node in activity.nodes:
            if isinstance(node, DecisionNode):
                guards = [(e.guard or "").strip()
                          for e in node.outgoing()]
                if not any(g in ("", "else") for g in guards):
                    report.add(Severity.WARNING, node,
                               f"decision '{node.name}' has no default "
                               f"(else) branch", code="uml-act-noelse")
            if isinstance(node, JoinNode) and len(node.incoming()) < 2:
                report.add(Severity.ERROR, node,
                           f"join '{node.name}' has fewer than two "
                           f"incoming edges", code="uml-act-join")
        for edge in activity.edges:
            if edge.source is None or edge.target is None:
                report.add(Severity.ERROR, edge,
                           "dangling activity edge",
                           code="uml-act-dangling")


ALL_RULES: List[Rule] = [
    rule_unique_member_names,
    rule_no_generalization_cycles,
    rule_typed_properties,
    rule_association_ends,
    rule_lifelines_represent_classifiers,
    rule_messages_match_operations,
    rule_statemachine_initial,
    rule_transitions_local,
    rule_supported_pseudostates,
    rule_usecases_testable,
    rule_abstract_not_instantiable_leaf,
    rule_activity_structure,
]


def run_wellformed_rules(root: Package,
                         rules: List[Rule] = None) -> ValidationReport:
    """Run all (or the given) well-formedness rules over *root*.

    This is the engine-level building block behind the ``"wellformed"``
    family of :meth:`repro.session.Session.check`.
    """
    report = ValidationReport()
    for rule in (rules if rules is not None else ALL_RULES):
        rule(root, report)
    return report


def check_model(root: Package,
                rules: List[Rule] = None) -> ValidationReport:
    """Deprecated alias of :func:`run_wellformed_rules`.

    .. deprecated::
        Use :meth:`repro.session.Session.check` with the
        ``"wellformed"`` family (or :func:`run_wellformed_rules`).
    """
    warnings.warn(
        "check_model() is deprecated; use repro.session.Session(root)."
        "check(families=('wellformed',)) or run_wellformed_rules()",
        DeprecationWarning, stacklevel=2)
    return run_wellformed_rules(root, rules)


def watch_model(root: Package, rules: List[Rule] = None):
    """An incrementally maintained well-formedness check over *root*.

    .. deprecated::
        Use :meth:`repro.session.Session.watch` with the
        ``"wellformed"`` family; this shim delegates to it.
    """
    warnings.warn(
        "watch_model() is deprecated; use repro.session.Session(root)."
        "watch(families=('wellformed',))",
        DeprecationWarning, stacklevel=2)
    from ..session import Session
    return Session(root).watch(families=("wellformed",),
                               wellformed_rules=rules)
