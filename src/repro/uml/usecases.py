"""UML use cases — deliberately positioned the way the paper demands.

Use cases here are *requirements and test obligations*, never units of
design: a :class:`UseCase` may reference the interactions that realise it
as scenarios, and those scenarios are replayed as conformance tests by
``repro.validation.scenarios``.  There is intentionally no facility for
"implementing" a use case directly; the class model is developed separately
and the system's ability to enact the scenario is checked, matching the
paper's "use cases ... can be thought of as scripts or constraints in the
model checking sense".
"""

from __future__ import annotations

from typing import List

from ..mof import (
    Attribute,
    M_0N,
    MString,
    Reference,
)
from .classifiers import Classifier
from .interactions import Interaction
from .package import NamedElement, PackageableElement, UML


class Actor(Classifier):
    """An external role interacting with the subject."""


class UseCase(Classifier):
    """A named unit of externally observable required behaviour."""

    description = Attribute(MString)
    actors = Reference(Actor, multiplicity=M_0N,
                       doc="Actors participating in this use case.")
    subjects = Reference(Classifier, multiplicity=M_0N,
                         doc="Classifiers to which the requirement applies "
                             "(typically the system class).")
    includes = Reference("UseCase", multiplicity=M_0N,
                         doc="Use cases whose behaviour is always included.")
    extends = Reference("UseCase", multiplicity=M_0N,
                        doc="Use cases this one conditionally extends.")
    scenarios = Reference(Interaction, multiplicity=M_0N,
                          doc="Interactions that realise this use case as "
                              "executable test scenarios.")

    def all_included(self) -> List["UseCase"]:
        """Transitive closure of ``includes``."""
        out: List[UseCase] = []
        stack = list(self.includes)
        while stack:
            current = stack.pop(0)
            if current in out:
                continue
            out.append(current)
            stack.extend(current.includes)
        return out

    def is_testable(self) -> bool:
        """A use case is testable once at least one scenario realises it —
        the paper's minimum bar for any model element."""
        return len(self.scenarios) > 0
