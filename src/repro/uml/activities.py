"""UML activities: token-flow behaviour.

The second behaviour formalism of UML2 (next to state machines): action
nodes connected by control-flow edges, with decision/merge and fork/join
control nodes.  Actions use the same action mini-language as state-machine
effects; edge guards the same OCL-like expressions — so activities are
simulated by :mod:`repro.validation.activity_sim` with identical
semantics to the rest of the framework.
"""

from __future__ import annotations

from typing import List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MString,
    Reference,
)
from .classifiers import Behavior
from .package import NamedElement, UML


class ActivityNode(NamedElement):
    """A node of an activity graph."""

    _mof_abstract = True

    def outgoing(self) -> List["ActivityEdge"]:
        activity = self.container
        if not isinstance(activity, Activity):
            return []
        return [e for e in activity.edges if e.source is self]

    def incoming(self) -> List["ActivityEdge"]:
        activity = self.container
        if not isinstance(activity, Activity):
            return []
        return [e for e in activity.edges if e.target is self]


class InitialNode(ActivityNode):
    """Where the control token starts."""


class ActivityFinalNode(ActivityNode):
    """Terminates the activity when a token arrives."""


class FlowFinalNode(ActivityNode):
    """Consumes one token without terminating the activity."""


class ActionNode(ActivityNode):
    """An executable step; ``body`` is an action-language program."""

    body = Attribute(MString, "")


class DecisionNode(ActivityNode):
    """Routes a token along the first outgoing edge whose guard holds
    (``else`` or guardless edges are the default branch)."""


class MergeNode(ActivityNode):
    """Passes any incoming token straight through."""


class ForkNode(ActivityNode):
    """Duplicates an incoming token onto every outgoing edge."""


class JoinNode(ActivityNode):
    """Emits one token once every incoming edge has delivered one."""


class ActivityEdge(NamedElement):
    """A control flow between two nodes, optionally guarded."""

    source = Reference(ActivityNode)
    target = Reference(ActivityNode)
    guard = Attribute(MString, doc="OCL-like guard; '' or 'else' = "
                                   "default branch on decisions.")


class Activity(Behavior):
    """A behaviour expressed as a token-flow graph."""

    nodes = Reference(ActivityNode, containment=True, multiplicity=M_0N)
    edges = Reference(ActivityEdge, containment=True, multiplicity=M_0N)

    # -- construction helpers -------------------------------------------

    def add_initial(self, name: str = "start") -> InitialNode:
        node = InitialNode(name=name)
        self.nodes.append(node)
        return node

    def add_final(self, name: str = "end") -> ActivityFinalNode:
        node = ActivityFinalNode(name=name)
        self.nodes.append(node)
        return node

    def add_flow_final(self, name: str = "flow_end") -> FlowFinalNode:
        node = FlowFinalNode(name=name)
        self.nodes.append(node)
        return node

    def add_action(self, name: str, body: str = "") -> ActionNode:
        node = ActionNode(name=name, body=body)
        self.nodes.append(node)
        return node

    def add_decision(self, name: str = "decision") -> DecisionNode:
        node = DecisionNode(name=name)
        self.nodes.append(node)
        return node

    def add_merge(self, name: str = "merge") -> MergeNode:
        node = MergeNode(name=name)
        self.nodes.append(node)
        return node

    def add_fork(self, name: str = "fork") -> ForkNode:
        node = ForkNode(name=name)
        self.nodes.append(node)
        return node

    def add_join(self, name: str = "join") -> JoinNode:
        node = JoinNode(name=name)
        self.nodes.append(node)
        return node

    def flow(self, source: ActivityNode, target: ActivityNode,
             guard: str = "", name: str = "") -> ActivityEdge:
        edge = ActivityEdge(name=name, source=source, target=target,
                            guard=guard)
        self.edges.append(edge)
        return edge

    # -- queries ----------------------------------------------------------

    def initial_node(self) -> Optional[InitialNode]:
        for node in self.nodes:
            if isinstance(node, InitialNode):
                return node
        return None

    def node(self, name: str) -> Optional[ActivityNode]:
        for node in self.nodes:
            if node.name == name:
                return node
        return None

    def actions(self) -> List[ActionNode]:
        return [n for n in self.nodes if isinstance(n, ActionNode)]
