"""UML structural and behavioural features: properties, operations,
parameters.

``Property`` doubles as a plain attribute and as a navigable association
end (its ``association`` reference is set in the latter case), following
UML's ownership model: navigable ends are owned by the classifier,
non-navigable ends by the association.
"""

from __future__ import annotations

from typing import List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MBoolean,
    MInteger,
    MetaEnum,
    MString,
    Reference,
)
from .package import NamedElement, UML

AggregationKind = MetaEnum(
    "AggregationKind", ["none", "shared", "composite"], package=UML)

ParameterDirection = MetaEnum(
    "ParameterDirection", ["in", "out", "inout", "return"], package=UML)

VisibilityKind = MetaEnum(
    "VisibilityKind", ["public", "private", "protected", "package"],
    package=UML)


class TypedElement(NamedElement):
    """A named element with a type (M1-level type, i.e. a classifier)."""

    _mof_abstract = True

    type = Reference("Type", doc="The classifier typing this element.")


class MultiplicityElement(TypedElement):
    """A typed element with UML multiplicity bounds (-1 encodes ``*``)."""

    _mof_abstract = True

    lower = Attribute(MInteger, 1)
    upper = Attribute(MInteger, 1, doc="-1 means unbounded (*).")

    @property
    def is_many(self) -> bool:
        return self.upper == -1 or self.upper > 1

    def multiplicity_str(self) -> str:
        upper = "*" if self.upper == -1 else str(self.upper)
        if str(self.lower) == upper:
            return upper
        return f"{self.lower}..{upper}"


class Property(MultiplicityElement):
    """An attribute of a classifier or an association end."""

    visibility = Attribute(VisibilityKind, "private")
    aggregation = Attribute(AggregationKind, "none")
    is_derived = Attribute(MBoolean, False)
    is_read_only = Attribute(MBoolean, False)
    default_value = Attribute(MString, doc="Textual default value.")
    owner = Reference("StructuredClassifier",
                      doc="Owning classifier (for class-owned properties).")
    association = Reference("Association", opposite="member_ends",
                            doc="Set when this property is an association "
                                "end.")

    @property
    def is_association_end(self) -> bool:
        return self.association is not None

    @property
    def is_composite(self) -> bool:
        return self.aggregation == "composite"

    def opposite_end(self) -> Optional["Property"]:
        """The other end of the owning association, if any."""
        if self.association is None:
            return None
        ends = list(self.association.member_ends)
        for end in ends:
            if end is not self:
                return end
        return None


class Parameter(MultiplicityElement):
    """A parameter of an operation (or signal)."""

    direction = Attribute(ParameterDirection, "in")
    default_value = Attribute(MString)


class Operation(NamedElement):
    """A behavioural feature of a classifier."""

    visibility = Attribute(VisibilityKind, "public")
    is_abstract = Attribute(MBoolean, False)
    is_query = Attribute(MBoolean, False,
                         doc="True when the operation has no side effects.")
    is_static = Attribute(MBoolean, False)
    owner = Reference("StructuredClassifier")
    parameters = Reference(Parameter, containment=True, multiplicity=M_0N)
    method = Reference("Behavior",
                       doc="The behaviour implementing this operation.")
    body = Attribute(MString, doc="Inline action-language body (shorthand "
                                  "for a full OpaqueBehavior).")

    def in_parameters(self) -> List[Parameter]:
        return [p for p in self.parameters if p.direction in ("in", "inout")]

    def return_parameter(self) -> Optional[Parameter]:
        for parameter in self.parameters:
            if parameter.direction == "return":
                return parameter
        return None

    def return_type(self):
        parameter = self.return_parameter()
        return parameter.type if parameter is not None else None

    def signature(self) -> str:
        params = ", ".join(
            f"{p.name}: {p.type.name if p.type else '?'}"
            for p in self.in_parameters())
        result = self.return_type()
        suffix = f" -> {result.name}" if result is not None else ""
        return f"{self.name}({params}){suffix}"

    def add_parameter(self, name: str, type=None,
                      direction: str = "in") -> Parameter:
        parameter = Parameter(name=name, direction=direction)
        if type is not None:
            parameter.type = type
        self.parameters.append(parameter)
        return parameter
