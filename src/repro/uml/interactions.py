"""UML interactions (sequence diagrams): lifelines and messages.

Interactions serve two roles in the methodology the paper advocates:

* they *realise* use cases as concrete message scenarios, and
* they act as **tests** — ``repro.validation.scenarios`` replays an
  interaction against a simulated object collaboration and reports whether
  the emergent behaviour conforms.

Crucially, a lifeline must ``represent`` a classifier from the class model;
the well-formedness rules flag "floating" lifelines, which the paper calls
out as the classic failure of use-case-driven development ("the objects are
never shown nor specified in a class diagram").
"""

from __future__ import annotations

from typing import List, Optional

from ..mof import (
    Attribute,
    M_0N,
    MetaEnum,
    MString,
    Reference,
)
from .classifiers import Behavior, Classifier
from .package import NamedElement, UML

MessageSort = MetaEnum(
    "MessageSort",
    ["synchCall", "asynchCall", "asynchSignal", "reply", "createMessage"],
    package=UML)


class Lifeline(NamedElement):
    """A participant in an interaction."""

    represents = Reference(Classifier,
                           doc="The classifier whose instance this lifeline "
                               "stands for. Mandatory for well-formed "
                               "interactions.")


class Message(NamedElement):
    """One communication between lifelines.

    ``name`` is the operation/signal name; ``arguments`` carries textual
    argument values in order.
    """

    sort = Attribute(MessageSort, "synchCall")
    send_lifeline = Reference(Lifeline)
    receive_lifeline = Reference(Lifeline)
    arguments = Attribute(MString, multiplicity=M_0N)

    def label(self) -> str:
        args = ", ".join(self.arguments)
        return f"{self.name}({args})"


class Interaction(Behavior):
    """An ordered set of messages among lifelines."""

    lifelines = Reference(Lifeline, containment=True, multiplicity=M_0N)
    messages = Reference(Message, containment=True, multiplicity=M_0N,
                         doc="Messages in (total) temporal order.")

    # -- construction helpers -------------------------------------------

    def add_lifeline(self, name: str,
                     represents: Optional[Classifier] = None) -> Lifeline:
        lifeline = Lifeline(name=name)
        if represents is not None:
            lifeline.represents = represents
        self.lifelines.append(lifeline)
        return lifeline

    def add_message(self, sender: Lifeline, receiver: Lifeline, name: str, *,
                    sort: str = "synchCall",
                    arguments: Optional[List[str]] = None) -> Message:
        message = Message(name=name, sort=sort,
                          send_lifeline=sender, receive_lifeline=receiver)
        if arguments:
            message.arguments = list(arguments)
        self.messages.append(message)
        return message

    # -- queries ----------------------------------------------------------

    def lifeline(self, name: str) -> Optional[Lifeline]:
        for lifeline in self.lifelines:
            if lifeline.name == name:
                return lifeline
        return None

    def message_names(self) -> List[str]:
        return [m.name for m in self.messages]

    def floating_lifelines(self) -> List[Lifeline]:
        """Lifelines not backed by any classifier — the anti-pattern the
        paper criticises."""
        return [l for l in self.lifelines if l.represents is None]
