"""UML metamodel foundation: named elements, packages, models.

The whole UML subset lives in one ``MetaPackage`` (``UML``), so string
reference targets resolve across the ``repro.uml`` modules.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..mof import (
    Attribute,
    Element,
    M_0N,
    MetaPackage,
    MString,
    Reference,
)

UML = MetaPackage("uml", uri="urn:repro:uml")
"""The metamodel package holding every UML metaclass."""


class UmlElement(Element):
    """Root of the UML metaclass hierarchy."""

    _mof_package = UML
    _mof_abstract = True


class Comment(UmlElement):
    """An annotation attached to its owner by containment."""

    body = Attribute(MString, doc="The comment text.")


class NamedElement(UmlElement):
    """An element with a (possibly qualified) name."""

    _mof_abstract = True

    name = Attribute(MString, doc="The element's simple name.")
    comments = Reference(Comment, containment=True, multiplicity=M_0N,
                         doc="Annotations owned by this element.")

    @property
    def qualified_name(self) -> str:
        """Names of all named ancestors joined with ``::``."""
        parts: List[str] = []
        current: Optional[Element] = self
        while current is not None:
            name = None
            feature = current.meta.find_feature("name")
            if feature is not None and not feature.many:
                name = current.eget("name")
            if name:
                parts.append(name)
            current = current.container
        return "::".join(reversed(parts))

    def __repr__(self) -> str:
        label = f" '{self.name}'" if self.name else ""
        return f"<{self.meta.name}{label}>"


class PackageableElement(NamedElement):
    """Anything a package may directly own."""

    _mof_abstract = True


class Package(PackageableElement):
    """A namespace grouping packageable elements (classes, nested packages,
    state machines, use cases, ...)."""

    packaged_elements = Reference(PackageableElement, containment=True,
                                  multiplicity=M_0N,
                                  doc="Directly owned elements.")

    def add(self, element: PackageableElement) -> PackageableElement:
        """Own *element* and return it (builder convenience)."""
        self.packaged_elements.append(element)
        return element

    def member(self, name: str) -> Optional[PackageableElement]:
        """Direct member with the given simple name, or None."""
        for element in self.packaged_elements:
            if element.name == name:
                return element
        return None

    def members_of_type(self, metaclass) -> List[PackageableElement]:
        """Direct members conforming to *metaclass* (MetaClass or Element
        subclass)."""
        if isinstance(metaclass, type):
            metaclass = metaclass._meta
        return [e for e in self.packaged_elements
                if e.meta.conforms_to(metaclass)]

    def all_members(self) -> Iterator[PackageableElement]:
        """All transitively packaged elements (through nested packages and
        any other containment)."""
        for element in self.all_contents():
            if isinstance(element, PackageableElement):
                yield element


class UmlModel(Package):
    """The root package of a user model (UML's ``Model``)."""
