"""Write-ahead durability for the model server.

A :class:`ModelServer` started with ``wal_dir=`` keeps one write-ahead
log per hosted repository.  The contract:

* **No acknowledged edit is ever lost.**  Every committed ``edit-txn``
  is serialized as one checksummed JSON record and appended to
  ``<wal_dir>/<repo>.wal`` — written, flushed and ``fsync``\\ ed —
  *inside* the kernel transaction, before the epoch bump is
  acknowledged to the client.  A ``kill -9`` at any later point finds
  the record on disk and replays it on the next start.
* **No unacknowledged edit is ever half-applied.**  If the append
  itself fails (disk error, injected ``wal.append`` fault), the open
  transaction rolls the in-memory model back, the log is truncated to
  its pre-append length, and the client receives a replayable
  ``txn-failed`` — memory and disk agree that the edit never happened.
  A crash *during* the append leaves a torn tail record whose checksum
  cannot verify; replay truncates it.  Either way the recovered state
  is exactly the acknowledged prefix.
* **Replay is deterministic.**  The log's first record names a
  digest-sealed snapshot written at attach time (and rewritten by
  compaction) through :func:`repro.xmi.persist.save_model`'s
  tmp+fsync+atomic-rename discipline.  Snapshots preserve element ids,
  and ``create`` ops are annotated at commit time with the eid the
  server assigned, which replay pins back with ``set_eid`` — so ops
  recorded against live state resolve identically against recovered
  state, and a shadow session applying the same acknowledged prefix
  produces a byte-identical check document.

Record format: one JSON object per line; the ``crc`` key holds the
SHA-256 (truncated) of the record's canonical serialization without
it.  A line that does not parse, lacks the checksum, or fails it is a
*torn tail* when it is the final line (truncated silently) and
corruption when it is not (typed :class:`WalCorruptError`).

Compaction rides :func:`save_model`: after ``compact_every`` appended
transactions the current model is snapshotted to
``<repo>.snapshot.<epoch>.<fmt>``, the log is atomically rewritten to a
single origin record naming it, and older snapshot generations are
removed only afterwards — a crash between the two steps leaves the old
log still pointing at the old, still-present snapshot.

Fault sites: ``wal.append`` (fires before the bytes are written) and
``wal.replay`` (fires before each recovered transaction re-applies).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .. import faults as _faults
from ..obs import metrics as _metrics
from ..xmi.persist import atomic_write_text, save_model

#: file suffixes owned by this module inside a WAL directory
WAL_SUFFIX = ".wal"
SNAPSHOT_MARKER = ".snapshot."

#: compact after this many appended transaction records (per repo)
DEFAULT_COMPACT_EVERY = 256


class WalError(Exception):
    """A write-ahead log operation failed."""


class WalCorruptError(WalError):
    """A non-final log record failed to parse or verify.

    A torn *final* record is the expected crash artifact and is
    truncated silently; garbage in the middle of the log means the file
    was damaged after the fact and recovery must not guess past it.
    """

    def __init__(self, path: str, line_no: int, reason: str):
        self.path = path
        self.line_no = line_no
        super().__init__(
            f"write-ahead log '{path}' is corrupt at record "
            f"{line_no}: {reason}")


# ---------------------------------------------------------------------------
# Record encoding
# ---------------------------------------------------------------------------

def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def encode_record(record: Dict[str, Any]) -> bytes:
    """One log line: the record plus a ``crc`` over its canonical form."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    sealed = dict(record)
    sealed["crc"] = _checksum(payload)
    return (json.dumps(sealed, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """The verified record for *line*, or ``None`` when torn/garbled."""
    try:
        sealed = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(sealed, dict) or "crc" not in sealed:
        return None
    crc = sealed.pop("crc")
    payload = json.dumps(sealed, sort_keys=True, separators=(",", ":"))
    if crc != _checksum(payload):
        return None
    return sealed


def read_records(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse the log at *path*.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    file offset up to which the log verified — a torn final record (or
    trailing partial line with no newline) lies beyond it and should be
    truncated away before appending resumes.  Raises
    :class:`WalCorruptError` when a *non*-final record fails.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[Dict[str, Any]] = []
    offset = 0
    line_no = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            break                         # partial line: torn tail
        line = data[offset:newline]
        line_no += 1
        record = decode_record(line)
        if record is None:
            if newline + 1 < len(data):
                raise WalCorruptError(
                    path, line_no,
                    "record fails its checksum but is not the final "
                    "record")
            break                         # torn final record
        records.append(record)
        offset = newline + 1
    return records, offset


# ---------------------------------------------------------------------------
# The per-repository log
# ---------------------------------------------------------------------------

class WriteAheadLog:
    """Append-only durable log for one hosted repository.

    Not thread-safe by itself: the server always calls it with the
    repository lock held (appends serialize with edits by design).
    """

    def __init__(self, directory: str, repo: str,
                 compact_every: int = DEFAULT_COMPACT_EVERY):
        self.directory = directory
        self.repo = repo
        self.path = os.path.join(directory, repo + WAL_SUFFIX)
        self.compact_every = compact_every
        self.records_since_snapshot = 0
        self.appended = 0
        self.compactions = 0
        self.broken: Optional[str] = None
        self._handle = None

    # -- lifecycle ---------------------------------------------------------

    def _snapshot_name(self, epoch: int, fmt: str = "json") -> str:
        return f"{self.repo}{SNAPSHOT_MARKER}{epoch}.{fmt}"

    def snapshot_path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def create(self, model: Any, epoch: int = 0) -> None:
        """Start a fresh log: snapshot *model*, write the origin record."""
        snapshot = self._snapshot_name(epoch)
        save_model(model, self.snapshot_path(snapshot),
                   keep_backup=False)
        origin = {"type": "origin", "repo": self.repo, "epoch": epoch,
                  "snapshot": snapshot}
        atomic_write_text(self.path,
                          encode_record(origin).decode("utf-8"),
                          keep_backup=False)
        self.records_since_snapshot = 0
        self._open_append()

    def resume(self, valid_bytes: int,
               records_since_snapshot: int) -> None:
        """Reopen an existing (recovered) log for appending, dropping
        any torn tail past *valid_bytes*."""
        if os.path.getsize(self.path) != valid_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self.records_since_snapshot = records_since_snapshot
        self._open_append()

    def _open_append(self) -> None:
        self.close()
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def flush(self) -> None:
        """fsync the log (drain path; appends already fsync per record)."""
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass

    # -- appending ---------------------------------------------------------

    def append_txn(self, epoch: int, ops: List[Any]) -> None:
        """Durably append one committed transaction record.

        Raises on any failure *after truncating the log back to its
        pre-append length*, so a failed (or fault-injected) append
        leaves no partial record behind — the caller rolls the
        in-memory transaction back and memory and disk agree.
        """
        if self.broken:
            raise WalError(
                f"write-ahead log for {self.repo!r} is broken "
                f"({self.broken}); refusing further edits")
        if self._handle is None:
            self._open_append()
        line = encode_record({"type": "txn", "epoch": epoch, "ops": ops})
        offset = self._handle.tell()
        try:
            if _faults.ACTIVE is not None:
                _faults.probe("wal.append")
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except BaseException as exc:
            try:
                self._handle.truncate(offset)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:
                # the log is in an unknown state: poison it rather than
                # risk acknowledging edits that may not be on disk
                self.broken = f"truncate after failed append: {exc}"
                self.close()
            raise
        self.appended += 1
        self.records_since_snapshot += 1
        _metrics.REGISTRY.counter(
            "server.wal.appends",
            help="edit-txn records durably appended, by repo",
            repo=self.repo).inc()
        _metrics.REGISTRY.counter(
            "server.wal.bytes",
            help="bytes appended to write-ahead logs").inc(len(line))

    def maybe_compact(self, model: Any, epoch: int) -> bool:
        """Snapshot + truncate once the log accumulates enough records."""
        if self.records_since_snapshot < self.compact_every:
            return False
        self.compact(model, epoch)
        return True

    def compact(self, model: Any, epoch: int) -> None:
        """Rewrite the log as a single origin record at *epoch*.

        Ordered so every crash window recovers: the new snapshot lands
        (atomically) under a new name first, then the log is atomically
        rewritten to point at it, and only then are older snapshot
        generations deleted.
        """
        keep = set()
        snapshot = self._snapshot_name(epoch)
        keep.add(snapshot)
        save_model(model, self.snapshot_path(snapshot),
                   keep_backup=False)
        origin = {"type": "origin", "repo": self.repo, "epoch": epoch,
                  "snapshot": snapshot}
        self.close()
        atomic_write_text(self.path,
                          encode_record(origin).decode("utf-8"),
                          keep_backup=False)
        self._open_append()
        self.records_since_snapshot = 0
        self.compactions += 1
        _metrics.REGISTRY.counter(
            "server.wal.compactions",
            help="snapshot+truncate compactions, by repo",
            repo=self.repo).inc()
        prefix = self.repo + SNAPSHOT_MARKER
        for name in os.listdir(self.directory):
            if name.startswith(prefix) and name not in keep:
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "appended": self.appended,
            "since_snapshot": self.records_since_snapshot,
            "compactions": self.compactions,
            "broken": self.broken,
        }


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

def annotate_created(ops: List[Any],
                     created: Dict[int, Any]) -> List[Any]:
    """The ops list as recorded in the log: ``create`` ops gain the eid
    the server assigned, so replay pins identical ids."""
    out: List[Any] = []
    for index, op in enumerate(ops):
        element = created.get(index)
        if element is not None:
            op = dict(op)
            op["eid"] = element.eid
        out.append(op)
    return out


def pending_logs(directory: str) -> List[str]:
    """Repo names with a log present in *directory*, sorted."""
    out = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(WAL_SUFFIX):
            out.append(name[:-len(WAL_SUFFIX)])
    return out


def recover_repo(server: Any, repo: str, directory: str,
                 compact_every: int = DEFAULT_COMPACT_EVERY) -> Any:
    """Rebuild one repository from its log and attach it to *server*.

    Loads the origin snapshot, replays every committed transaction
    record through the same op applier the live ``edit-txn`` verb uses
    (pinning recorded create eids), truncates any torn tail, and
    attaches the repository at its recovered epoch with the log open
    for further appends.  Returns the attached
    :class:`~repro.server.dispatch.RepoState`.
    """
    from ..cli import load_model
    from ..mof.txn import transaction
    from ..session import Session
    from .dispatch import apply_edit_ops

    wal = WriteAheadLog(directory, repo, compact_every)
    records, valid_bytes = read_records(wal.path)
    if not records or records[0].get("type") != "origin":
        raise WalCorruptError(wal.path, 1,
                              "log does not start with an origin record")
    origin = records[0]
    snapshot = wal.snapshot_path(origin["snapshot"])
    model = load_model(snapshot)
    epoch = int(origin["epoch"])
    replayed = 0
    for record in records[1:]:
        if record.get("type") != "txn":
            raise WalCorruptError(
                wal.path, replayed + 2,
                f"unexpected record type {record.get('type')!r}")
        if int(record["epoch"]) != epoch + 1:
            raise WalCorruptError(
                wal.path, replayed + 2,
                f"transaction record jumps from epoch {epoch} to "
                f"{record['epoch']}")
        if _faults.ACTIVE is not None:
            _faults.probe("wal.replay")
        with transaction(model):
            apply_edit_ops(server.resolve_metaclass, model,
                           record["ops"], pin_eids=True)
        epoch += 1
        replayed += 1
    wal.resume(valid_bytes, replayed)
    state = server.attach(repo, Session(model), epoch=epoch, wal=wal)
    state.edits_applied = replayed
    _metrics.REGISTRY.counter(
        "server.wal.recovered_txns",
        help="transactions replayed from write-ahead logs",
        repo=repo).inc(replayed)
    return state
