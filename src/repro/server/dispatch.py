"""The multi-tenant model server: repositories, verbs, epochs, isolation.

A :class:`ModelServer` hosts many named repositories (tenants), each a
:class:`~repro.session.Session` over one live model, and many
connections, each an independent client.  The verb set mirrors the
Session facade one-to-one (``load``/``generate``/``check``/``stats``)
plus the server-only concurrency verbs (``edit-txn``/``watch``/
``close``) — see the verb↔Session mapping table in DESIGN.md.

Concurrency model
-----------------

* **Optimistic at the protocol level.**  Every repository carries an
  *edit epoch*, bumped once per committed ``edit-txn``.  A transaction
  submitted against a stale ``base_epoch`` is rejected with a
  ``conflict`` error that carries the current epoch and echoes the ops,
  so the client replays the identical batch against fresh state —
  no conflicting edit is ever silently dropped.
* **Pessimistic at the kernel level.**  The MOF kernel and the
  transaction journal are deliberately single-writer (the journal taps
  process-wide hooks), so the server applies edit transactions under one
  global edit lock, and serializes checks against edits per repository
  with a per-repo lock.  Readers of different repositories never contend
  with each other.
* **Connection-scoped incremental engines.**  Each connection gets its
  own :class:`~repro.incremental.IncrementalEngine` per repository,
  created on first ``check`` and kept warm.  Another client's *checks*
  never touch it, and edits to a *different* repository never invalidate
  it — only committed edits to the same repository mark the precisely
  affected units dirty (that is correctness, not interference).

Backpressure and failure isolation surface through ``repro.obs``:
``server.requests`` (by verb/outcome), ``server.conflicts``,
``server.latency`` histograms, and the ``stats`` verb, which also
reports each engine's checker quarantine.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..mof.kernel import Element, MetaClass, MetaPackage
from ..mof.repository import Model
from ..mof.txn import transaction
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..session import Session
from . import durability as _durability
from .protocol import (
    ProtocolError,
    ServerError,
    decode_frame,
    error_frame,
    event_frame,
    response_frame,
)

#: Wire protocol revision, reported by ``stats`` and the serve banner.
PROTOCOL_VERSION = 1

#: Per-verb wall-clock budgets (seconds).  A request past its budget is
#: shed before it runs, and the long verbs re-check cooperatively at
#: safe points (per edit op, before a cache-missing check) so a blown
#: deadline aborts with everything rolled back.
DEFAULT_DEADLINES: Dict[str, float] = {
    "ping": 5.0,
    "close": 5.0,
    "stats": 10.0,
    "watch": 30.0,
    "check": 30.0,
    "edit-txn": 15.0,
    "load": 60.0,
    "generate": 120.0,
}

#: Budget for verbs not named in the deadline table.
DEFAULT_DEADLINE = 30.0

_repo_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# Edit-op application (shared by the edit-txn verb and WAL replay)
# ---------------------------------------------------------------------------

def apply_edit_ops(resolve_metaclass: Callable[[str], MetaClass],
                   model: Model, ops: List[Any], *,
                   pin_eids: bool = False,
                   created: Optional[Dict[int, Element]] = None,
                   deadline_check: Optional[Callable[[], None]] = None
                   ) -> None:
    """Apply one ``edit-txn`` op batch against *model*.

    The caller owns transactional scope (the live verb wraps this in a
    kernel transaction and rolls back on any raise; WAL replay wraps
    each recovered record the same way).  With ``pin_eids`` a
    ``create`` op carrying an ``eid`` key re-assigns the recorded id,
    so replayed state resolves identically to the live run that logged
    it; *created* (op index -> element) collects new elements so the
    live run can annotate the log record.
    """
    aliases: Dict[str, Element] = {}
    for index, op in enumerate(ops):
        if deadline_check is not None:
            deadline_check()
        if not isinstance(op, dict):
            raise ServerError("bad-params",
                              f"op #{index} must be an object")
        _apply_edit_op(resolve_metaclass, model, op, aliases, index,
                       pin_eids, created)


def _apply_edit_op(resolve_metaclass: Callable[[str], MetaClass],
                   model: Model, op: Dict[str, Any],
                   aliases: Dict[str, Element], index: int,
                   pin_eids: bool,
                   created: Optional[Dict[int, Element]]) -> None:
    kind = op.get("op")
    resolve = lambda ref: _resolve_edit_ref(model, ref, aliases, index)
    if kind == "create":
        metaclass = resolve_metaclass(_require_param(op, "metaclass", str))
        element = metaclass.instantiate(**(op.get("attrs") or {}))
        if pin_eids and "eid" in op:
            element.set_eid(op["eid"])
        if created is not None:
            created[index] = element
        if "parent" in op:
            parent = resolve(op["parent"])
            feature = _require_param(op, "feature", str)
            slot = parent.eget(feature)
            if hasattr(slot, "append"):
                slot.append(element)
            else:
                parent.eset(feature, element)
        else:
            model.add_root(element)
        if "as" in op:
            aliases[str(op["as"])] = element
        return
    if kind == "delete":
        element = resolve(_require_param(op, "element", str))
        if element in model.roots:
            model.remove_root(element)
        element.delete()
        return
    element = resolve(_require_param(op, "element", str))
    feature = _require_param(op, "feature", str)
    if "ref" in op:
        value = _resolve_edit_ref(model, op["ref"], aliases, index)
    else:
        value = op.get("value")
    if kind == "set":
        element.eset(feature, value)
    elif kind == "unset":
        element.eunset(feature)
    elif kind == "add":
        element.eget(feature).append(value)
    elif kind == "remove":
        element.eget(feature).remove(value)
    else:
        raise ServerError(
            "bad-params",
            f"op #{index}: unknown op kind {kind!r} (expected "
            f"create/delete/set/unset/add/remove)")


def _resolve_edit_ref(model: Model, ref: Any,
                      aliases: Dict[str, Element], index: int) -> Element:
    if not isinstance(ref, str):
        raise ServerError("bad-params",
                          f"op #{index}: element ref must be a string")
    if ref.startswith("$"):
        element = aliases.get(ref[1:])
        if element is None:
            raise ServerError(
                "bad-params",
                f"op #{index}: alias {ref!r} is not defined by an "
                f"earlier create op")
        return element
    element = model.index().resolve_eid(ref)
    if element is None:
        raise ServerError(
            "bad-params", f"op #{index}: no element {ref!r}")
    return element


def _require_param(params: Dict[str, Any], key: str, kind: type) -> Any:
    value = params.get(key)
    if not isinstance(value, kind) or (kind is int
                                       and isinstance(value, bool)):
        raise ServerError(
            "bad-params",
            f"param {key!r} must be a {kind.__name__}, "
            f"got {type(value).__name__}")
    return value


class RepoState:
    """One hosted repository: a session, its edit epoch, and watchers."""

    def __init__(self, name: str, session: Session):
        self.name = name
        self.session = session
        self.model: Model = session.model
        self.epoch = 0
        self.lock = threading.RLock()    # serializes checks vs. edits
        self.watchers: Dict[int, "ServerConnection"] = {}
        self.edits_applied = 0
        self.edits_rejected = 0
        # write-ahead log (None unless the server runs with a wal_dir);
        # appended inside the edit transaction, before the epoch bump
        # is acknowledged.
        self.wal: Optional[_durability.WriteAheadLog] = None
        # cross-connection check-result cache: (families, severity,
        # workers, columnar) -> the check document computed at the
        # current epoch.  Check results are pure functions of (model
        # state, parameters), and model state only changes through
        # committed edit-txns — so the cache is cleared exactly on epoch
        # bump and any connection may reuse any other's document.
        self.check_cache: Dict[Tuple[Any, ...], Dict[str, Any]] = {}

    def summary(self) -> Dict[str, Any]:
        document = {
            "repo": self.name,
            "uri": self.model.uri,
            "roots": len(self.model.roots),
            "elements": self.model.size(),
            "epoch": self.epoch,
            "edits_applied": self.edits_applied,
            "edits_rejected": self.edits_rejected,
            "watchers": len(self.watchers),
        }
        if self.wal is not None:
            document["wal"] = self.wal.stats()
        return document


class ModelServer:
    """Verb dispatch and repository registry shared by every transport."""

    def __init__(self, *, max_frame: Optional[int] = None,
                 packages: Optional[List[MetaPackage]] = None,
                 wal_dir: Optional[str] = None,
                 wal_compact_every: Optional[int] = None,
                 deadlines: Optional[Dict[str, float]] = None):
        from .protocol import MAX_FRAME_BYTES
        self.max_frame = max_frame or MAX_FRAME_BYTES
        self.repos: Dict[str, RepoState] = {}
        self._lock = threading.RLock()          # repo map + connection set
        self._edit_lock = threading.Lock()      # kernel/journal single-writer
        self._connections: Dict[int, "ServerConnection"] = {}
        self._conn_counter = itertools.count(1)
        self._packages = packages
        self.started = time.time()
        self.deadlines = dict(DEFAULT_DEADLINES)
        self.deadlines.update(deadlines or {})
        self.wal_dir = os.fspath(wal_dir) if wal_dir is not None else None
        self.wal_compact_every = (wal_compact_every
                                  or _durability.DEFAULT_COMPACT_EVERY)
        self.recovered: List[str] = []
        if self.wal_dir is not None:
            os.makedirs(self.wal_dir, exist_ok=True)
            self.recovered = self._recover()

    def _recover(self) -> List[str]:
        """Replay every pending WAL in ``wal_dir`` (server start)."""
        names = []
        for repo in _durability.pending_logs(self.wal_dir):
            with _trace.span("server.wal.recover", repo=repo):
                state = _durability.recover_repo(
                    self, repo, self.wal_dir,
                    compact_every=self.wal_compact_every)
            names.append(state.name)
        return names

    # -- repositories ------------------------------------------------------

    def attach(self, name: str, session: Session, *, epoch: int = 0,
               wal: Optional[_durability.WriteAheadLog] = None
               ) -> RepoState:
        """Host an existing session as repository *name*.

        With a ``wal_dir`` configured the repository gets a fresh
        write-ahead log seeded with a snapshot of its current state
        (unless recovery already built one and passes it in as *wal*).
        """
        if not name or any(sep in name for sep in ("/", "\\", "\0")) \
                or name.startswith("."):
            raise ServerError("bad-params",
                              f"invalid repository name {name!r}")
        with self._lock:
            if name in self.repos:
                raise ServerError("bad-params",
                                  f"repository {name!r} already loaded")
            state = RepoState(name, session)
            state.epoch = epoch
            if wal is not None:
                state.wal = wal
            elif self.wal_dir is not None:
                state.wal = _durability.WriteAheadLog(
                    self.wal_dir, name,
                    compact_every=self.wal_compact_every)
                state.wal.create(session.model, epoch=epoch)
            self.repos[name] = state
            return state

    def repo(self, name: str) -> RepoState:
        with self._lock:
            state = self.repos.get(name)
        if state is None:
            raise ServerError(
                "no-such-repo", f"no repository {name!r}",
                {"repos": sorted(self.repos)})
        return state

    def _known_packages(self) -> List[MetaPackage]:
        if self._packages is None:
            from ..generate import demo_package
            from ..uml import UML
            self._packages = [UML, demo_package()]
        return self._packages

    def resolve_metaclass(self, name: str) -> MetaClass:
        def walk(package: MetaPackage):
            yield from package.classifiers.values()
            for sub in package.subpackages.values():
                yield from walk(sub)
        for package in self._known_packages():
            for classifier in walk(package):
                if isinstance(classifier, MetaClass) \
                        and classifier.name == name:
                    return classifier
        raise ServerError("bad-params", f"unknown metaclass {name!r}")

    # -- connections -------------------------------------------------------

    def connect(self, send: Callable[[Dict[str, Any]], None]
                ) -> "ServerConnection":
        """Open a connection whose outbound frames go through *send*."""
        conn = ServerConnection(self, next(self._conn_counter), send)
        with self._lock:
            self._connections[conn.id] = conn
        _metrics.REGISTRY.gauge(
            "server.connections",
            help="currently open server connections").inc()
        return conn

    def _disconnect(self, conn: "ServerConnection") -> None:
        with self._lock:
            self._connections.pop(conn.id, None)
            for state in self.repos.values():
                state.watchers.pop(conn.id, None)
        _metrics.REGISTRY.gauge(
            "server.connections",
            help="currently open server connections").dec()

    def flush_wals(self) -> None:
        """fsync every repository's write-ahead log (drain path)."""
        with self._lock:
            states = list(self.repos.values())
        for state in states:
            if state.wal is not None:
                with state.lock:
                    state.wal.flush()

    def shutdown(self) -> None:
        """Close every connection (detaching their engines) and every
        write-ahead log."""
        with self._lock:
            connections = list(self._connections.values())
            states = list(self.repos.values())
        for conn in connections:
            conn.cleanup()
        for state in states:
            if state.wal is not None:
                with state.lock:
                    state.wal.close()

    # -- aggregate stats ---------------------------------------------------

    def stats_document(self) -> Dict[str, Any]:
        from ..session import runtime_stats
        with self._lock:
            repos = {name: state.summary()
                     for name, state in sorted(self.repos.items())}
            connections = len(self._connections)
        document = runtime_stats()
        document["server"] = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(time.time() - self.started, 3),
            "connections": connections,
            "repos": repos,
        }
        if self.wal_dir is not None:
            document["server"]["wal_dir"] = self.wal_dir
            document["server"]["recovered"] = list(self.recovered)
        return document


class ServerConnection:
    """One client: per-repo incremental engines, watches, FIFO dispatch."""

    def __init__(self, server: ModelServer, conn_id: int,
                 send: Callable[[Dict[str, Any]], None]):
        self.server = server
        self.id = conn_id
        self._send = send
        self._send_lock = threading.Lock()
        self.engines: Dict[str, Any] = {}        # repo name -> engine
        self.watching: Dict[str, Dict[str, Any]] = {}
        self.closed = False
        self._deadline: Optional[float] = None   # monotonic, per request
        self._deadline_verb = ""

    # -- outbound ----------------------------------------------------------

    def send(self, frame: Dict[str, Any]) -> None:
        with self._send_lock:
            self._send(frame)

    def push_event(self, frame: Dict[str, Any]) -> bool:
        """Best-effort event delivery; a dead transport drops the watch."""
        try:
            self.send(frame)
            return True
        except Exception:
            self.cleanup()
            return False

    # -- inbound -----------------------------------------------------------

    def handle_line(self, line: bytes,
                    arrival: Optional[float] = None) -> None:
        """Decode one wire line and dispatch it (transport entry point).

        *arrival* is the ``time.monotonic()`` the transport first saw
        the frame — deadline budgets count queue time, so a request that
        sat behind a backlog past its budget is shed without running.
        """
        try:
            frame = decode_frame(line, max_frame=self.server.max_frame)
        except ProtocolError as exc:
            self._count("?", "protocol-error")
            self.send(error_frame(None, exc.code, str(exc),
                                  exc.data or None))
            return
        self.handle_frame(frame, arrival=arrival)

    def handle_frame(self, frame: Dict[str, Any],
                     arrival: Optional[float] = None) -> None:
        request_id = frame.get("id")
        verb = frame.get("verb")
        if request_id is None or not isinstance(verb, str):
            self._count("?", "bad-request")
            self.send(error_frame(
                request_id, "bad-request",
                "request frames need an 'id' and a string 'verb'"))
            return
        params = frame.get("params") or {}
        if not isinstance(params, dict):
            self._count(verb, "bad-request")
            self.send(error_frame(request_id, "bad-params",
                                  "'params' must be a JSON object"))
            return
        handler = getattr(self, "_verb_" + verb.replace("-", "_"), None)
        if handler is None or not verb.islower():
            self._count(verb, "unknown-verb")
            self.send(error_frame(
                request_id, "unknown-verb", f"unknown verb {verb!r}",
                {"verbs": sorted(VERBS)}))
            return
        if self.closed:
            self.send(error_frame(request_id, "closed",
                                  "connection is closed"))
            return
        budget = self.server.deadlines.get(verb, DEFAULT_DEADLINE)
        base = arrival if arrival is not None else time.monotonic()
        self._deadline = base + budget
        self._deadline_verb = verb
        started = time.perf_counter()
        try:
            self.check_deadline()          # shed before doing any work
            result = handler(params)
        except ServerError as exc:
            self._count(verb, exc.code)
            self._observe(verb, started)
            self.send(error_frame(request_id, exc.code, str(exc),
                                  exc.data or None))
            return
        except Exception as exc:  # noqa: BLE001 - a verb must never kill
            self._count(verb, "internal")                 # the connection
            self._observe(verb, started)
            self.send(error_frame(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}"))
            return
        finally:
            self._deadline = None
        self._count(verb, "ok")
        self._observe(verb, started)
        self.send(response_frame(request_id, result))

    def check_deadline(self) -> None:
        """Raise ``deadline-exceeded`` if the active request blew its
        budget.  Called at cooperative safe points (per edit op, before
        a cache-missing check) — any partial work is rolled back by the
        enclosing transaction."""
        deadline = self._deadline
        if deadline is None or time.monotonic() <= deadline:
            return
        verb = self._deadline_verb
        _metrics.REGISTRY.counter(
            "server.deadlines",
            help="requests shed or aborted on a blown verb budget",
            verb=verb).inc()
        raise ServerError(
            "deadline-exceeded",
            f"{verb!r} request blew its "
            f"{self.server.deadlines.get(verb, DEFAULT_DEADLINE)}s "
            f"budget",
            {"verb": verb, "replayable": True})

    def cleanup(self) -> None:
        """Detach engines and watches; idempotent (EOF and close verb)."""
        if self.closed:
            return
        self.closed = True
        for engine in self.engines.values():
            engine.detach()
        self.engines.clear()
        self.watching.clear()
        self.server._disconnect(self)

    # -- metrics -----------------------------------------------------------

    @staticmethod
    def _count(verb: str, outcome: str) -> None:
        _metrics.REGISTRY.counter(
            "server.requests", help="requests dispatched, by verb/outcome",
            verb=verb, outcome=outcome).inc()

    @staticmethod
    def _observe(verb: str, started: float) -> None:
        _metrics.REGISTRY.histogram(
            "server.latency", help="request handling latency (seconds)",
            verb=verb).observe(time.perf_counter() - started)

    # -- param helpers -----------------------------------------------------

    @staticmethod
    def _require(params: Dict[str, Any], key: str, kind: type) -> Any:
        value = params.get(key)
        if not isinstance(value, kind) or (kind is int
                                           and isinstance(value, bool)):
            raise ServerError(
                "bad-params",
                f"param {key!r} must be a {kind.__name__}, "
                f"got {type(value).__name__}")
        return value

    def _repo_param(self, params: Dict[str, Any]) -> RepoState:
        return self.server.repo(self._require(params, "repo", str))

    # -- verbs -------------------------------------------------------------

    def _verb_load(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Host a serialized model file as a new repository."""
        from ..cli import load_model
        name = self._require(params, "repo", str)
        path = self._require(params, "path", str)
        try:
            session = Session(load_model(path))
        except FileNotFoundError as exc:
            raise ServerError("bad-params", f"cannot load {path}: {exc}")
        state = self.server.attach(name, session)
        return state.summary()

    def _verb_generate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Host a freshly generated seeded corpus as a new repository."""
        name = params.get("repo") or f"gen{next(_repo_counter)}"
        session = Session.generate(
            params.get("package", "demo"),
            size=int(params.get("size", 1000)),
            seed=int(params.get("seed", 0)),
            repair=bool(params.get("repair", True)))
        state = self.server.attach(name, session)
        summary = state.summary()
        if session.generation is not None \
                and session.generation.repair is not None:
            summary["repair_converged"] = \
                session.generation.repair.converged
        return summary

    def _verb_check(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Family-filtered checking over this connection's warm engine."""
        state = self._repo_param(params)
        families = params.get("families")
        if families is not None and not isinstance(families, list):
            raise ServerError("bad-params",
                              "'families' must be a list of family names")
        severity = params.get("severity")
        incremental = bool(params.get("incremental", True))
        workers = params.get("workers")
        if workers is not None and (not isinstance(workers, int)
                                    or isinstance(workers, bool)):
            raise ServerError("bad-params", "'workers' must be an integer")
        columnar = bool(params.get("columnar", False))
        key = (tuple(families) if families is not None else None,
               severity, workers, columnar)
        with state.lock:
            cached = state.check_cache.get(key)
            _metrics.REGISTRY.counter(
                "server.check_cache",
                help="cross-connection check-result cache lookups",
                result="hit" if cached is not None else "miss").inc()
            if cached is not None:
                document = dict(cached)
            else:
                self.check_deadline()   # a full check is the costly path
                if columnar:
                    state.model.enable_columns()
                try:
                    if incremental and not (workers and workers > 1):
                        engine = self._engine(state, families)
                        engine.revalidate()
                        result = engine.check_result()
                    else:
                        # workers forces the full-pass path: sharding is
                        # full-pass only (repro.parallel)
                        result = state.session.check(families=families,
                                                     workers=workers)
                except ValueError as exc:
                    raise ServerError("bad-params", str(exc))
                if severity is not None:
                    try:
                        result = result.filtered(severity)
                    except ValueError as exc:
                        raise ServerError("bad-params", str(exc))
                document = result.to_json()
                state.check_cache[key] = dict(document)
        document["repo"] = state.name
        document["epoch"] = state.epoch
        return document

    def _engine(self, state: RepoState, families: Optional[List[str]]):
        """This connection's engine for *state*, created on first use.

        The family selection is fixed at creation (same contract as
        ``Session.watch``); a later ``check`` with different families
        rebuilds the engine.
        """
        key = state.name
        engine = self.engines.get(key)
        selection = tuple(families) if families is not None else None
        if engine is not None \
                and getattr(engine, "_server_families", None) != selection:
            engine.detach()
            engine = None
        if engine is None:
            engine = state.session.watch(families=families)
            engine._server_families = selection
            self.engines[key] = engine
        return engine

    def _verb_edit_txn(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """One atomic, epoch-guarded batch of edits."""
        state = self._repo_param(params)
        base_epoch = self._require(params, "base_epoch", int)
        ops = self._require(params, "ops", list)
        with state.lock:
            if base_epoch != state.epoch:
                state.edits_rejected += 1
                _metrics.REGISTRY.counter(
                    "server.conflicts",
                    help="edit-txns rejected on a stale epoch",
                    repo=state.name).inc()
                raise ServerError(
                    "conflict",
                    f"base_epoch {base_epoch} is stale "
                    f"(repository is at epoch {state.epoch})",
                    {"repo": state.name, "base_epoch": base_epoch,
                     "current_epoch": state.epoch, "replayable": True,
                     "ops": ops})
            with self.server._edit_lock:
                applied, touched = self._apply_ops(state, ops)
            state.epoch += 1
            state.edits_applied += 1
            state.check_cache.clear()     # documents were per-epoch
            epoch = state.epoch
            if state.wal is not None:
                state.wal.maybe_compact(state.model, epoch)
            self._notify_watchers(state, touched)
        return {"repo": state.name, "epoch": epoch, "applied": applied,
                "touched": touched}

    def _apply_ops(self, state: RepoState,
                   ops: List[Any]) -> Tuple[int, List[str]]:
        """Apply *ops* inside one kernel transaction; roll back on any
        failure and convert it into a replay-safe ``txn-failed`` error.

        Durability ordering: the WAL append runs *inside* the
        transaction, after every op succeeded but before commit — an
        append failure rolls memory back and the log is already
        truncated to its pre-append length, so disk and memory always
        agree, and a record only becomes durable if the edit is about
        to be acknowledged.
        """
        created: Dict[int, Element] = {}
        try:
            with transaction(state.model) as txn:
                apply_edit_ops(self.server.resolve_metaclass, state.model,
                               ops, created=created,
                               deadline_check=self.check_deadline)
                touched = [element.eid
                           for element in txn.touched_elements()]
                applied = len(ops)
                if state.wal is not None:
                    state.wal.append_txn(
                        state.epoch + 1,
                        _durability.annotate_created(ops, created))
        except ServerError:
            raise
        except Exception as exc:
            raise ServerError(
                "txn-failed",
                f"edit-txn rolled back: {type(exc).__name__}: {exc}",
                {"repo": state.name, "rolled_back": True,
                 "replayable": True, "ops": ops})
        return applied, touched

    def _notify_watchers(self, state: RepoState,
                         touched: List[str]) -> None:
        """Push a diagnostics event to every watcher of *state*.

        Runs with the repo lock held (we are still inside the committing
        request), so each watcher's engine revalidates against exactly
        the committed epoch.
        """
        for conn in list(state.watchers.values()):
            spec = conn.watching.get(state.name)
            if spec is None:
                continue
            engine = conn._engine(state, spec.get("families"))
            engine.revalidate()
            result = engine.check_result()
            if spec.get("severity") is not None:
                result = result.filtered(spec["severity"])
            document = result.to_json() if spec.get("full") else {
                "ok": result.ok,
                "errors": len(result.errors),
                "warnings": len(result.warnings),
                "infos": len(result.infos),
            }
            conn.push_event(event_frame(
                "diagnostics", repo=state.name, epoch=state.epoch,
                touched=touched, data=document))

    def _verb_watch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Subscribe to server-push diagnostics for one repository."""
        state = self._repo_param(params)
        if params.get("stop"):
            self.watching.pop(state.name, None)
            state.watchers.pop(self.id, None)
            return {"repo": state.name, "watching": False}
        families = params.get("families")
        if families is not None and not isinstance(families, list):
            raise ServerError("bad-params",
                              "'families' must be a list of family names")
        spec = {"families": families,
                "severity": params.get("severity"),
                "full": bool(params.get("full", False))}
        with state.lock:
            engine = self._engine(state, families)   # prime the warm state
            engine.revalidate()
            self.watching[state.name] = spec
            state.watchers[self.id] = self
            result = engine.check_result()
        return {"repo": state.name, "watching": True, "epoch": state.epoch,
                "errors": len(result.errors),
                "warnings": len(result.warnings)}

    def _verb_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Server-wide stats; with ``repo``, that session's stats dict
        (a passthrough of :meth:`repro.session.Session.stats`) plus this
        connection's engine/quarantine state."""
        if "repo" in params:
            state = self._repo_param(params)
            with state.lock:
                document = state.session.stats()
            document["server"] = state.summary()
            engine = self.engines.get(state.name)
            if engine is not None:
                document["engine"] = {
                    "units": engine.unit_count(),
                    "stats": engine.stats.summary(),
                    "quarantined": engine.quarantine_report(),
                }
            return document
        return self.server.stats_document()

    def _verb_close(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.cleanup()
        return {"closed": True}

    def _verb_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "protocol": PROTOCOL_VERSION}


#: The protocol's verb vocabulary (``unknown-verb`` errors report it).
VERBS = tuple(sorted(
    name[len("_verb_"):].replace("_", "-")
    for name in vars(ServerConnection) if name.startswith("_verb_")))
