"""Transports for the model server: TCP sockets and in-process.

The dispatch layer only needs two things from a transport: a way to
deliver inbound lines to :meth:`ServerConnection.handle_line`, and a
``send(frame)`` callable for outbound frames.  Two implementations:

* :class:`TcpServer` / :class:`TcpClient` — the real thing: a listener
  thread accepting connections, one reader + one worker thread per
  connection, newline-delimited JSON frames over a stream socket;
* :func:`ModelServer.connect` driven directly by
  :class:`InProcessClient` — the same frame round-trip (encode → decode
  both ways, so only JSON-serializable payloads pass) without a socket,
  used by tests and benchmarks to measure dispatch cost without kernel
  networking noise.

Liveness is bounded on every axis:

* **Backpressure** — each connection owns a bounded inflight queue
  (the reader enqueues, the worker dispatches FIFO); a client that
  pipelines past ``max_inflight`` gets an immediate ``overloaded``
  error for the excess frame instead of growing server memory.
* **Slowloris eviction** — a connection that holds a *partial* frame
  open past ``partial_frame_timeout`` seconds is dropped.  Idle
  connections (no buffered bytes — e.g. a quiet ``watch`` client) are
  never evicted.
* **Slow readers** — outbound writes run against ``send_timeout``; a
  peer that stops reading until the kernel buffer fills gets its
  connection dropped instead of wedging a server thread.
* **Graceful drain** — :meth:`TcpServer.drain` stops accepting,
  answers queued-but-unstarted requests with ``draining``, lets the
  inflight request on each connection finish against its deadline,
  flushes every repository's write-ahead log, then closes.

Oversized-line handling on the TCP read side never buffers more than
``max_frame`` bytes: the reader rejects the frame as soon as the limit
is crossed, then discards until the next newline and keeps serving.

:class:`RetryPolicy` is the client half of the story: exponential
backoff with full jitter over a bounded attempt/sleep budget, replaying
``conflict`` responses (with ``base_epoch`` refreshed from the error's
``current_epoch``), transient protocol errors (``overloaded``,
``deadline-exceeded``, ``draining``), and :class:`TransportError`\\ s —
reconnecting the socket for the latter.

Fault sites: ``net.read`` and ``net.write`` fire on the server side of
every socket receive/send; an injected fault kills that connection (the
server itself keeps serving).
"""

from __future__ import annotations

import json
import queue
import random
import select
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import faults as _faults
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .dispatch import ModelServer
from .protocol import (
    TRANSIENT_CODES,
    decode_frame,
    encode_frame,
    error_frame,
    is_event,
    request_frame,
)


class RemoteError(Exception):
    """A request came back as an error response."""

    def __init__(self, code: str, message: str, data: Dict[str, Any]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.data = data


class TransportError(Exception):
    """The transport itself failed (socket error, EOF, timeout).

    ``transient`` distinguishes failures worth a reconnect-and-retry
    (peer reset, timeout, connection refused during a restart) from
    ones that are not; :class:`RetryPolicy` only replays the former.
    """

    def __init__(self, message: str, *, transient: bool = True):
        super().__init__(message)
        self.transient = transient


# ---------------------------------------------------------------------------
# Client retry policy
# ---------------------------------------------------------------------------

class RetryPolicy:
    """Exponential backoff with full jitter, capped by attempts and a
    total sleep budget.

    The delay before retry *n* (0-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**n)]`` — full jitter, so a herd
    of conflicting editors decorrelates instead of replaying in
    lockstep.  ``run`` replays three failure classes:

    * transient :class:`TransportError` — invokes *on_reconnect* (if
      given) before retrying;
    * :class:`RemoteError` with a code in
      :data:`~repro.server.protocol.TRANSIENT_CODES`;
    * replayable ``conflict`` errors — invokes *on_conflict(error)* so
      the caller can refresh its ``base_epoch`` from
      ``error.data["current_epoch"]`` before the replay.

    Everything else propagates immediately.  *rng* and *sleep* are
    injectable for deterministic tests.
    """

    def __init__(self, attempts: int = 6, base_delay: float = 0.05,
                 max_delay: float = 2.0, budget: float = 30.0,
                 rng: Optional[random.Random] = None,
                 sleep: Optional[Callable[[float], None]] = None):
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.budget = budget
        self._rng = rng or random.Random()
        self._sleep = sleep or time.sleep
        self.retried = 0          # lifetime retries through this policy

    def backoff(self, attempt: int) -> float:
        """The jittered delay before retry *attempt* (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2 ** attempt))
        return self._rng.uniform(0.0, cap)

    def _classify(self, exc: Exception,
                  can_replay_conflict: bool) -> Optional[str]:
        if isinstance(exc, TransportError):
            return "network" if exc.transient else None
        if isinstance(exc, RemoteError):
            if exc.code == "conflict" and can_replay_conflict \
                    and exc.data.get("replayable"):
                return "conflict"
            if exc.code in TRANSIENT_CODES:
                return exc.code
        return None

    def run(self, attempt_fn: Callable[[], Any], *,
            on_conflict: Optional[Callable[[RemoteError], None]] = None,
            on_reconnect: Optional[Callable[[], None]] = None) -> Any:
        attempt = 0
        slept = 0.0
        while True:
            try:
                return attempt_fn()
            except (TransportError, RemoteError) as exc:
                reason = self._classify(exc, on_conflict is not None)
                if reason is None or attempt + 1 >= self.attempts:
                    raise
                delay = self.backoff(attempt)
                if slept + delay > self.budget:
                    raise
                attempt += 1
                slept += delay
                self.retried += 1
                _metrics.REGISTRY.counter(
                    "client.retries",
                    help="requests replayed by a RetryPolicy, by reason",
                    reason=reason).inc()
                self._sleep(delay)
                if reason == "conflict":
                    on_conflict(exc)          # refresh base_epoch
                elif reason == "network" and on_reconnect is not None:
                    on_reconnect()


# ---------------------------------------------------------------------------
# In-process transport
# ---------------------------------------------------------------------------

class InProcessClient:
    """A client whose frames go straight through the dispatcher.

    Every frame still passes through ``encode_frame``/``decode_frame``
    in both directions, so anything that works here works byte-for-byte
    over TCP.  Events received while waiting for a response accumulate
    in :attr:`events`.
    """

    def __init__(self, server: ModelServer):
        self._server = server
        self._inbox: List[Dict[str, Any]] = []
        self._ids = iter(range(1, 1 << 62))
        self.events: List[Dict[str, Any]] = []
        self._conn = server.connect(self._receive)

    def _receive(self, frame: Dict[str, Any]) -> None:
        # the wire round-trip: reject anything not JSON-serializable
        self._inbox.append(json.loads(encode_frame(frame)))

    def request(self, verb: str, **params: Any) -> Dict[str, Any]:
        """Send one request; return its result or raise RemoteError."""
        request_id = next(self._ids)
        self._conn.handle_line(
            encode_frame(request_frame(request_id, verb, params)))
        return self._collect(request_id)

    def send_raw(self, line: bytes) -> List[Dict[str, Any]]:
        """Push raw bytes at the dispatcher (protocol robustness tests);
        returns every frame the server answered with."""
        before = len(self._inbox)
        self._conn.handle_line(line)
        out, self._inbox[before:] = self._inbox[before:], []
        return out

    def drain_events(self) -> List[Dict[str, Any]]:
        """Move every event received so far (including ones pushed while
        this client was idle) out of the inbox and return them."""
        self.events.extend(f for f in self._inbox if is_event(f))
        self._inbox = [f for f in self._inbox if not is_event(f)]
        out, self.events = self.events, []
        return out

    def _collect(self, request_id: int) -> Dict[str, Any]:
        while self._inbox:
            frame = self._inbox.pop(0)
            if is_event(frame):
                self.events.append(frame)
                continue
            if frame.get("id") != request_id:
                continue             # response to a superseded request
            if frame.get("ok"):
                return frame["result"]
            error = frame.get("error") or {}
            raise RemoteError(error.get("code", "internal"),
                              error.get("message", "?"),
                              error.get("data") or {})
        raise RemoteError("internal", "server sent no response", {})

    def close(self) -> None:
        if not self._conn.closed:
            try:
                self.request("close")
            except RemoteError:
                pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

#: sentinel telling a connection worker to exit
_STOP = object()


class _ClientConn:
    """Book-keeping for one live TCP connection (server side)."""

    def __init__(self, sock: socket.socket, inbox: "queue.Queue"):
        self.sock = sock
        self.inbox = inbox
        self.busy = False         # worker is inside a handler right now


def _peek_request_id(line: bytes) -> Any:
    """Best-effort request id from an undispatched frame, for shedding."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except Exception:
        return None
    return frame.get("id") if isinstance(frame, dict) else None


class TcpServer:
    """Threaded TCP front end over one :class:`ModelServer`.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound endpoint.  One daemon thread accepts; each connection gets
    a reader thread (framing, backpressure, eviction) and a worker
    thread (dispatch), decoupled by a bounded inflight queue.  Writes
    go through the dispatch layer's per-connection send lock so watch
    events and responses interleave safely.
    """

    def __init__(self, server: ModelServer, host: str = "127.0.0.1",
                 port: int = 0, *, max_inflight: int = 64,
                 partial_frame_timeout: float = 30.0,
                 send_timeout: float = 30.0):
        self.server = server
        self.max_inflight = max_inflight
        self.partial_frame_timeout = partial_frame_timeout
        self.send_timeout = send_timeout
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._threads: List[threading.Thread] = []
        self._running = False
        self._draining = False
        self._accept_thread: Optional[threading.Thread] = None
        self._clients: Dict[int, _ClientConn] = {}
        self._clients_lock = threading.Lock()
        self._client_counter = 0

    def start(self) -> "TcpServer":
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (CLI ``serve``)."""
        self._running = True
        self._accept_loop()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break                     # listener closed mid-accept
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="repro-server-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, sock: socket.socket) -> None:
        sock.settimeout(self.send_timeout)   # bounds sendall on a slow
        sock_lock = threading.Lock()         # reader; recv is select-paced

        def send(frame: Dict[str, Any]) -> None:
            if _faults.ACTIVE is not None:
                try:
                    _faults.probe("net.write")
                except _faults.InjectedFault as exc:
                    raise OSError(f"injected fault: {exc}") from exc
            with sock_lock:
                sock.sendall(encode_frame(frame))

        conn = self.server.connect(send)
        inbox: "queue.Queue" = queue.Queue(maxsize=self.max_inflight)
        client = _ClientConn(sock, inbox)
        with self._clients_lock:
            self._client_counter += 1
            key = self._client_counter
            self._clients[key] = client
        worker = threading.Thread(
            target=self._dispatch_loop, args=(conn, client),
            name="repro-server-work", daemon=True)
        worker.start()
        self._threads.append(worker)

        def shed(line: bytes, code: str, message: str) -> None:
            try:
                send(error_frame(_peek_request_id(line), code, message))
            except OSError:
                pass

        try:
            for line, oversized in _read_lines(
                    sock, self.server.max_frame,
                    partial_timeout=self.partial_frame_timeout):
                if oversized:
                    try:
                        send(error_frame(
                            None, "oversized",
                            f"frame exceeds the "
                            f"{self.server.max_frame}-byte limit"))
                    except OSError:
                        break
                    continue
                if self._draining:
                    shed(line, "draining",
                         "server is draining for shutdown")
                    continue
                try:
                    inbox.put_nowait((line, time.monotonic()))
                except queue.Full:
                    _metrics.REGISTRY.counter(
                        "server.overloaded",
                        help="frames shed on a full inflight queue").inc()
                    shed(line, "overloaded",
                         f"connection already has {self.max_inflight} "
                         f"requests inflight")
                if conn.closed:
                    break
        finally:
            inbox.put(_STOP)
            conn.cleanup()
            with self._clients_lock:
                self._clients.pop(key, None)
            try:
                sock.close()
            except OSError:
                pass

    def _dispatch_loop(self, conn: Any, client: _ClientConn) -> None:
        """Worker half of one connection: FIFO dispatch off the inbox."""
        try:
            while True:
                item = client.inbox.get()
                if item is _STOP:
                    break
                line, arrival = item
                if self._draining:
                    try:
                        conn.send(error_frame(
                            _peek_request_id(line), "draining",
                            "server is draining for shutdown"))
                    except OSError:
                        break
                    continue
                client.busy = True
                try:
                    conn.handle_line(line, arrival=arrival)
                except OSError:
                    break             # peer went away mid-response
                finally:
                    client.busy = False
                if conn.closed:
                    break
        finally:
            # whatever ended this worker, the connection is done — close
            # the socket so the reader unblocks instead of queueing
            # frames nobody will ever answer
            try:
                client.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.sock.close()
            except OSError:
                pass

    # -- lifecycle ---------------------------------------------------------

    def _close_listener(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None \
                and self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=2.0)

    def drain(self, timeout: float = 5.0) -> Dict[str, Any]:
        """Gracefully wind the server down.

        Stops accepting, rejects queued-but-unstarted and newly arriving
        requests with ``draining``, waits up to *timeout* seconds for
        the request currently executing on each connection to finish
        (its own deadline still applies), flushes every write-ahead
        log, then closes everything.  Returns drain statistics.
        """
        with _trace.span("server.drain"):
            self._draining = True
            self._close_listener()
            deadline = time.monotonic() + timeout
            cancelled = 0
            while time.monotonic() < deadline:
                with self._clients_lock:
                    clients = list(self._clients.values())
                if not any(c.busy for c in clients):
                    break
                time.sleep(0.02)
            with self._clients_lock:
                clients = list(self._clients.values())
            still_busy = sum(1 for c in clients if c.busy)
            for c in clients:
                while True:               # count what never got to run
                    try:
                        item = c.inbox.get_nowait()
                    except queue.Empty:
                        break
                    if item is not _STOP:
                        cancelled += 1
            self.server.flush_wals()
            self.shutdown()
            _metrics.REGISTRY.counter(
                "server.drain.cancelled",
                help="requests abandoned during drain "
                     "(queued or still executing at timeout)"
            ).inc(cancelled + still_busy)
            return {"drained": True, "cancelled": cancelled,
                    "interrupted": still_busy}

    def shutdown(self) -> None:
        """Stop accepting, close the listener and every live client
        socket (a hung client cannot stall the join), drop every
        connection."""
        self._close_listener()
        with self._clients_lock:
            clients = list(self._clients.values())
        for client in clients:
            try:
                client.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.sock.close()
            except OSError:
                pass
        self.server.shutdown()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)


def _read_lines(sock: socket.socket, max_frame: int, *,
                partial_timeout: float = 30.0):
    """Yield ``(line, oversized)`` pairs from a stream socket.

    Never buffers more than ``max_frame`` bytes for a single line; an
    over-limit line yields ``(b"", True)`` once and is discarded up to
    its terminating newline.  A peer that keeps a *partial* frame open
    longer than *partial_timeout* seconds is evicted (slowloris); a
    peer that is simply idle between frames is not.
    """
    buffer = bytearray()
    discarding = False
    partial_since: Optional[float] = None
    while True:
        try:
            ready, _, _ = select.select([sock], [], [], 0.2)
        except (OSError, ValueError):
            return
        if partial_since is not None \
                and time.monotonic() - partial_since > partial_timeout:
            # a trickling peer stays "ready", so check on every pass
            _metrics.REGISTRY.counter(
                "server.evictions",
                help="connections dropped by the transport",
                reason="slowloris").inc()
            return
        if not ready:
            continue
        try:
            if _faults.ACTIVE is not None:
                _faults.probe("net.read")
            chunk = sock.recv(65536)
        except (OSError, _faults.InjectedFault):
            return
        if not chunk:
            return
        buffer.extend(chunk)
        while True:
            newline = buffer.find(b"\n")
            if newline == -1:
                if discarding:
                    del buffer[:]
                elif len(buffer) > max_frame:
                    discarding = True
                    del buffer[:]
                    yield b"", True
                if buffer or discarding:
                    if partial_since is None:
                        partial_since = time.monotonic()
                else:
                    partial_since = None
                break
            if discarding:
                del buffer[:newline + 1]
                discarding = False
                continue
            line = bytes(buffer[:newline])
            del buffer[:newline + 1]
            partial_since = None
            if len(line) > max_frame:
                yield b"", True
            else:
                yield line, False


class TcpClient:
    """Blocking line-protocol client for one server connection.

    With a :class:`RetryPolicy` attached, :meth:`request` transparently
    replays replayable ``conflict`` responses (refreshing
    ``base_epoch`` from the error), transient protocol errors, and
    transient :class:`TransportError`\\ s — reconnecting for the
    latter.  Without one, every failure propagates (socket failures as
    typed :class:`TransportError`, never bare ``OSError``).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry
        self._ids = iter(range(1, 1 << 62))
        self.events: List[Dict[str, Any]] = []
        self._connect()

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self._host}:{self._port}: {exc}",
                transient=True) from exc
        self._file = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass
        self._connect()

    def request(self, verb: str, **params: Any) -> Dict[str, Any]:
        if self.retry is None:
            return self._request_once(verb, params)

        def on_conflict(exc: RemoteError) -> None:
            current = exc.data.get("current_epoch")
            if current is not None:
                params["base_epoch"] = current

        return self.retry.run(
            lambda: self._request_once(verb, params),
            on_conflict=on_conflict if "base_epoch" in params else None,
            on_reconnect=self._reconnect)

    def _request_once(self, verb: str,
                      params: Dict[str, Any]) -> Dict[str, Any]:
        request_id = next(self._ids)
        try:
            self._sock.sendall(
                encode_frame(request_frame(request_id, verb, params)))
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        return self._read_response(request_id)

    def send_raw(self, data: bytes) -> Dict[str, Any]:
        """Send raw bytes and read one frame back (robustness tests)."""
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        return self._read_frame()

    def _read_frame(self) -> Dict[str, Any]:
        try:
            line = self._file.readline()
        except (socket.timeout, TimeoutError) as exc:
            raise TransportError(f"read timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"read failed: {exc}") from exc
        if not line:
            raise TransportError("server closed the connection")
        return decode_frame(line.rstrip(b"\n"),
                            max_frame=1 << 30)   # trust the server side

    def _read_response(self, request_id: int) -> Dict[str, Any]:
        while True:
            frame = self._read_frame()
            if is_event(frame):
                self.events.append(frame)
                continue
            if frame.get("id") != request_id:
                continue
            if frame.get("ok"):
                return frame["result"]
            error = frame.get("error") or {}
            raise RemoteError(error.get("code", "internal"),
                              error.get("message", "?"),
                              error.get("data") or {})

    def drain_events(self, minimum: int = 0,
                     timeout: float = 2.0) -> List[Dict[str, Any]]:
        """Collect pushed events until at least *minimum* arrived (or
        the socket stays quiet past *timeout*)."""
        previous = self._sock.gettimeout()
        self._sock.settimeout(0.05)
        deadline = time.monotonic() + timeout
        try:
            while len(self.events) < minimum \
                    and time.monotonic() < deadline:
                try:
                    frame = self._read_frame()
                except TransportError:
                    # quiet socket (timeout) — or a dead one, which
                    # keeps raising until the deadline expires
                    continue
                if is_event(frame):
                    self.events.append(frame)
        finally:
            self._sock.settimeout(previous)
        out, self.events = self.events, []
        return out

    def close(self) -> None:
        try:
            self.request("close")
        except Exception:
            pass
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def serve_tcp(server: ModelServer, host: str = "127.0.0.1",
              port: int = 0, **options: Any) -> TcpServer:
    """Bind and start a threaded TCP front end; returns it running."""
    return TcpServer(server, host, port, **options).start()
