"""Transports for the model server: TCP sockets and in-process.

The dispatch layer only needs two things from a transport: a way to
deliver inbound lines to :meth:`ServerConnection.handle_line`, and a
``send(frame)`` callable for outbound frames.  Two implementations:

* :class:`TcpServer` / :class:`TcpClient` — the real thing: a listener
  thread accepting connections, one reader thread per connection,
  newline-delimited JSON frames over a stream socket;
* :func:`ModelServer.connect` driven directly by
  :class:`InProcessClient` — the same frame round-trip (encode → decode
  both ways, so only JSON-serializable payloads pass) without a socket,
  used by tests and benchmarks to measure dispatch cost without kernel
  networking noise.

Oversized-line handling on the TCP read side never buffers more than
``max_frame`` bytes: the reader rejects the frame as soon as the limit
is crossed, then discards until the next newline and keeps serving.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from .dispatch import ModelServer
from .protocol import (
    decode_frame,
    encode_frame,
    error_frame,
    is_event,
    request_frame,
)


class RemoteError(Exception):
    """A request came back as an error response."""

    def __init__(self, code: str, message: str, data: Dict[str, Any]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.data = data


# ---------------------------------------------------------------------------
# In-process transport
# ---------------------------------------------------------------------------

class InProcessClient:
    """A client whose frames go straight through the dispatcher.

    Every frame still passes through ``encode_frame``/``decode_frame``
    in both directions, so anything that works here works byte-for-byte
    over TCP.  Events received while waiting for a response accumulate
    in :attr:`events`.
    """

    def __init__(self, server: ModelServer):
        self._server = server
        self._inbox: List[Dict[str, Any]] = []
        self._ids = iter(range(1, 1 << 62))
        self.events: List[Dict[str, Any]] = []
        self._conn = server.connect(self._receive)

    def _receive(self, frame: Dict[str, Any]) -> None:
        # the wire round-trip: reject anything not JSON-serializable
        self._inbox.append(json.loads(encode_frame(frame)))

    def request(self, verb: str, **params: Any) -> Dict[str, Any]:
        """Send one request; return its result or raise RemoteError."""
        request_id = next(self._ids)
        self._conn.handle_line(
            encode_frame(request_frame(request_id, verb, params)))
        return self._collect(request_id)

    def send_raw(self, line: bytes) -> List[Dict[str, Any]]:
        """Push raw bytes at the dispatcher (protocol robustness tests);
        returns every frame the server answered with."""
        before = len(self._inbox)
        self._conn.handle_line(line)
        out, self._inbox[before:] = self._inbox[before:], []
        return out

    def drain_events(self) -> List[Dict[str, Any]]:
        """Move every event received so far (including ones pushed while
        this client was idle) out of the inbox and return them."""
        self.events.extend(f for f in self._inbox if is_event(f))
        self._inbox = [f for f in self._inbox if not is_event(f)]
        out, self.events = self.events, []
        return out

    def _collect(self, request_id: int) -> Dict[str, Any]:
        while self._inbox:
            frame = self._inbox.pop(0)
            if is_event(frame):
                self.events.append(frame)
                continue
            if frame.get("id") != request_id:
                continue             # response to a superseded request
            if frame.get("ok"):
                return frame["result"]
            error = frame.get("error") or {}
            raise RemoteError(error.get("code", "internal"),
                              error.get("message", "?"),
                              error.get("data") or {})
        raise RemoteError("internal", "server sent no response", {})

    def close(self) -> None:
        if not self._conn.closed:
            try:
                self.request("close")
            except RemoteError:
                pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------

class TcpServer:
    """Threaded TCP front end over one :class:`ModelServer`.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound endpoint.  One daemon thread accepts, one daemon thread
    per connection reads; writes go through the dispatch layer's
    per-connection send lock so watch events and responses interleave
    safely.
    """

    def __init__(self, server: ModelServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.server = server
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._threads: List[threading.Thread] = []
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None

    def start(self) -> "TcpServer":
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (CLI ``serve``)."""
        self._running = True
        self._accept_loop()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break                     # listener closed mid-accept
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="repro-server-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, sock: socket.socket) -> None:
        sock_lock = threading.Lock()

        def send(frame: Dict[str, Any]) -> None:
            with sock_lock:
                sock.sendall(encode_frame(frame))

        conn = self.server.connect(send)
        try:
            for line, oversized in _read_lines(sock,
                                               self.server.max_frame):
                if oversized:
                    try:
                        send(error_frame(
                            None, "oversized",
                            f"frame exceeds the "
                            f"{self.server.max_frame}-byte limit"))
                    except OSError:
                        break
                    continue
                try:
                    conn.handle_line(line)
                except OSError:
                    break                 # peer went away mid-response
                if conn.closed:
                    break
        finally:
            conn.cleanup()
            try:
                sock.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        """Stop accepting, close the listener, drop every connection."""
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None \
                and self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=2.0)
        self.server.shutdown()
        for thread in self._threads:
            thread.join(timeout=2.0)


def _read_lines(sock: socket.socket, max_frame: int):
    """Yield ``(line, oversized)`` pairs from a stream socket.

    Never buffers more than ``max_frame`` bytes for a single line; an
    over-limit line yields ``(b"", True)`` once and is discarded up to
    its terminating newline.
    """
    buffer = bytearray()
    discarding = False
    while True:
        try:
            chunk = sock.recv(65536)
        except OSError:
            return
        if not chunk:
            return
        buffer.extend(chunk)
        while True:
            newline = buffer.find(b"\n")
            if newline == -1:
                if discarding:
                    del buffer[:]
                elif len(buffer) > max_frame:
                    discarding = True
                    del buffer[:]
                    yield b"", True
                break
            if discarding:
                del buffer[:newline + 1]
                discarding = False
                continue
            line = bytes(buffer[:newline])
            del buffer[:newline + 1]
            if len(line) > max_frame:
                yield b"", True
            else:
                yield line, False


class TcpClient:
    """Blocking line-protocol client for one server connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._ids = iter(range(1, 1 << 62))
        self.events: List[Dict[str, Any]] = []

    def request(self, verb: str, **params: Any) -> Dict[str, Any]:
        request_id = next(self._ids)
        self._sock.sendall(
            encode_frame(request_frame(request_id, verb, params)))
        return self._read_response(request_id)

    def send_raw(self, data: bytes) -> Dict[str, Any]:
        """Send raw bytes and read one frame back (robustness tests)."""
        self._sock.sendall(data)
        return self._read_frame()

    def _read_frame(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line.rstrip(b"\n"),
                            max_frame=1 << 30)   # trust the server side

    def _read_response(self, request_id: int) -> Dict[str, Any]:
        while True:
            frame = self._read_frame()
            if is_event(frame):
                self.events.append(frame)
                continue
            if frame.get("id") != request_id:
                continue
            if frame.get("ok"):
                return frame["result"]
            error = frame.get("error") or {}
            raise RemoteError(error.get("code", "internal"),
                              error.get("message", "?"),
                              error.get("data") or {})

    def drain_events(self, minimum: int = 0,
                     timeout: float = 2.0) -> List[Dict[str, Any]]:
        """Collect pushed events until at least *minimum* arrived (or
        the socket stays quiet past *timeout*)."""
        self._sock.settimeout(0.05)
        import time
        deadline = time.monotonic() + timeout
        try:
            while len(self.events) < minimum \
                    and time.monotonic() < deadline:
                try:
                    frame = self._read_frame()
                except (socket.timeout, TimeoutError):
                    continue
                if is_event(frame):
                    self.events.append(frame)
        finally:
            self._sock.settimeout(None)
        out, self.events = self.events, []
        return out

    def close(self) -> None:
        try:
            self.request("close")
        except Exception:
            pass
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def serve_tcp(server: ModelServer, host: str = "127.0.0.1",
              port: int = 0) -> TcpServer:
    """Bind and start a threaded TCP front end; returns it running."""
    return TcpServer(server, host, port).start()
