"""``repro.server`` — the multi-tenant model server.

The paper's workflow is many engineers concurrently editing and
re-checking one shared, living model repository.  This package promotes
:class:`repro.session.Session` from a library facade to that server: a
long-lived process hosting many named repositories, speaking a JSON-RPC
style line protocol whose verbs mirror the Session facade —

========== =====================================================
verb       Session equivalent
========== =====================================================
load       ``Session.load(path)`` hosted under a repo name
generate   ``Session.generate(...)`` hosted under a repo name
edit-txn   an atomic batch through ``repro.mof.txn.transaction``
check      ``Session.check`` riding a connection-scoped
           :class:`~repro.incremental.IncrementalEngine`
watch      ``Session.watch`` + server-push diagnostics events
stats      ``Session.stats()`` passthrough (+ server counters)
close      engine/watch teardown for one connection
========== =====================================================

Isolation is optimistic: every repository carries an *edit epoch*, a
stale ``edit-txn`` is rejected with a replayable ``conflict`` error,
and each connection keeps its own warm incremental engine per
repository.  See :mod:`repro.server.dispatch` for the concurrency
model and :mod:`repro.server.protocol` for the wire contract.
"""

from .dispatch import PROTOCOL_VERSION, ModelServer, RepoState, VERBS
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    ProtocolError,
    ServerError,
    decode_frame,
    encode_frame,
)
from .transport import (
    InProcessClient,
    RemoteError,
    TcpClient,
    TcpServer,
    serve_tcp,
)

__all__ = [
    "ERROR_CODES",
    "InProcessClient",
    "MAX_FRAME_BYTES",
    "ModelServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "RepoState",
    "ServerError",
    "TcpClient",
    "TcpServer",
    "VERBS",
    "decode_frame",
    "encode_frame",
    "serve_tcp",
]
