"""``repro.server`` — the multi-tenant model server.

The paper's workflow is many engineers concurrently editing and
re-checking one shared, living model repository.  This package promotes
:class:`repro.session.Session` from a library facade to that server: a
long-lived process hosting many named repositories, speaking a JSON-RPC
style line protocol whose verbs mirror the Session facade —

========== =====================================================
verb       Session equivalent
========== =====================================================
load       ``Session.load(path)`` hosted under a repo name
generate   ``Session.generate(...)`` hosted under a repo name
edit-txn   an atomic batch through ``repro.mof.txn.transaction``
check      ``Session.check`` riding a connection-scoped
           :class:`~repro.incremental.IncrementalEngine`
watch      ``Session.watch`` + server-push diagnostics events
stats      ``Session.stats()`` passthrough (+ server counters)
close      engine/watch teardown for one connection
========== =====================================================

Isolation is optimistic: every repository carries an *edit epoch*, a
stale ``edit-txn`` is rejected with a replayable ``conflict`` error,
and each connection keeps its own warm incremental engine per
repository.  See :mod:`repro.server.dispatch` for the concurrency
model and :mod:`repro.server.protocol` for the wire contract.

Durability and liveness (:mod:`repro.server.durability`,
:mod:`repro.server.transport`): a server started with ``wal_dir=``
write-ahead logs every committed ``edit-txn`` (fsync before ack) and
replays pending logs on start, so a ``kill -9`` never loses an
acknowledged edit; per-verb deadlines, bounded inflight queues, and
slowloris eviction bound every request, and :class:`RetryPolicy` gives
clients jittered, budget-capped replay of ``conflict`` and transient
failures.
"""

from .dispatch import (
    DEFAULT_DEADLINES,
    PROTOCOL_VERSION,
    VERBS,
    ModelServer,
    RepoState,
    apply_edit_ops,
)
from .durability import (
    WalCorruptError,
    WalError,
    WriteAheadLog,
    pending_logs,
    recover_repo,
)
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    TRANSIENT_CODES,
    ProtocolError,
    ServerError,
    decode_frame,
    encode_frame,
)
from .transport import (
    InProcessClient,
    RemoteError,
    RetryPolicy,
    TcpClient,
    TcpServer,
    TransportError,
    serve_tcp,
)

__all__ = [
    "DEFAULT_DEADLINES",
    "ERROR_CODES",
    "InProcessClient",
    "MAX_FRAME_BYTES",
    "ModelServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "RepoState",
    "RetryPolicy",
    "ServerError",
    "TRANSIENT_CODES",
    "TcpClient",
    "TcpServer",
    "TransportError",
    "VERBS",
    "WalCorruptError",
    "WalError",
    "WriteAheadLog",
    "apply_edit_ops",
    "decode_frame",
    "encode_frame",
    "pending_logs",
    "recover_repo",
    "serve_tcp",
]
