"""The model-server wire protocol: JSON frames, one per line.

Every frame is a single JSON object terminated by ``\\n`` (UTF-8, no
embedded newlines — ``json.dumps`` never emits raw ones).  Three frame
shapes flow over one connection:

* **request** (client → server)::

      {"id": 7, "verb": "check", "params": {"repo": "main"}}

* **response** (server → client, exactly one per request)::

      {"id": 7, "ok": true, "result": {...}}
      {"id": 7, "ok": false,
       "error": {"code": "conflict", "message": "...", "data": {...}}}

* **event** (server → client, unsolicited; no ``id``)::

      {"event": "diagnostics", "repo": "main", "data": {...}}

Requests on one connection are handled strictly in order (the protocol
has no pipelining guarantee beyond FIFO).  Backpressure is explicit:
each TCP connection owns a bounded inflight queue, and a client that
pipelines past it gets an immediate ``overloaded`` error for the
excess frames; every verb also runs against a per-verb wall-clock
budget and is shed (or aborted and rolled back) with
``deadline-exceeded`` when it blows it.  A frame longer than the
server's ``max_frame`` limit is rejected with an ``oversized`` error
without being parsed.

Error codes are stable strings (:data:`ERROR_CODES`); ``conflict``
responses additionally carry ``data.current_epoch`` and echo the
submitted ops so the client can replay the transaction verbatim against
the new epoch.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Default frame ceiling: 8 MiB — a 10^5-element check document fits,
#: a runaway client does not.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: code -> meaning; the wire contract's error vocabulary.
ERROR_CODES: Dict[str, str] = {
    "parse-error": "frame was not a valid JSON object",
    "oversized": "frame exceeded the server's max_frame limit",
    "bad-request": "frame lacked a usable id/verb shape",
    "unknown-verb": "verb is not part of the protocol",
    "bad-params": "params missing or of the wrong type",
    "no-such-repo": "repository name is not loaded on this server",
    "conflict": "edit-txn base_epoch is stale; replay against "
                "data.current_epoch",
    "txn-failed": "edit-txn raised mid-batch; the journal rolled the "
                  "repository back",
    "deadline-exceeded": "request blew its verb's wall-clock budget; "
                         "partial work was rolled back",
    "overloaded": "the connection's inflight queue is full; back off "
                  "and retry",
    "draining": "server is draining for shutdown; no new requests",
    "closed": "connection is closed",
    "internal": "unexpected server-side failure",
}

#: Error codes a client may safely retry (with backoff).  ``conflict``
#: is also replayable but needs its ``base_epoch`` refreshed from
#: ``data.current_epoch`` first — :class:`repro.server.RetryPolicy`
#: does both.
TRANSIENT_CODES = ("overloaded", "deadline-exceeded", "draining")


class ProtocolError(Exception):
    """A frame violated the wire contract (framing/shape level)."""

    def __init__(self, code: str, message: str,
                 data: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.code = code
        self.data = data or {}


class ServerError(Exception):
    """A verb failed; carries the structured error for the response."""

    def __init__(self, code: str, message: str,
                 data: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        assert code in ERROR_CODES, code
        self.code = code
        self.data = data or {}


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return (json.dumps(payload, separators=(",", ":"),
                       sort_keys=False) + "\n").encode("utf-8")


def decode_frame(line: bytes, *,
                 max_frame: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`ProtocolError` with the matching stable code on
    oversized input, undecodable JSON, or a non-object payload.
    """
    if len(line) > max_frame:
        raise ProtocolError(
            "oversized",
            f"frame of {len(line)} bytes exceeds the "
            f"{max_frame}-byte limit",
            {"bytes": len(line), "max_frame": max_frame})
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("parse-error",
                            f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "parse-error",
            f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


def request_frame(request_id: int, verb: str,
                  params: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    return {"id": request_id, "verb": verb, "params": params or {}}


def response_frame(request_id: Any,
                   result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_frame(request_id: Any, code: str, message: str,
                data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": code, "message": message}
    if data:
        error["data"] = data
    return {"id": request_id, "ok": False, "error": error}


def event_frame(event: str, **fields: Any) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"event": event}
    frame.update(fields)
    return frame


def is_event(frame: Dict[str, Any]) -> bool:
    return "event" in frame and "id" not in frame
