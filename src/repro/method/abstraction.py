"""Abstraction levels and model stacks.

"To correctly apply UML/MDA one must have a much greater understanding and
adherence to the various levels of abstraction" — this module makes levels
first-class: a :class:`ModelStack` orders named levels, holds the model at
each level, and only relates adjacent levels through recorded
transformations.  It also quantifies abstraction: the *platform content
ratio* measures how much platform vocabulary a model contains, which is
the observable difference between a PIM and a PSM (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..mof.kernel import Element
from ..mof.query import all_contents
from ..platforms.base import PlatformModel
from ..transform.engine import Transformation, TransformationResult


@dataclass(frozen=True)
class AbstractionLevel:
    """One rung of the abstraction ladder (smaller index = more abstract)."""

    name: str
    index: int
    description: str = ""

    def __str__(self) -> str:
        return f"L{self.index}:{self.name}"


@dataclass
class LevelSlot:
    level: AbstractionLevel
    roots: List[Element] = field(default_factory=list)
    produced_by: Optional[TransformationResult] = None


class ModelStack:
    """Models arranged by abstraction level, related by transformations.

    The paper: "given any model one can not state whether it is platform
    independent or platform specific without a second model related to it
    by one or more transformations" — so PIM/PSM here are *relative*
    queries on the stack, not intrinsic flags.
    """

    def __init__(self, name: str = "stack"):
        self.name = name
        self.slots: List[LevelSlot] = []

    def add_level(self, name: str, description: str = "") -> AbstractionLevel:
        level = AbstractionLevel(name, len(self.slots), description)
        self.slots.append(LevelSlot(level))
        return level

    def slot(self, level: AbstractionLevel) -> LevelSlot:
        return self.slots[level.index]

    def place(self, level: AbstractionLevel, roots) -> None:
        if isinstance(roots, Element):
            roots = [roots]
        self.slots[level.index].roots = list(roots)

    def refine(self, source_level: AbstractionLevel,
               transformation: Transformation, *,
               platform: Optional[PlatformModel] = None
               ) -> TransformationResult:
        """Transform the model at *source_level* into the next level down."""
        if source_level.index + 1 >= len(self.slots):
            raise IndexError(
                f"no level below {source_level} in stack '{self.name}'")
        source_slot = self.slots[source_level.index]
        if not source_slot.roots:
            raise ValueError(f"level {source_level} holds no model")
        result = transformation.run(source_slot.roots, platform=platform)
        target_slot = self.slots[source_level.index + 1]
        target_slot.roots = list(result.target_roots)
        target_slot.produced_by = result
        return result

    # -- relative PIM/PSM queries ----------------------------------------

    def is_platform_independent_wrt(self, level: AbstractionLevel,
                                    other: AbstractionLevel) -> bool:
        """A model is a PIM *relative to* a lower model it maps onto."""
        return level.index < other.index

    def levels(self) -> List[AbstractionLevel]:
        return [slot.level for slot in self.slots]

    def distance(self, a: AbstractionLevel, b: AbstractionLevel) -> int:
        return abs(a.index - b.index)


# ---------------------------------------------------------------------------
# Quantifying abstraction
# ---------------------------------------------------------------------------

def platform_vocabulary(platform: PlatformModel) -> Set[str]:
    """Every name the platform model introduces (types, engines, comms,
    services) — the words a PIM must not contain."""
    vocabulary: Set[str] = set()
    vocabulary.update(t.name for t in platform.types)
    for engine in platform.engines:
        vocabulary.add(engine.name)
        vocabulary.add(engine.kind)
    for comm in platform.comms:
        vocabulary.add(comm.name)
        vocabulary.add(comm.kind)
    vocabulary.update(s.name for s in platform.services)
    vocabulary.discard("")
    return vocabulary


def _element_mentions(element: Element, vocabulary: Set[str]) -> bool:
    name_feature = element.meta.find_feature("name")
    if name_feature is not None and not name_feature.many:
        name = element.eget("name") or ""
        for word in vocabulary:
            if word and (name == word or name.endswith(f"_{word}")):
                return True
    type_feature = element.meta.find_feature("type")
    if type_feature is not None and not type_feature.many:
        typed = element.eget("type")
        if typed is not None:
            type_name = getattr(typed, "name", "")
            if type_name in vocabulary:
                return True
    return False


def platform_content_ratio(root: Element,
                           platform: PlatformModel) -> float:
    """Fraction of model elements that mention platform vocabulary.

    ≈0 for a clean PIM; substantially positive for the PSM produced by a
    semantic transformation onto *platform*; exactly what a syntactic
    (identity) transformation leaves unchanged.
    """
    vocabulary = platform_vocabulary(platform)
    total = 0
    mentions = 0
    for element in [root] + list(all_contents(root)):
        total += 1
        if _element_mentions(element, vocabulary):
            mentions += 1
    return mentions / total if total else 0.0


def abstraction_delta(source_root: Element, target_root: Element,
                      platform: PlatformModel) -> float:
    """How much platform content the transformation added — the measured
    counterpart of a transformation's declared ``abstraction_delta``."""
    return (platform_content_ratio(target_root, platform)
            - platform_content_ratio(source_root, platform))
