"""The gated development process.

A :class:`DevelopmentProcess` is the methodology scaffold the paper says
is missing: an ordered sequence of phases, each pairing an abstraction
level with (a) the test suite that must pass there and (b) the
transformation that takes the model down to the next level.  With gates
enforced, a defective model cannot propagate; with gates off (the
documentation-oriented anti-process) defects flow straight into the PSM
and the code — the difference experiment E8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

from ..mof.kernel import Element
from ..platforms.base import PlatformModel
from ..transform.chain import GateVerdict
from ..transform.engine import Transformation, TransformationResult
from ..transform.errors import GateClosedError
from .abstraction import AbstractionLevel, ModelStack
from .testing import ModelTestSuite, SuiteResult


@dataclass
class Phase:
    """One rung of the process ladder.

    ``lint`` adds a static-analysis gate: the phase refuses to proceed
    when the lint engine reports errors on the phase's input models
    (in addition to whatever the test suite demands).
    """

    name: str
    suite: Optional[ModelTestSuite] = None
    transformation: Optional[Transformation] = None
    platform: Optional[PlatformModel] = None
    lint: bool = False


@dataclass
class PhaseRecord:
    phase_name: str
    suite_result: Optional[SuiteResult]
    transformed: bool
    result: Optional[TransformationResult] = None
    lint_report: Optional[Any] = None     # analysis.LintReport when linted

    @property
    def gate_passed(self) -> bool:
        suite_ok = self.suite_result is None or self.suite_result.passed
        lint_ok = self.lint_report is None or self.lint_report.ok
        return suite_ok and lint_ok


@dataclass
class ProcessRun:
    records: List[PhaseRecord] = field(default_factory=list)
    final_roots: List[Element] = field(default_factory=list)
    stopped_at: Optional[str] = None      # phase that refused to proceed

    @property
    def completed(self) -> bool:
        return self.stopped_at is None

    def record(self, phase_name: str) -> PhaseRecord:
        for record in self.records:
            if record.phase_name == phase_name:
                return record
        raise KeyError(phase_name)


class DevelopmentProcess:
    """Phases + gates + transformations, executed over a model stack."""

    def __init__(self, name: str):
        self.name = name
        self.phases: List[Phase] = []

    def add_phase(self, name: str, *,
                  suite: Optional[ModelTestSuite] = None,
                  transformation: Optional[Transformation] = None,
                  platform: Optional[PlatformModel] = None,
                  lint: bool = False) -> Phase:
        phase = Phase(name, suite, transformation, platform, lint)
        self.phases.append(phase)
        return phase

    def run(self, initial: Union[Element, List[Element]], *,
            enforce_gates: bool = True) -> ProcessRun:
        """Execute the process.

        With ``enforce_gates`` (the paper's discipline) a failing suite
        stops the run; without it the run continues regardless — the
        documentation-oriented anti-pattern, kept for comparison
        experiments.
        """
        roots = [initial] if isinstance(initial, Element) else list(initial)
        run = ProcessRun()
        for phase in self.phases:
            suite_result = phase.suite.run(roots) if phase.suite else None
            lint_report = None
            if phase.lint:
                from ..analysis import ModelLinter
                lint_report = ModelLinter().lint(*roots)
            gate_ok = ((suite_result is None or suite_result.passed)
                       and (lint_report is None or lint_report.ok))
            if not gate_ok and enforce_gates:
                run.records.append(PhaseRecord(
                    phase.name, suite_result, transformed=False,
                    lint_report=lint_report))
                run.stopped_at = phase.name
                run.final_roots = roots
                return run
            result: Optional[TransformationResult] = None
            if phase.transformation is not None:
                result = phase.transformation.run(
                    roots, platform=phase.platform)
                roots = list(result.target_roots)
            run.records.append(PhaseRecord(
                phase.name, suite_result,
                transformed=result is not None, result=result,
                lint_report=lint_report))
        run.final_roots = roots
        return run

    def as_stack(self) -> ModelStack:
        """A model stack with one level per phase (for inspection)."""
        stack = ModelStack(self.name)
        for phase in self.phases:
            stack.add_level(phase.name)
        return stack

    def __repr__(self) -> str:
        names = " -> ".join(phase.name for phase in self.phases)
        return f"<DevelopmentProcess {self.name}: {names}>"
