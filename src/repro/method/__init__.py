"""``repro.method`` — methodology support.

* :mod:`abstraction` — abstraction levels, model stacks, platform-content
  measurement;
* :mod:`concerns` — domain/platform pollution detection;
* :mod:`testing` — per-level model test suites;
* :mod:`process` — the gated development process.
"""

from .abstraction import (
    AbstractionLevel,
    LevelSlot,
    ModelStack,
    abstraction_delta,
    platform_content_ratio,
    platform_vocabulary,
)
from .concerns import (
    GENERIC_PLATFORM_SUFFIXES,
    GENERIC_PLATFORM_TYPES,
    PollutionFinding,
    PollutionReport,
    check_domain_purity,
    check_psm_grounding,
)
from .process import (
    DevelopmentProcess,
    Phase,
    PhaseRecord,
    ProcessRun,
)
from .testing import (
    ModelTest,
    ModelTestResult,
    ModelTestSuite,
    SuiteResult,
)

__all__ = [
    "AbstractionLevel", "DevelopmentProcess", "GENERIC_PLATFORM_SUFFIXES",
    "GENERIC_PLATFORM_TYPES", "LevelSlot", "ModelStack", "ModelTest",
    "ModelTestResult", "ModelTestSuite", "Phase", "PhaseRecord",
    "PollutionFinding", "PollutionReport", "ProcessRun",
    "SuiteResult", "abstraction_delta", "check_domain_purity",
    "check_psm_grounding", "platform_content_ratio",
    "platform_vocabulary",
]
