"""Separation-of-concerns checking: domain/platform pollution detection.

"At minimum one must have a separation between the domain of the system
(what the system is) and the potential platforms ... avoiding polluting
either model with information from the other."  The checker scans a
domain model (PIM) for platform vocabulary — native type names, engine and
mechanism suffixes, service names — and reports each leak, so E7 can
measure precision/recall against seeded pollution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from ..mof.kernel import Element
from ..mof.query import all_contents
from ..mof.validate import Severity, ValidationReport
from ..platforms.base import PlatformModel
from ..uml import Clazz, Property
from .abstraction import platform_vocabulary

# Suffixes that smell of execution platforms even without a platform model
# in hand (the checker accepts extra vocabulary for project idioms).
GENERIC_PLATFORM_SUFFIXES = (
    "_thread", "_task", "_process", "_isr", "_queue", "_mutex",
    "_semaphore", "_socket", "_driver", "_dma", "_irq",
)

GENERIC_PLATFORM_TYPES = {
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "char*", "void*", "size_t", "q15_t", "bit",
}


@dataclass
class PollutionFinding:
    """One platform leak in a domain model."""

    element: Element
    reason: str
    word: str

    def __str__(self) -> str:
        return f"{self.element!r}: {self.reason} ({self.word!r})"


@dataclass
class PollutionReport:
    findings: List[PollutionFinding] = field(default_factory=list)
    elements_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def pollution_ratio(self) -> float:
        if not self.elements_scanned:
            return 0.0
        polluted = {id(f.element) for f in self.findings}
        return len(polluted) / self.elements_scanned

    def polluted_elements(self) -> List[Element]:
        seen = {}
        for finding in self.findings:
            seen.setdefault(id(finding.element), finding.element)
        return list(seen.values())

    def as_validation_report(self) -> ValidationReport:
        report = ValidationReport()
        for finding in self.findings:
            report.add(Severity.ERROR, finding.element,
                       f"platform pollution: {finding.reason} "
                       f"({finding.word!r})", code="concern-pollution")
        return report


def check_domain_purity(root: Element,
                        platforms: Sequence[PlatformModel] = (), *,
                        extra_vocabulary: Iterable[str] = (),
                        use_generic_heuristics: bool = True
                        ) -> PollutionReport:
    """Scan a supposed PIM for platform vocabulary."""
    vocabulary: Set[str] = set(extra_vocabulary)
    for platform in platforms:
        vocabulary |= platform_vocabulary(platform)
    type_words = set(vocabulary)
    if use_generic_heuristics:
        type_words |= GENERIC_PLATFORM_TYPES

    report = PollutionReport()
    for element in [root] + list(all_contents(root)):
        report.elements_scanned += 1
        name_feature = element.meta.find_feature("name")
        name = ""
        if name_feature is not None and not name_feature.many:
            name = element.eget("name") or ""
        if name:
            for word in vocabulary:
                if name == word or name.endswith(f"_{word}"):
                    report.findings.append(PollutionFinding(
                        element, "platform word in name", word))
                    break
            else:
                if use_generic_heuristics:
                    for suffix in GENERIC_PLATFORM_SUFFIXES:
                        if name.lower().endswith(suffix):
                            report.findings.append(PollutionFinding(
                                element, "platform-style name suffix",
                                suffix))
                            break
        type_feature = element.meta.find_feature("type")
        if type_feature is not None and not type_feature.many:
            typed = element.eget("type")
            type_name = getattr(typed, "name", "") if typed is not None \
                else ""
            if type_name in type_words:
                report.findings.append(PollutionFinding(
                    element, "platform-native type", type_name))
    return report


def check_psm_grounding(psm_root: Element,
                        platform: PlatformModel, *,
                        minimum_ratio: float = 0.05) -> ValidationReport:
    """The dual check: a PSM that contains (almost) no platform vocabulary
    was produced by a syntactic, not semantic, transformation."""
    from .abstraction import platform_content_ratio
    report = ValidationReport()
    ratio = platform_content_ratio(psm_root, platform)
    if ratio < minimum_ratio:
        report.add(Severity.WARNING, psm_root,
                   f"PSM platform-content ratio {ratio:.3f} below "
                   f"{minimum_ratio}; mapping added no platform knowledge",
                   code="concern-ungrounded-psm")
    return report
