"""Per-level model test suites.

"At each abstraction level a well defined set of tests must be performed
upon this system and maintained as the 'system models' are developed."
A :class:`ModelTestSuite` bundles named tests over a model's roots —
well-formedness, OCL constraint sets, metric thresholds, scenario runs —
and adapts to a transformation-chain gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Union

from ..mof.kernel import Element
from ..mof.validate import ValidationReport, validate_tree
from ..ocl.invariants import ConstraintSet
from ..transform.chain import GateVerdict
from ..uml import Package
from ..uml.wellformed import run_wellformed_rules

TestFn = Callable[[List[Element]], Union[bool, ValidationReport]]


@dataclass
class ModelTestResult:
    name: str
    passed: bool
    messages: List[str] = field(default_factory=list)


@dataclass
class SuiteResult:
    suite_name: str
    results: List[ModelTestResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def failures(self) -> List[ModelTestResult]:
        return [result for result in self.results if not result.passed]

    def summary(self) -> str:
        total = len(self.results)
        failed = len(self.failures())
        status = "PASS" if self.passed else "FAIL"
        return f"suite '{self.suite_name}': {status} ({total - failed}/{total})"


class ModelTest:
    """One named test over a model's roots."""

    def __init__(self, name: str, fn: TestFn, description: str = ""):
        self.name = name
        self.fn = fn
        self.description = description

    def run(self, roots: List[Element]) -> ModelTestResult:
        try:
            outcome = self.fn(roots)
        except Exception as exc:        # a broken test must not pass
            return ModelTestResult(self.name, False,
                                   [f"test raised: {exc}"])
        if isinstance(outcome, ValidationReport):
            return ModelTestResult(self.name, outcome.ok,
                                   [str(d) for d in outcome.errors])
        return ModelTestResult(self.name, bool(outcome))


class ModelTestSuite:
    """The well-defined set of tests for one abstraction level."""

    def __init__(self, name: str):
        self.name = name
        self.tests: List[ModelTest] = []

    def add(self, name: str, fn: TestFn,
            description: str = "") -> "ModelTestSuite":
        self.tests.append(ModelTest(name, fn, description))
        return self

    # -- canned test kinds -------------------------------------------------

    def add_structural(self) -> "ModelTestSuite":
        """Kernel-level structure: multiplicities, opposites, invariants."""
        def run(roots: List[Element]) -> ValidationReport:
            report = ValidationReport()
            for root in roots:
                report.extend(validate_tree(root))
            return report
        return self.add("structural-validity", run,
                        "multiplicities, opposites, containment, "
                        "registered invariants")

    def add_wellformedness(self) -> "ModelTestSuite":
        """UML well-formedness rules on every Package root."""
        def run(roots: List[Element]) -> ValidationReport:
            report = ValidationReport()
            for root in roots:
                if isinstance(root, Package):
                    report.extend(run_wellformed_rules(root))
            return report
        return self.add("uml-wellformedness", run)

    def add_lint(self, *, disable: Sequence[str] = ()
                 ) -> "ModelTestSuite":
        """The static-analysis lint gate: OCL type checking, dead code,
        transition conflicts, fork/join imbalance."""
        def run(roots: List[Element]) -> ValidationReport:
            from ..analysis import LintConfig, ModelLinter
            linter = ModelLinter(config=LintConfig(
                disabled=set(disable)))
            return linter.lint(*roots).as_validation_report()
        return self.add("static-analysis-lint", run,
                        "model lint engine (repro.analysis)")

    def add_constraints(self, constraints: ConstraintSet
                        ) -> "ModelTestSuite":
        """An OCL constraint set (one per level, per the paper)."""
        def run(roots: List[Element]) -> ValidationReport:
            report = ValidationReport()
            for root in roots:
                report.extend(constraints.evaluate(root))
            return report
        return self.add(f"constraints:{constraints.name}", run)

    def add_metric_threshold(self, metric_name: str,
                             extract: Callable[[Element], float],
                             maximum: float) -> "ModelTestSuite":
        """Fail when a model metric exceeds *maximum*."""
        def run(roots: List[Element]) -> bool:
            return all(extract(root) <= maximum for root in roots)
        return self.add(f"metric:{metric_name}<= {maximum}", run)

    # -- execution ---------------------------------------------------------

    def run(self, roots: Union[Element, List[Element]]) -> SuiteResult:
        if isinstance(roots, Element):
            roots = [roots]
        result = SuiteResult(self.name)
        for test in self.tests:
            result.results.append(test.run(list(roots)))
        return result

    def as_gate(self) -> Callable[[List[Element]], GateVerdict]:
        """Adapt to a transformation-chain gate."""
        def gate(roots: List[Element]) -> GateVerdict:
            outcome = self.run(roots)
            messages = [f"{r.name}: {'; '.join(r.messages) or 'failed'}"
                        for r in outcome.failures()]
            return GateVerdict(outcome.passed, messages)
        return gate

    def __len__(self) -> int:
        return len(self.tests)
