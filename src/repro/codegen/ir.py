"""The code-model intermediate representation (IR).

The IR is the *last model* in the MDA chain: a language-neutral description
of compilation units, type declarations, functions and statements.  The
PSM→IR lowering (:mod:`repro.codegen.lower`) is **semantic** — it consumes
platform/PSM structure and changes abstraction level; the printers
(:mod:`repro.codegen.c` and friends) are **syntactic** — they re-express
the same IR in a concrete language without adding information.  This makes
the paper's semantic/syntactic distinction structural rather than
rhetorical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- statements -------------------------------------------------------------

@dataclass
class Stmt:
    """Base class of IR statements."""


@dataclass
class CommentStmt(Stmt):
    text: str = ""


@dataclass
class RawStmt(Stmt):
    """An opaque statement in the target language (escape hatch)."""
    text: str = ""


@dataclass
class VarDeclStmt(Stmt):
    name: str = ""
    type_name: str = "int"
    init: Optional[str] = None


@dataclass
class AssignStmt(Stmt):
    """``lhs := rhs`` — both sides in the abstract action language."""
    lhs: str = ""
    rhs: str = ""


@dataclass
class SendStmt(Stmt):
    """Asynchronous event emission ``send target.event(args)``."""
    target: str = ""
    event: str = ""
    arguments: Tuple[str, ...] = ()


@dataclass
class CallStmt(Stmt):
    """Synchronous call ``receiver.operation(args)``."""
    receiver: str = ""
    operation: str = ""
    arguments: Tuple[str, ...] = ()


@dataclass
class ReturnStmt(Stmt):
    expr: Optional[str] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class IfStmt(Stmt):
    """Condition is an OCL-like boolean expression, translated by each
    printer."""
    condition: str = "true"
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class SwitchCase:
    label: str = ""
    body: List[Stmt] = field(default_factory=list)


@dataclass
class SwitchStmt(Stmt):
    selector: str = ""
    cases: List[SwitchCase] = field(default_factory=list)
    default: List[Stmt] = field(default_factory=list)


# -- declarations -----------------------------------------------------------

@dataclass
class Field_:
    """A struct/class member."""
    name: str = ""
    type_name: str = "int"
    default: Optional[str] = None
    doc: str = ""


@dataclass
class StructDecl:
    name: str = ""
    fields: List[Field_] = field(default_factory=list)
    doc: str = ""
    is_active: bool = False


@dataclass
class EnumDecl:
    name: str = ""
    literals: List[str] = field(default_factory=list)
    doc: str = ""


@dataclass
class Param:
    name: str = ""
    type_name: str = "int"


@dataclass
class FunctionDecl:
    name: str = ""
    return_type: str = "void"
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    doc: str = ""
    owner_struct: Optional[str] = None   # method of which struct, if any


@dataclass
class CompilationUnit:
    """One generated source file."""
    name: str = ""
    includes: List[str] = field(default_factory=list)
    enums: List[EnumDecl] = field(default_factory=list)
    structs: List[StructDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
    doc: str = ""

    def struct(self, name: str) -> Optional[StructDecl]:
        for struct in self.structs:
            if struct.name == name:
                return struct
        return None

    def function(self, name: str) -> Optional[FunctionDecl]:
        for function in self.functions:
            if function.name == name:
                return function
        return None


@dataclass
class CodeModel:
    """The root of the IR: the whole generated program."""
    name: str = ""
    units: List[CompilationUnit] = field(default_factory=list)

    def unit(self, name: str) -> Optional[CompilationUnit]:
        for unit in self.units:
            if unit.name == name:
                return unit
        return None

    def all_functions(self) -> List[FunctionDecl]:
        out: List[FunctionDecl] = []
        for unit in self.units:
            out.extend(unit.functions)
        return out

    def all_structs(self) -> List[StructDecl]:
        out: List[StructDecl] = []
        for unit in self.units:
            out.extend(unit.structs)
        return out

    def stats(self) -> dict:
        return {
            "units": len(self.units),
            "structs": len(self.all_structs()),
            "functions": len(self.all_functions()),
            "enums": sum(len(u.enums) for u in self.units),
        }
