"""``repro.codegen`` — the model compiler's back half.

* :mod:`repro.codegen.ir` — the language-neutral code model (the last PSM);
* :func:`lower_model` — PSM → IR (semantic);
* :func:`generate_c` / :func:`generate_java` / :func:`generate_systemc` —
  IR → text (syntactic);
* :mod:`repro.codegen.actions` — the action mini-language parser shared
  with the simulators.
"""

from .actions import parse_actions, parse_statement, to_c_expr, to_java_expr
from .activity_lower import ActivityLoweringError, lower_activity
from .c import CPrinter, generate_c
from .ir import (
    AssignStmt,
    BreakStmt,
    CallStmt,
    CodeModel,
    CommentStmt,
    CompilationUnit,
    EnumDecl,
    Field_,
    FunctionDecl,
    IfStmt,
    Param,
    RawStmt,
    ReturnStmt,
    SendStmt,
    Stmt,
    StructDecl,
    SwitchCase,
    SwitchStmt,
    VarDeclStmt,
)
from .javagen import JavaPrinter, generate_java
from .lower import lower_class, lower_model, lower_state_machine
from .printer import CodeWriter
from .systemc import SystemCPrinter, generate_systemc

__all__ = [
    "ActivityLoweringError", "AssignStmt", "lower_activity", "BreakStmt", "CPrinter", "CallStmt", "CodeModel",
    "CodeWriter", "CommentStmt", "CompilationUnit", "EnumDecl", "Field_",
    "FunctionDecl", "IfStmt", "JavaPrinter", "Param", "RawStmt",
    "ReturnStmt", "SendStmt", "Stmt", "StructDecl", "SwitchCase",
    "SwitchStmt", "SystemCPrinter", "VarDeclStmt", "generate_c",
    "generate_java", "generate_systemc", "lower_class", "lower_model",
    "lower_state_machine", "parse_actions", "parse_statement", "to_c_expr",
    "to_java_expr",
]
