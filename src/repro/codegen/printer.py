"""Indentation-aware text emitter shared by all code printers."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..obs import metrics as _metrics
from ..obs import trace as _trace


def _print_observed(lang: str,
                    print_model: Callable[[], Dict[str, str]]
                    ) -> Dict[str, str]:
    """Run a ``generate_*`` body under a ``codegen.print`` span, counting
    emitted files and source lines per language.  No-op wrapper while the
    observability layer is off."""
    if not _trace.ON:
        return print_model()
    with _trace.span("codegen.print", lang=lang) as sp:
        files = print_model()
    lines = sum(text.count("\n") for text in files.values())
    sp.tag(files=len(files), lines=lines)
    _metrics.REGISTRY.counter(
        "codegen.print.files", help="generated files", lang=lang
    ).inc(len(files))
    _metrics.REGISTRY.counter(
        "codegen.print.lines", help="generated source lines", lang=lang
    ).inc(lines)
    return files


class CodeWriter:
    """Accumulates lines with managed indentation."""

    def __init__(self, indent_str: str = "    "):
        self._lines: List[str] = []
        self._depth = 0
        self._indent_str = indent_str

    def line(self, text: str = "") -> "CodeWriter":
        if text:
            self._lines.append(self._indent_str * self._depth + text)
        else:
            self._lines.append("")
        return self

    def lines(self, texts) -> "CodeWriter":
        for text in texts:
            self.line(text)
        return self

    def blank(self) -> "CodeWriter":
        if self._lines and self._lines[-1] != "":
            self._lines.append("")
        return self

    def indent(self) -> "CodeWriter":
        self._depth += 1
        return self

    def dedent(self) -> "CodeWriter":
        if self._depth == 0:
            raise ValueError("dedent below zero")
        self._depth -= 1
        return self

    class _Block:
        def __init__(self, writer: "CodeWriter", open_text: str,
                     close_text: str):
            self.writer = writer
            self.open_text = open_text
            self.close_text = close_text

        def __enter__(self):
            self.writer.line(self.open_text)
            self.writer.indent()
            return self.writer

        def __exit__(self, *exc):
            self.writer.dedent()
            if self.close_text:
                self.writer.line(self.close_text)
            return False

    def block(self, open_text: str, close_text: str = "}") -> "_Block":
        """``with writer.block("if (x) {"):`` — auto indent/close."""
        return CodeWriter._Block(self, open_text, close_text)

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def __len__(self) -> int:
        return len(self._lines)
