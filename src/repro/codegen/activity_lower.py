"""Lowering UML activities to IR functions.

Structured activities — initial → actions/decisions/merges → final —
compile to a single IR function with nested ``if``/``else`` blocks.
Decisions become conditionals; merges are join points of the structured
control flow; fork/join (true concurrency) has no direct expression in a
sequential 3GL function and is rejected with a clear error.

The same activity therefore has *two* semantics-preserving consumers: the
token interpreter (:mod:`repro.validation.activity_sim`) and this
lowering — mirroring the state-machine story.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..uml.activities import (
    ActionNode,
    Activity,
    ActivityFinalNode,
    ActivityNode,
    DecisionNode,
    FlowFinalNode,
    ForkNode,
    InitialNode,
    JoinNode,
    MergeNode,
)
from .actions import parse_actions, qualify_identifiers, qualify_stmt
from .ir import (
    CommentStmt,
    FunctionDecl,
    IfStmt,
    Param,
    ReturnStmt,
    Stmt,
)


class ActivityLoweringError(Exception):
    """The activity uses constructs a sequential function cannot express."""


def lower_activity(activity: Activity, *,
                   function_name: Optional[str] = None,
                   parameters: Optional[List[Param]] = None,
                   field_names: Optional[Set[str]] = None,
                   max_nodes: int = 10_000) -> FunctionDecl:
    """Compile *activity* to an IR function.

    ``field_names`` get ``self.``-qualified (as in state-machine
    lowering).  Loops in the graph are rejected (they need a structured
    loop-recovery pass this subset does not implement); so are fork/join.
    """
    for node in activity.nodes:
        if isinstance(node, (ForkNode, JoinNode)):
            raise ActivityLoweringError(
                f"activity '{activity.name}' uses fork/join; sequential "
                f"lowering cannot express concurrency")
    initial = activity.initial_node()
    if initial is None:
        raise ActivityLoweringError(
            f"activity '{activity.name}' has no initial node")

    function = FunctionDecl(
        name=function_name or activity.name or "activity",
        return_type="void",
        params=list(parameters or []),
        doc=f"compiled from activity '{activity.name}'")
    fields = field_names or set()

    def _single_successor(node: ActivityNode) -> Optional[ActivityNode]:
        outgoing = node.outgoing()
        if not outgoing:
            return None
        if len(outgoing) > 1:
            raise ActivityLoweringError(
                f"node '{node.name}' has {len(outgoing)} unguarded "
                f"outgoing edges")
        return outgoing[0].target

    def _lower_from(node: Optional[ActivityNode],
                    stop: Optional[ActivityNode],
                    on_path: frozenset) -> List[Stmt]:
        """Statements from *node* until *stop* (exclusive) or a final."""
        statements: List[Stmt] = []
        current = node
        steps = 0
        while current is not None and current is not stop:
            steps += 1
            if steps > max_nodes:
                raise ActivityLoweringError("activity too large")
            if id(current) in on_path:
                raise ActivityLoweringError(
                    f"cycle through '{current.name}'; structured "
                    f"lowering supports acyclic activities")
            on_path = on_path | {id(current)}
            if isinstance(current, ActivityFinalNode):
                statements.append(ReturnStmt())
                return statements
            if isinstance(current, FlowFinalNode):
                statements.append(CommentStmt(text="flow ends"))
                return statements
            if isinstance(current, (InitialNode, MergeNode)):
                current = _single_successor(current)
                continue
            if isinstance(current, ActionNode):
                for stmt in parse_actions(current.body):
                    statements.append(qualify_stmt(stmt, fields))
                current = _single_successor(current)
                continue
            if isinstance(current, DecisionNode):
                statements.extend(
                    _lower_decision(current, stop, on_path))
                return statements
            raise ActivityLoweringError(
                f"unsupported node {current!r}")
        return statements

    def _merge_point(decision: DecisionNode) -> Optional[ActivityNode]:
        """The common node where the decision's branches reconverge:
        the first MergeNode reachable from every branch, else None
        (branches each run to a final)."""
        def reachable_merges(start: Optional[ActivityNode]) -> List[int]:
            out: List[int] = []
            seen: Set[int] = set()
            frontier = [start] if start is not None else []
            while frontier:
                candidate = frontier.pop(0)
                if candidate is None or id(candidate) in seen:
                    continue
                seen.add(id(candidate))
                if isinstance(candidate, MergeNode):
                    out.append(id(candidate))
                for edge in candidate.outgoing():
                    frontier.append(edge.target)
            return out
        branch_targets = [edge.target for edge in decision.outgoing()]
        merge_sets = [set(reachable_merges(t)) for t in branch_targets]
        common = set.intersection(*merge_sets) if merge_sets else set()
        if not common:
            return None
        for node in activity.nodes:           # stable order
            if id(node) in common:
                return node
        return None

    def _lower_decision(decision: DecisionNode,
                        stop: Optional[ActivityNode],
                        on_path: frozenset) -> List[Stmt]:
        merge = _merge_point(decision)
        guarded = [e for e in decision.outgoing()
                   if (e.guard or "").strip() not in ("", "else")]
        defaults = [e for e in decision.outgoing()
                    if (e.guard or "").strip() in ("", "else")]
        chain: List[Stmt] = []
        if defaults:
            chain = _lower_from(defaults[0].target, merge, on_path)
        for edge in reversed(guarded):
            chain = [IfStmt(
                condition=qualify_identifiers(edge.guard, fields),
                then_body=_lower_from(edge.target, merge, on_path),
                else_body=chain)]
        statements = list(chain)
        if merge is not None:
            statements.extend(_lower_from(merge, stop, on_path))
        return statements

    function.body = _lower_from(initial, None, frozenset())
    return function
