"""Parsing of the action mini-language into IR statements.

The action language used in state-machine effects, entry/exit actions and
operation bodies::

    statement  := assign | send | call
    assign     := LHS ':=' EXPR
    send       := 'send' TARGET '.' EVENT '(' args ')'
    call       := RECEIVER '.' OP '(' args ')'  |  OP '(' args ')'
    program    := statement (';' statement)*

Expressions stay textual (OCL-like); each code printer translates operator
spellings for its language.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ir import AssignStmt, CallStmt, CommentStmt, SendStmt, Stmt

_SEND_RE = re.compile(
    r"^send\s+(?P<target>[A-Za-z_][\w.]*)\s*\.\s*(?P<event>[A-Za-z_]\w*)"
    r"\s*\((?P<args>.*)\)$")
_CALL_RE = re.compile(
    r"^(?:(?P<receiver>[A-Za-z_][\w.]*)\s*\.\s*)?(?P<op>[A-Za-z_]\w*)"
    r"\s*\((?P<args>.*)\)$")


def _split_args(text: str) -> Tuple[str, ...]:
    text = text.strip()
    if not text:
        return ()
    depth = 0
    parts: List[str] = []
    current: List[str] = []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return tuple(parts)


def parse_statement(text: str) -> Stmt:
    """Parse one action statement."""
    text = text.strip()
    if ":=" in text:
        lhs, rhs = text.split(":=", 1)
        return AssignStmt(lhs=lhs.strip(), rhs=rhs.strip())
    send_match = _SEND_RE.match(text)
    if send_match:
        dotted = send_match.group("target")
        # 'send a.b.ev()' — last dotted part before event is still target path
        return SendStmt(target=dotted,
                        event=send_match.group("event"),
                        arguments=_split_args(send_match.group("args")))
    call_match = _CALL_RE.match(text)
    if call_match:
        return CallStmt(receiver=call_match.group("receiver") or "",
                        operation=call_match.group("op"),
                        arguments=_split_args(call_match.group("args")))
    # not parseable: keep as a comment so nothing is silently dropped
    return CommentStmt(text=f"unparsed action: {text}")


def parse_actions(program: str) -> List[Stmt]:
    """Parse a ``;``-separated action program (empty → no statements)."""
    if not program or not program.strip():
        return []
    return [parse_statement(part)
            for part in program.split(";") if part.strip()]


# -- field qualification ----------------------------------------------------

def qualify_identifiers(text: str, names, prefix: str = "self.") -> str:
    """Prefix bare occurrences of the given identifiers with *prefix*.

    Used by the lowering, which knows a class's field names, so that
    ``setpoint := setpoint + delta`` becomes ``self.setpoint := ...`` before
    printing.  Identifiers already qualified (preceded by ``.``) are left
    alone.
    """
    if not names:
        return text
    alternation = "|".join(re.escape(name) for name in
                           sorted(names, key=len, reverse=True))
    pattern = re.compile(rf"(?<![\w.])({alternation})\b(?!\s*\()")
    return pattern.sub(lambda m: prefix + m.group(1), text)


def qualify_stmt(stmt: Stmt, names, prefix: str = "self.") -> Stmt:
    """Return a copy of *stmt* with bare field references qualified."""
    if isinstance(stmt, AssignStmt):
        return AssignStmt(lhs=qualify_identifiers(stmt.lhs, names, prefix),
                          rhs=qualify_identifiers(stmt.rhs, names, prefix))
    if isinstance(stmt, SendStmt):
        return SendStmt(target=qualify_identifiers(stmt.target, names,
                                                   prefix),
                        event=stmt.event,
                        arguments=tuple(qualify_identifiers(a, names, prefix)
                                        for a in stmt.arguments))
    if isinstance(stmt, CallStmt):
        return CallStmt(receiver=qualify_identifiers(stmt.receiver, names,
                                                     prefix)
                        if stmt.receiver else "",
                        operation=stmt.operation,
                        arguments=tuple(qualify_identifiers(a, names, prefix)
                                        for a in stmt.arguments))
    return stmt


# -- expression spelling translation --------------------------------------

_C_SPELLINGS = [
    (re.compile(r"\bnot\b"), "!"),
    (re.compile(r"\band\b"), "&&"),
    (re.compile(r"\bor\b"), "||"),
    (re.compile(r"<>"), "!="),
    (re.compile(r"\btrue\b"), "1"),
    (re.compile(r"\bfalse\b"), "0"),
]

_JAVA_SPELLINGS = [
    (re.compile(r"\bnot\b"), "!"),
    (re.compile(r"\band\b"), "&&"),
    (re.compile(r"\bor\b"), "||"),
    (re.compile(r"<>"), "!="),
]

_EQ_RE = re.compile(r"(?<![<>:=!])=(?!=)")


def to_c_expr(text: str) -> str:
    """OCL-like boolean/arith expression → C spelling."""
    out = text
    for pattern, repl in _C_SPELLINGS:
        out = pattern.sub(repl, out)
    return _EQ_RE.sub("==", out)


def to_java_expr(text: str) -> str:
    """OCL-like expression → Java spelling (keeps true/false)."""
    out = text
    for pattern, repl in _JAVA_SPELLINGS:
        out = pattern.sub(repl, out)
    return _EQ_RE.sub("==", out)
