"""SystemC-like printer — the hardware-facing syntactic rendering.

Active structs become ``SC_MODULE`` s with an event-driven process; passive
structs become plain C++ structs.  Like the other printers it adds no
semantic content to the IR — it exists to show one IR feeding software
*and* hardware flows, the "system domain and the hardware aspects" the
paper says UML tooling lacks.
"""

from __future__ import annotations

from typing import Dict

from .actions import to_c_expr
from .ir import (
    AssignStmt,
    BreakStmt,
    CallStmt,
    CodeModel,
    CommentStmt,
    CompilationUnit,
    EnumDecl,
    FunctionDecl,
    IfStmt,
    RawStmt,
    ReturnStmt,
    SendStmt,
    Stmt,
    StructDecl,
    SwitchStmt,
    VarDeclStmt,
)
from .printer import CodeWriter

_HW_TYPES = {
    "bit": "sc_bit", "q15_t": "sc_int<16>", "int16_t": "sc_int<16>",
    "uint8_t": "sc_uint<8>", "int32_t": "sc_int<32>",
    "uint32_t": "sc_uint<32>", "bool": "bool", "double": "double",
}


def _hwtype(type_name: str) -> str:
    return _HW_TYPES.get(type_name, type_name)


class SystemCPrinter:
    """Prints a :class:`CodeModel` as SystemC-like module definitions."""

    def print_model(self, code: CodeModel) -> Dict[str, str]:
        return {f"{unit.name}.h": self.print_unit(unit)
                for unit in code.units}

    def print_unit(self, unit: CompilationUnit) -> str:
        writer = CodeWriter()
        writer.line(f"// {unit.name}.h — generated; do not edit.")
        writer.line("#include <systemc.h>")
        writer.blank()
        for enum in unit.enums:
            literals = ", ".join(enum.literals)
            writer.line(f"enum {enum.name} {{ {literals} }};")
        writer.blank()
        for struct in unit.structs:
            if struct.is_active:
                self._module(writer, unit, struct)
            else:
                self._plain_struct(writer, struct)
            writer.blank()
        return writer.text()

    def _plain_struct(self, writer: CodeWriter, struct: StructDecl) -> None:
        with writer.block(f"struct {struct.name} {{", "};"):
            for field in struct.fields:
                writer.line(f"{_hwtype(field.type_name)} {field.name};")

    def _module(self, writer: CodeWriter, unit: CompilationUnit,
                struct: StructDecl) -> None:
        if struct.doc:
            writer.line(f"// {struct.doc}")
        with writer.block(f"SC_MODULE({struct.name}) {{", "};"):
            writer.line("sc_in<bool> clk;")
            writer.line(f"sc_fifo_in<int> events;")
            for field in struct.fields:
                writer.line(f"{_hwtype(field.type_name)} {field.name};")
            writer.blank()
            dispatch = unit.function(f"{struct.name}_dispatch")
            with writer.block("void step() {"):
                if dispatch is not None:
                    writer.line("int event;")
                    with writer.block("while (events.nb_read(event)) {"):
                        for stmt in dispatch.body:
                            self._stmt(writer, stmt)
                else:
                    writer.line("// combinational body")
            writer.blank()
            with writer.block(f"SC_CTOR({struct.name}) {{"):
                writer.line("SC_METHOD(step);")
                writer.line("sensitive << clk.pos();")

    def _stmt(self, writer: CodeWriter, stmt: Stmt) -> None:
        if isinstance(stmt, CommentStmt):
            writer.line(f"// {stmt.text}")
        elif isinstance(stmt, RawStmt):
            writer.line(stmt.text)
        elif isinstance(stmt, VarDeclStmt):
            init = f" = {to_c_expr(stmt.init)}" if stmt.init else ""
            writer.line(f"{_hwtype(stmt.type_name)} {stmt.name}{init};")
        elif isinstance(stmt, AssignStmt):
            writer.line(f"{self._path(stmt.lhs)} = "
                        f"{to_c_expr(stmt.rhs)};")
        elif isinstance(stmt, SendStmt):
            writer.line(f"{self._path(stmt.target)}_events.write("
                        f"EV_{stmt.event.upper()});")
        elif isinstance(stmt, CallStmt):
            receiver = f"{self._path(stmt.receiver)}." if stmt.receiver else ""
            args = ", ".join(to_c_expr(a) for a in stmt.arguments)
            writer.line(f"{receiver}{stmt.operation}({args});")
        elif isinstance(stmt, ReturnStmt):
            writer.line("return;")
        elif isinstance(stmt, BreakStmt):
            writer.line("break;")
        elif isinstance(stmt, IfStmt):
            with writer.block(f"if ({to_c_expr(stmt.condition)}) {{"):
                for inner in stmt.then_body:
                    self._stmt(writer, inner)
            if stmt.else_body:
                with writer.block("else {"):
                    for inner in stmt.else_body:
                        self._stmt(writer, inner)
        elif isinstance(stmt, SwitchStmt):
            with writer.block(f"switch ({self._path(stmt.selector)}) {{"):
                for case in stmt.cases:
                    writer.line(f"case {case.label}: {{")
                    writer.indent()
                    for inner in case.body:
                        self._stmt(writer, inner)
                    writer.dedent()
                    writer.line("}")
                if stmt.default:
                    writer.line("default: break;")
        else:
            writer.line(f"// unsupported stmt {stmt!r}")

    @staticmethod
    def _path(path: str) -> str:
        return path.replace("self.", "") if path else path


def generate_systemc(code: CodeModel) -> Dict[str, str]:
    """Convenience: print all units to ``{filename: text}``."""
    from .printer import _print_observed
    return _print_observed("systemc",
                           lambda: SystemCPrinter().print_model(code))
