"""Java-like printer — a second purely syntactic rendering of the IR.

Demonstrates the paper's point that once the semantic work is done (PSM,
IR), re-targeting to another 3GL is a spelling change: this printer shares
the IR with the C printer and adds nothing.
"""

from __future__ import annotations

from typing import Dict

from .actions import to_java_expr
from .ir import (
    AssignStmt,
    BreakStmt,
    CallStmt,
    CodeModel,
    CommentStmt,
    CompilationUnit,
    EnumDecl,
    FunctionDecl,
    IfStmt,
    RawStmt,
    ReturnStmt,
    SendStmt,
    Stmt,
    StructDecl,
    SwitchStmt,
    VarDeclStmt,
)
from .printer import CodeWriter

_TYPE_SPELLING = {
    "int32_t": "int", "uint32_t": "int", "int16_t": "short",
    "uint8_t": "byte", "int64_t": "long", "Int64": "long",
    "double": "double", "Float64": "double", "q15_t": "short",
    "char*": "String", "char[16]": "String", "Utf8String": "String",
    "bool": "boolean", "Bool": "boolean", "bit": "boolean",
    "void": "void", "int": "int",
}


def _jtype(type_name: str) -> str:
    return _TYPE_SPELLING.get(type_name.rstrip("*"),
                              type_name.replace("*", ""))


class JavaPrinter:
    """Prints a :class:`CodeModel` as Java-like source, one class per
    struct, methods folded into their owner class."""

    def print_model(self, code: CodeModel) -> Dict[str, str]:
        out: Dict[str, str] = {}
        for unit in code.units:
            for struct in unit.structs:
                out[f"{struct.name}.java"] = self._class_text(unit, struct)
            if unit.enums and not unit.structs:
                writer = CodeWriter()
                for enum in unit.enums:
                    self._enum(writer, enum)
                out[f"{unit.name}.java"] = writer.text()
        return out

    def _class_text(self, unit: CompilationUnit,
                    struct: StructDecl) -> str:
        writer = CodeWriter()
        writer.line(f"// {struct.name}.java — generated; do not edit.")
        if struct.doc:
            writer.line(f"/** {struct.doc} */")
        with writer.block(f"public class {struct.name} {{"):
            for enum in unit.enums:
                if enum.name.startswith(struct.name):
                    self._enum(writer, enum)
                    writer.blank()
            for field in struct.fields:
                writer.line(f"private {_jtype(field.type_name)} "
                            f"{field.name};")
            writer.blank()
            for function in unit.functions:
                if function.owner_struct != struct.name:
                    continue
                self._method(writer, struct, function)
                writer.blank()
        return writer.text()

    def _enum(self, writer: CodeWriter, enum: EnumDecl) -> None:
        if enum.doc:
            writer.line(f"/** {enum.doc} */")
        literals = ", ".join(enum.literals)
        writer.line(f"public enum {_jtype(enum.name)} {{ {literals} }}")

    def _method(self, writer: CodeWriter, struct: StructDecl,
                function: FunctionDecl) -> None:
        if function.doc:
            writer.line(f"/** {function.doc} */")
        method_name = function.name
        prefix = f"{struct.name}_"
        if method_name.startswith(prefix):
            method_name = method_name[len(prefix):]
        params = ", ".join(f"{_jtype(p.type_name)} {p.name}"
                           for p in function.params
                           if p.name != "self")
        with writer.block(f"public {_jtype(function.return_type)} "
                          f"{method_name}({params}) {{"):
            for stmt in function.body:
                self._stmt(writer, stmt)

    def _stmt(self, writer: CodeWriter, stmt: Stmt) -> None:
        if isinstance(stmt, CommentStmt):
            writer.line(f"// {stmt.text}")
        elif isinstance(stmt, RawStmt):
            writer.line(stmt.text)
        elif isinstance(stmt, VarDeclStmt):
            init = f" = {to_java_expr(stmt.init)}" if stmt.init else ""
            writer.line(f"{_jtype(stmt.type_name)} {stmt.name}{init};")
        elif isinstance(stmt, AssignStmt):
            writer.line(f"{self._path(stmt.lhs)} = "
                        f"{to_java_expr(stmt.rhs)};")
        elif isinstance(stmt, SendStmt):
            args = ", ".join([f"Event.{stmt.event.upper()}"]
                             + [to_java_expr(a) for a in stmt.arguments])
            writer.line(f"{self._path(stmt.target)}.send({args});")
        elif isinstance(stmt, CallStmt):
            receiver = (f"{self._path(stmt.receiver)}."
                        if stmt.receiver else "")
            args = ", ".join(to_java_expr(a) for a in stmt.arguments)
            writer.line(f"{receiver}{stmt.operation}({args});")
        elif isinstance(stmt, ReturnStmt):
            writer.line(f"return {to_java_expr(stmt.expr)};"
                        if stmt.expr else "return;")
        elif isinstance(stmt, BreakStmt):
            writer.line("break;")
        elif isinstance(stmt, IfStmt):
            with writer.block(f"if ({to_java_expr(stmt.condition)}) {{"):
                for inner in stmt.then_body:
                    self._stmt(writer, inner)
            if stmt.else_body:
                with writer.block("else {"):
                    for inner in stmt.else_body:
                        self._stmt(writer, inner)
        elif isinstance(stmt, SwitchStmt):
            with writer.block(f"switch ({self._path(stmt.selector)}) {{"):
                for case in stmt.cases:
                    writer.line(f"case {case.label}: {{")
                    writer.indent()
                    for inner in case.body:
                        self._stmt(writer, inner)
                    writer.dedent()
                    writer.line("}")
                if stmt.default:
                    writer.line("default: {")
                    writer.indent()
                    for inner in stmt.default:
                        self._stmt(writer, inner)
                    writer.dedent()
                    writer.line("}")
        else:
            writer.line(f"// unsupported stmt {stmt!r}")

    @staticmethod
    def _path(path: str) -> str:
        return path.replace("self.", "this.") if path else path


def generate_java(code: CodeModel) -> Dict[str, str]:
    """Convenience: print all classes to ``{filename: text}``."""
    from .printer import _print_observed
    return _print_observed("java", lambda: JavaPrinter().print_model(code))
