"""C printer — a purely *syntactic* transformation of the IR.

No platform or model knowledge enters here: every decision was already
made by the PSM transformation and the PSM→IR lowering.  The printer only
chooses spellings.
"""

from __future__ import annotations

from typing import Dict, List

from .actions import to_c_expr
from .ir import (
    AssignStmt,
    BreakStmt,
    CallStmt,
    CodeModel,
    CommentStmt,
    CompilationUnit,
    EnumDecl,
    FunctionDecl,
    IfStmt,
    RawStmt,
    ReturnStmt,
    SendStmt,
    Stmt,
    StructDecl,
    SwitchStmt,
    VarDeclStmt,
)
from .printer import CodeWriter


class CPrinter:
    """Prints a :class:`CodeModel` as C source text (one string per unit)."""

    def print_model(self, code: CodeModel) -> Dict[str, str]:
        return {f"{unit.name}.c": self.print_unit(unit)
                for unit in code.units}

    def print_unit(self, unit: CompilationUnit) -> str:
        writer = CodeWriter()
        writer.line(f"/* {unit.name}.c — generated; do not edit. */")
        if unit.doc.strip():
            for doc_line in unit.doc.strip().splitlines():
                writer.line(f"/* {doc_line.strip()} */")
        writer.line("#include <stdint.h>")
        writer.line("#include <stdbool.h>")
        for include in unit.includes:
            writer.line(f"#include {include}")
        writer.blank()
        for enum in unit.enums:
            self._enum(writer, enum)
            writer.blank()
        for struct in unit.structs:
            self._struct(writer, struct)
            writer.blank()
        for function in unit.functions:
            self._function(writer, function)
            writer.blank()
        return writer.text()

    # -- declarations -----------------------------------------------------

    def _enum(self, writer: CodeWriter, enum: EnumDecl) -> None:
        if enum.doc:
            writer.line(f"/* {enum.doc} */")
        with writer.block(f"typedef enum {{", f"}} {enum.name};"):
            for literal in enum.literals:
                writer.line(f"{literal},")

    def _struct(self, writer: CodeWriter, struct: StructDecl) -> None:
        if struct.doc:
            writer.line(f"/* {struct.doc} */")
        with writer.block("typedef struct {", f"}} {struct.name};"
                          .replace("}}", "}")):
            if not struct.fields:
                writer.line("char _empty;")
            for field in struct.fields:
                comment = f"  /* {field.doc} */" if field.doc else ""
                writer.line(self._field_decl(field.name, field.type_name)
                            + ";" + comment)

    @staticmethod
    def _field_decl(name: str, type_name: str) -> str:
        if type_name.endswith("]"):           # e.g. char[16]
            base, bracket = type_name.split("[", 1)
            return f"{base} {name}[{bracket}"
        return f"{type_name} {name}"

    def _function(self, writer: CodeWriter, function: FunctionDecl) -> None:
        if function.doc:
            writer.line(f"/* {function.doc} */")
        params = ", ".join(
            f"{self._param_type(p.type_name)} {p.name}"
            for p in function.params) or "void"
        with writer.block(f"{self._param_type(function.return_type)} "
                          f"{function.name}({params}) {{"):
            for stmt in function.body:
                self._stmt(writer, stmt)

    @staticmethod
    def _param_type(type_name: str) -> str:
        return type_name

    # -- statements --------------------------------------------------------

    def _stmt(self, writer: CodeWriter, stmt: Stmt) -> None:
        if isinstance(stmt, CommentStmt):
            writer.line(f"/* {stmt.text} */")
        elif isinstance(stmt, RawStmt):
            writer.line(stmt.text)
        elif isinstance(stmt, VarDeclStmt):
            init = f" = {to_c_expr(stmt.init)}" if stmt.init else ""
            writer.line(f"{stmt.type_name} {stmt.name}{init};")
        elif isinstance(stmt, AssignStmt):
            writer.line(f"{self._lvalue(stmt.lhs)} = "
                        f"{to_c_expr(self._rvalue(stmt.rhs))};")
        elif isinstance(stmt, SendStmt):
            args = ", ".join(["&" + self._lvalue(stmt.target),
                              f"EV_{stmt.event.upper()}"]
                             + [to_c_expr(a) for a in stmt.arguments])
            writer.line(f"event_send({args});")
        elif isinstance(stmt, CallStmt):
            receiver = ([self._lvalue(stmt.receiver)]
                        if stmt.receiver else [])
            args = ", ".join(receiver
                             + [to_c_expr(a) for a in stmt.arguments])
            writer.line(f"{stmt.operation}({args});")
        elif isinstance(stmt, ReturnStmt):
            writer.line(f"return {to_c_expr(stmt.expr)};"
                        if stmt.expr else "return;")
        elif isinstance(stmt, BreakStmt):
            writer.line("break;")
        elif isinstance(stmt, IfStmt):
            with writer.block(f"if ({to_c_expr(self._rvalue(stmt.condition))}) {{"):
                for inner in stmt.then_body:
                    self._stmt(writer, inner)
            if stmt.else_body:
                with writer.block("else {"):
                    for inner in stmt.else_body:
                        self._stmt(writer, inner)
        elif isinstance(stmt, SwitchStmt):
            with writer.block(f"switch ({self._rvalue(stmt.selector)}) {{"):
                for case in stmt.cases:
                    writer.line(f"case {case.label}: {{")
                    writer.indent()
                    for inner in case.body:
                        self._stmt(writer, inner)
                    writer.dedent()
                    writer.line("}")
                if stmt.default:
                    writer.line("default: {")
                    writer.indent()
                    for inner in stmt.default:
                        self._stmt(writer, inner)
                    writer.dedent()
                    writer.line("}")
        else:
            writer.line(f"/* unsupported stmt {stmt!r} */")

    @staticmethod
    def _lvalue(path: str) -> str:
        """'self.x' → 'self->x'; deeper paths keep C arrow spelling."""
        parts = path.split(".")
        if len(parts) == 1:
            return path
        return parts[0] + "->" + ".".join(parts[1:])

    @classmethod
    def _rvalue(cls, expr: str) -> str:
        if expr.startswith("self."):
            return cls._lvalue(expr)
        return expr


def generate_c(code: CodeModel) -> Dict[str, str]:
    """Convenience: print all units to ``{filename: text}``."""
    from .printer import _print_observed
    return _print_observed("c", lambda: CPrinter().print_model(code))
