"""PSM → IR lowering — the *semantic* half of code generation.

Consumes a platform-specific UML model and produces the language-neutral
:class:`~repro.codegen.ir.CodeModel`:

* every class → a struct with fields from its (own + inherited)
  attributes, an ``init`` function, and one function per operation;
* every class with a state machine → a state enum, an event enum, and a
  ``dispatch(self, event)`` function implementing the (flattened)
  transition table with guards and effects;
* enumerations → enum declarations.

Everything downstream of this module is syntactic pretty-printing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..transform.library import flatten_state_machine
from ..uml import (
    Behavior,
    Clazz,
    Enumeration,
    Interface,
    Package,
    Property,
    State,
    StateMachine,
    UmlModel,
)
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .actions import parse_actions, qualify_identifiers, qualify_stmt
from .ir import (
    AssignStmt,
    BreakStmt,
    CodeModel,
    CommentStmt,
    CompilationUnit,
    EnumDecl,
    Field_,
    FunctionDecl,
    IfStmt,
    Param,
    ReturnStmt,
    StructDecl,
    SwitchCase,
    SwitchStmt,
)

SELF_PARAM = "self"


def _is_activity(behavior) -> bool:
    from ..uml.activities import Activity
    return isinstance(behavior, Activity)


def _type_name(property_or_param) -> str:
    typed = property_or_param.type
    return typed.name if typed is not None else "int"


def lower_class(cls: Clazz, unit: CompilationUnit) -> StructDecl:
    """Lower one class to a struct + functions inside *unit*."""
    struct = StructDecl(name=cls.name, is_active=cls.is_active,
                        doc=f"generated from class '{cls.qualified_name}'")
    for prop in cls.all_attributes():
        struct.fields.append(Field_(
            name=prop.name, type_name=_type_name(prop),
            default=prop.default_value or None,
            doc=prop.multiplicity_str() if prop.is_many else ""))
    unit.structs.append(struct)

    init = FunctionDecl(name=f"{cls.name}_init", return_type="void",
                        params=[Param(SELF_PARAM, f"{cls.name}*")],
                        owner_struct=cls.name,
                        doc=f"initialise a {cls.name} instance")
    for field in struct.fields:
        if field.default is not None:
            init.body.append(AssignStmt(lhs=f"{SELF_PARAM}.{field.name}",
                                        rhs=field.default))
    unit.functions.append(init)

    for operation in cls.all_operations():
        function = FunctionDecl(
            name=f"{cls.name}_{operation.name}",
            return_type=(operation.return_type().name
                         if operation.return_type() else "void"),
            params=[Param(SELF_PARAM, f"{cls.name}*")]
            + [Param(p.name, _type_name(p))
               for p in operation.in_parameters()],
            owner_struct=cls.name,
            doc=operation.signature())
        param_names = {p.name for p in operation.in_parameters()}
        field_names = {f.name for f in struct.fields} - param_names
        method = operation.method
        if method is not None and _is_activity(method):
            from .activity_lower import lower_activity
            compiled = lower_activity(method,
                                      function_name=function.name,
                                      field_names=field_names)
            function.body.extend(compiled.body)
        else:
            function.body.extend(
                qualify_stmt(stmt, field_names)
                for stmt in parse_actions(operation.body))
        if operation.return_type() is not None and not any(
                isinstance(stmt, ReturnStmt) for stmt in function.body):
            function.body.append(ReturnStmt(expr="0"))
        unit.functions.append(function)

    machine = cls.state_machine()
    if machine is not None and machine.regions:
        lower_state_machine(cls, machine, struct, unit)
    return struct


def lower_state_machine(cls: Clazz, machine: StateMachine,
                        struct: StructDecl, unit: CompilationUnit) -> None:
    """Lower a (possibly hierarchical) state machine into enums + dispatch."""
    if any(isinstance(v, State) and v.is_composite
           for v in machine.all_vertices()):
        machine = flatten_state_machine(machine)

    state_names = [s.name for s in machine.all_vertices()
                   if isinstance(s, State)]
    events = machine.events()
    prefix = cls.name.upper()

    unit.enums.append(EnumDecl(
        name=f"{cls.name}_state",
        literals=[f"{prefix}_STATE_{n.upper()}" for n in state_names],
        doc=f"states of '{machine.name}'"))
    unit.enums.append(EnumDecl(
        name=f"{cls.name}_event",
        literals=[f"{prefix}_EVENT_{e.upper()}" for e in events],
        doc=f"events of '{machine.name}'"))
    struct.fields.append(Field_(name="state",
                                type_name=f"{cls.name}_state"))

    dispatch = FunctionDecl(
        name=f"{cls.name}_dispatch", return_type="void",
        params=[Param(SELF_PARAM, f"{cls.name}*"),
                Param("event", f"{cls.name}_event")],
        owner_struct=cls.name,
        doc=f"run-to-completion step of '{machine.name}'")
    switch = SwitchStmt(selector=f"{SELF_PARAM}.state")

    field_names = {f.name for f in struct.fields}
    region = machine.main_region()

    def _entry_statements(target, effect: str) -> List:
        """Statements for taking a transition: effect, then either a state
        assignment, a choice expansion (nested if over its branches), or a
        final-state comment."""
        from ..uml import Pseudostate
        statements: List = [qualify_stmt(stmt, field_names)
                            for stmt in parse_actions(effect)]
        if isinstance(target, Pseudostate) and target.kind == "choice":
            branches = list(target.outgoing())
            guarded = [t for t in branches
                       if (t.guard or "").strip() not in ("", "else")]
            defaults = [t for t in branches if t not in guarded]
            chain: List = []
            for default in defaults[:1]:
                chain = _entry_statements(default.target, default.effect)
            for branch in reversed(guarded):
                chain = [IfStmt(
                    condition=qualify_identifiers(branch.guard,
                                                  field_names),
                    then_body=_entry_statements(branch.target,
                                                branch.effect),
                    else_body=chain)]
            statements.extend(chain)
            return statements
        if isinstance(target, State):
            statements.append(AssignStmt(
                lhs=f"{SELF_PARAM}.state",
                rhs=f"{prefix}_STATE_{target.name.upper()}"))
        else:
            statements.append(CommentStmt(text="final state reached"))
        return statements

    for state in region.states():
        case = SwitchCase(label=f"{prefix}_STATE_{state.name.upper()}")
        for transition in state.outgoing():
            if not transition.trigger:
                continue
            target = transition.target
            body: List = _entry_statements(target, transition.effect)
            guard_wrapped: List = body
            if transition.guard:
                guard_wrapped = [IfStmt(
                    condition=qualify_identifiers(transition.guard,
                                                  field_names),
                    then_body=body)]
            event_check = IfStmt(
                condition=f"event = "
                          f"{prefix}_EVENT_{transition.trigger.upper()}",
                then_body=guard_wrapped + [BreakStmt()])
            case.body.append(event_check)
        case.body.append(BreakStmt())
        switch.cases.append(case)
    switch.default.append(BreakStmt())
    dispatch.body.append(switch)
    unit.functions.append(dispatch)

    # initial-state setter
    initial = region.initial_pseudostate()
    if initial is not None and initial.outgoing():
        entry_target = initial.outgoing()[0].target
        if isinstance(entry_target, State):
            enter = FunctionDecl(
                name=f"{cls.name}_enter_initial", return_type="void",
                params=[Param(SELF_PARAM, f"{cls.name}*")],
                owner_struct=cls.name,
                doc="enter the state machine's initial configuration")
            for stmt in parse_actions(initial.outgoing()[0].effect):
                enter.body.append(qualify_stmt(stmt, field_names))
            enter.body.append(AssignStmt(
                lhs=f"{SELF_PARAM}.state",
                rhs=f"{prefix}_STATE_{entry_target.name.upper()}"))
            unit.functions.append(enter)


def lower_model(model: UmlModel, name: Optional[str] = None) -> CodeModel:
    """Lower a whole PSM to a :class:`CodeModel` (one unit per package,
    plus one for root-level classes)."""
    if _trace.ON:
        with _trace.span("codegen.lower", model=model.name or "?") as sp:
            code = _lower_model_impl(model, name)
        sp.tag(units=len(code.units))
        _metrics.REGISTRY.counter(
            "codegen.lower.structs",
            help="struct declarations lowered").inc(
                sum(len(u.structs) for u in code.units))
        _metrics.REGISTRY.counter(
            "codegen.lower.functions",
            help="function declarations lowered").inc(
                sum(len(u.functions) for u in code.units))
        return code
    return _lower_model_impl(model, name)


def _lower_model_impl(model: UmlModel, name: Optional[str]) -> CodeModel:
    code = CodeModel(name=name or model.name)

    def _unit_for(package: Package) -> CompilationUnit:
        unit_name = package.name or "main"
        unit = code.unit(unit_name)
        if unit is None:
            unit = CompilationUnit(
                name=unit_name,
                doc=f"generated from package '{package.qualified_name}'")
            code.units.append(unit)
        return unit

    def _walk(package: Package) -> None:
        unit = _unit_for(package)
        for member in package.packaged_elements:
            if isinstance(member, Package):
                _walk(member)
            elif isinstance(member, Enumeration):
                unit.enums.append(EnumDecl(
                    name=member.name,
                    literals=[f"{member.name.upper()}_{l.upper()}"
                              for l in member.literal_names()]))
            elif isinstance(member, Clazz) and not isinstance(member,
                                                              Behavior):
                lower_class(member, unit)
            elif isinstance(member, Interface):
                # interfaces become doc-only comments in the C-ish IR
                unit.doc += f"\ninterface {member.name}: " + ", ".join(
                    op.name for op in member.all_operations())
    _walk(model)
    code.units = [u for u in code.units
                  if u.structs or u.enums or u.functions]
    return code
