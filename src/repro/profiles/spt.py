"""The Schedulability, Performance and Time profile (SPT) — with real
analysis behind the stereotypes.

The paper lists the "UML Profile for Schedulability, Performance and Time"
among the languages a systems methodology needs; it also insists a model
one cannot test is pointless.  So this profile is *executable*: annotate
active classes with «SASchedulable» and run

* rate-monotonic priority assignment,
* the Liu & Layland utilisation bound test, and
* exact response-time analysis (with blocking terms),

getting back a per-task schedulability report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mof import MBoolean, MInteger, MReal, MString
from ..uml import Clazz, Package
from ..mof.query import instances_of
from .base import Profile, ProfileError

SPT = Profile("SPT", "Schedulability, Performance and Time")

SA_SCHEDULABLE = SPT.define("SASchedulable", Clazz) \
    .tag("sa_period_ms", MReal, required=True) \
    .tag("sa_wcet_ms", MReal, required=True) \
    .tag("sa_deadline_ms", MReal) \
    .tag("sa_priority", MInteger) \
    .tag("sa_blocking_ms", MReal, 0.0)

SA_SCHEDULER = SPT.define("SAScheduler", Clazz) \
    .tag("sa_policy", MString, "fixed_priority") \
    .tag("sa_preemptive", MBoolean, True)

SA_RESOURCE = SPT.define("SAResource", Clazz) \
    .tag("sa_ceiling", MInteger) \
    .tag("sa_access_ms", MReal, 0.0)


@dataclass
class Task:
    """A periodic task extracted from an annotated class."""

    name: str
    period_ms: float
    wcet_ms: float
    deadline_ms: Optional[float] = None
    priority: Optional[int] = None      # larger = more urgent
    blocking_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError(f"task '{self.name}': period must be > 0")
        if self.wcet_ms < 0:
            raise ValueError(f"task '{self.name}': wcet must be >= 0")
        if self.deadline_ms is None:
            self.deadline_ms = self.period_ms

    @property
    def utilization(self) -> float:
        return self.wcet_ms / self.period_ms


@dataclass
class TaskAnalysis:
    """Per-task outcome of response-time analysis."""

    task: Task
    response_ms: float = math.inf
    schedulable: bool = False


@dataclass
class SchedulabilityReport:
    """The full analysis outcome."""

    tasks: List[TaskAnalysis] = field(default_factory=list)
    total_utilization: float = 0.0
    utilization_bound: float = 0.0
    passes_utilization_test: bool = False
    utilization_test_conclusive: bool = False
    schedulable: bool = False

    def row(self, name: str) -> TaskAnalysis:
        for analysis in self.tasks:
            if analysis.task.name == name:
                return analysis
        raise KeyError(name)

    def summary(self) -> str:
        verdict = "SCHEDULABLE" if self.schedulable else "NOT SCHEDULABLE"
        return (f"tasks={len(self.tasks)} "
                f"U={self.total_utilization:.3f} "
                f"bound={self.utilization_bound:.3f} "
                f"rta={verdict}")


def rate_monotonic_priorities(tasks: List[Task]) -> List[Task]:
    """Assign priorities by period (shorter period → higher priority).

    Returns the same task objects, priorities filled for those missing.
    """
    ordered = sorted(tasks, key=lambda t: (t.period_ms, t.name))
    for rank, task in enumerate(ordered):
        if task.priority is None:
            task.priority = len(ordered) - rank
    return tasks


def total_utilization(tasks: List[Task]) -> float:
    return sum(task.utilization for task in tasks)


def liu_layland_bound(n: int) -> float:
    """Liu & Layland utilisation bound for n tasks under RM."""
    if n <= 0:
        return 0.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def utilization_test(tasks: List[Task]) -> Optional[bool]:
    """Sufficient (not necessary) RM test: True = schedulable,
    None = inconclusive, False = definitely over 100%."""
    utilization = total_utilization(tasks)
    if utilization <= liu_layland_bound(len(tasks)):
        return True
    if utilization > 1.0:
        return False
    return None


def response_time_analysis(tasks: List[Task], *,
                           max_iterations: int = 1000
                           ) -> List[TaskAnalysis]:
    """Exact (for this model) fixed-priority preemptive RTA.

    R_i = C_i + B_i + Σ_{j ∈ hp(i)} ceil(R_i / T_j) · C_j, iterated to a
    fixed point; a task is schedulable when R_i ≤ D_i.
    """
    rate_monotonic_priorities(tasks)
    analyses: List[TaskAnalysis] = []
    for task in tasks:
        higher = [t for t in tasks
                  if t is not task and (t.priority or 0) > (task.priority
                                                            or 0)]
        response = task.wcet_ms + task.blocking_ms
        converged = False
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / t.period_ms) * t.wcet_ms
                for t in higher)
            next_response = task.wcet_ms + task.blocking_ms + interference
            if math.isclose(next_response, response, rel_tol=1e-12):
                converged = True
                break
            if next_response > (task.deadline_ms or task.period_ms) * 1000:
                break       # hopeless: diverging
            response = next_response
        analyses.append(TaskAnalysis(
            task=task,
            response_ms=response if converged else math.inf,
            schedulable=converged
            and response <= (task.deadline_ms or task.period_ms)))
    return analyses


def analyze_tasks(tasks: List[Task]) -> SchedulabilityReport:
    """Run both tests over an explicit task set."""
    report = SchedulabilityReport()
    report.total_utilization = total_utilization(tasks)
    report.utilization_bound = liu_layland_bound(len(tasks))
    outcome = utilization_test(tasks)
    report.passes_utilization_test = outcome is True
    report.utilization_test_conclusive = outcome is not None
    report.tasks = response_time_analysis(tasks)
    report.schedulable = all(a.schedulable for a in report.tasks)
    return report


def tasks_from_model(root: Package) -> List[Task]:
    """Extract the task set from «SASchedulable» classes under *root*."""
    tasks: List[Task] = []
    for cls in instances_of(root, Clazz):
        if not SA_SCHEDULABLE.is_applied_to(cls):
            continue
        tasks.append(Task(
            name=cls.name,
            period_ms=SA_SCHEDULABLE.value_on(cls, "sa_period_ms"),
            wcet_ms=SA_SCHEDULABLE.value_on(cls, "sa_wcet_ms"),
            deadline_ms=SA_SCHEDULABLE.value_on(cls, "sa_deadline_ms"),
            priority=SA_SCHEDULABLE.value_on(cls, "sa_priority"),
            blocking_ms=SA_SCHEDULABLE.value_on(cls, "sa_blocking_ms",
                                                0.0) or 0.0,
        ))
    return tasks


def analyze_model(root: Package) -> SchedulabilityReport:
    """End-to-end: stereotyped model in, schedulability report out."""
    tasks = tasks_from_model(root)
    if not tasks:
        raise ProfileError("no «SASchedulable» classes found")
    return analyze_tasks(tasks)
