"""The UML Testing Profile — test contexts, cases, verdicts, arbiter.

Wires the profile's concepts onto the scenario machinery of
:mod:`repro.validation.scenarios`: a «TestContext» owns «TestCase»s whose
behaviour is a scenario run against a fresh system-under-test
collaboration; the :class:`Arbiter` folds individual verdicts into one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..mof import MString
from ..uml import Clazz
from ..validation.collaboration import Collaboration
from ..validation.scenarios import Scenario, ScenarioResult
from ..validation.statemachine_sim import SimulationError
from .base import Profile

TESTING = Profile("Testing", "UML Testing Profile")

TEST_CONTEXT = TESTING.define("TestContext", Clazz) \
    .tag("purpose", MString, "")
TEST_CASE = TESTING.define("TestCase", Clazz) \
    .tag("description", MString, "")
SUT = TESTING.define("SUT", Clazz)


class Verdict(enum.Enum):
    """UTP verdict lattice: pass < inconclusive < fail < error."""

    PASS = "pass"
    INCONCLUSIVE = "inconclusive"
    FAIL = "fail"
    ERROR = "error"


_SEVERITY = {Verdict.PASS: 0, Verdict.INCONCLUSIVE: 1, Verdict.FAIL: 2,
             Verdict.ERROR: 3}


def worst(verdicts: List[Verdict]) -> Verdict:
    """The arbiter's fold: the most severe verdict wins."""
    if not verdicts:
        return Verdict.INCONCLUSIVE
    return max(verdicts, key=lambda v: _SEVERITY[v])


@dataclass
class TestCaseResult:
    __test__ = False

    name: str
    verdict: Verdict
    detail: str = ""
    scenario_result: Optional[ScenarioResult] = None


@dataclass
class TestReport:
    __test__ = False

    context_name: str
    results: List[TestCaseResult] = field(default_factory=list)

    @property
    def verdict(self) -> Verdict:
        return worst([r.verdict for r in self.results])

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for result in self.results:
            out[result.verdict.value] = out.get(result.verdict.value, 0) + 1
        return out

    def summary(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts()
                                                         .items()))
        return (f"test context '{self.context_name}': "
                f"{self.verdict.value.upper()} ({counts})")


class TestCase:
    """One test: a scenario plus optional extra assertions on the final
    collaboration state."""

    __test__ = False          # not a pytest class despite the UTP name

    def __init__(self, name: str, scenario: Scenario, *,
                 post_condition: Optional[Callable[[Collaboration], bool]]
                 = None,
                 description: str = ""):
        self.name = name
        self.scenario = scenario
        self.post_condition = post_condition
        self.description = description

    def run(self, collaboration: Collaboration) -> TestCaseResult:
        try:
            scenario_result = self.scenario.run(collaboration)
        except SimulationError as exc:
            return TestCaseResult(self.name, Verdict.ERROR, str(exc))
        if not scenario_result.passed:
            return TestCaseResult(self.name, Verdict.FAIL,
                                  scenario_result.explain(),
                                  scenario_result)
        if self.post_condition is not None:
            try:
                if not self.post_condition(collaboration):
                    return TestCaseResult(self.name, Verdict.FAIL,
                                          "post-condition failed",
                                          scenario_result)
            except Exception as exc:          # assertion code crashed
                return TestCaseResult(self.name, Verdict.ERROR, str(exc),
                                      scenario_result)
        return TestCaseResult(self.name, Verdict.PASS, "",
                              scenario_result)


class TestContext:
    """A «TestContext»: owns test cases and a SUT factory."""

    __test__ = False          # not a pytest class despite the UTP name

    def __init__(self, name: str,
                 sut_factory: Callable[[], Collaboration], *,
                 purpose: str = ""):
        self.name = name
        self.sut_factory = sut_factory
        self.purpose = purpose
        self.test_cases: List[TestCase] = []

    def add(self, test_case: TestCase) -> TestCase:
        self.test_cases.append(test_case)
        return test_case

    def add_scenario(self, name: str, scenario: Scenario,
                     post_condition: Optional[Callable[[Collaboration],
                                                       bool]] = None
                     ) -> TestCase:
        return self.add(TestCase(name, scenario,
                                 post_condition=post_condition))

    def run_all(self) -> TestReport:
        """Each test case gets a *fresh* SUT — no shared state."""
        report = TestReport(self.name)
        for test_case in self.test_cases:
            report.results.append(test_case.run(self.sut_factory()))
        return report
