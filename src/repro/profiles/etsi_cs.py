"""UML for Communicating Systems (ETSI-style) — protocol stack modelling.

Stereotypes for protocol layers, service access points (SAPs) and PDUs,
plus a builder that assembles an N-layer protocol stack PIM: each layer is
an active class with a state machine implementing a send/confirm
handshake toward its lower layer and indication delivery toward its upper
layer.  The stack is the workload for the protocol example and several
experiments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..mof import MInteger, MString
from ..uml import Clazz, ModelFactory, Package, StateMachine
from .base import Profile

ETSI_CS = Profile("CommunicatingSystems",
                  "UML for Communicating Systems (ETSI-style)")

PROTOCOL_LAYER = ETSI_CS.define("ProtocolLayer", Clazz) \
    .tag("layer_index", MInteger, required=True) \
    .tag("service_name", MString, "")
SAP = ETSI_CS.define("SAP", Clazz) \
    .tag("primitive_prefix", MString, "")
PDU = ETSI_CS.define("PDU", Clazz) \
    .tag("header_bytes", MInteger, 4)


def _layer_state_machine(name: str, has_lower: bool) -> StateMachine:
    """The per-layer behaviour.

    Events: ``tx_request`` (from upper layer / user), ``tx_confirm`` (from
    lower layer), ``rx_indication`` (from lower layer, travels up).
    A layer with no lower neighbour confirms immediately (it *is* the
    medium access).
    """
    machine = StateMachine(name=f"{name}SM")
    region = machine.main_region()
    initial = region.add_initial()
    idle = region.add_state("Idle")
    region.add_transition(initial, idle)
    if has_lower:
        sending = region.add_state("Sending")
        region.add_transition(
            idle, sending, trigger="tx_request",
            effect="tx_count := tx_count + 1; send lower.tx_request()")
        region.add_transition(
            sending, idle, trigger="tx_confirm",
            effect="send upper.tx_confirm()")
        region.add_transition(
            idle, idle, trigger="rx_indication",
            effect="rx_count := rx_count + 1; send upper.rx_indication()")
    else:
        # bottom layer: the medium loops a request straight into delivery
        region.add_transition(
            idle, idle, trigger="tx_request",
            effect="tx_count := tx_count + 1; "
                   "send upper.tx_confirm(); send upper.rx_indication()")
    return machine


def build_protocol_stack(factory: ModelFactory,
                         layer_names: List[str], *,
                         package_name: str = "stack") -> List[Clazz]:
    """Create an N-layer stack PIM inside *factory*'s model.

    ``layer_names`` are ordered top (application-facing) to bottom
    (medium).  Returns the layer classes, same order.
    """
    if not layer_names:
        raise ValueError("a protocol stack needs at least one layer")
    package = factory.package(package_name)
    layers: List[Clazz] = []
    for index, name in enumerate(layer_names):
        layer = factory.clazz(
            name, package=package,
            attrs={"tx_count": "Integer", "rx_count": "Integer"},
            is_active=True)
        PROTOCOL_LAYER.apply(layer,
                             layer_index=len(layer_names) - index,
                             service_name=f"{name}_service")
        is_bottom = index == len(layer_names) - 1
        machine = _layer_state_machine(name, has_lower=not is_bottom)
        layer.owned_behaviors.append(machine)
        layer.classifier_behavior = machine
        layers.append(layer)
    for upper, lower in zip(layers, layers[1:]):
        factory.associate(upper, lower, name=f"{upper.name}_{lower.name}",
                          end_b="lower", end_a="upper",
                          navigable_b_to_a=True,
                          b_lower=1, b_upper=1, a_lower=1, a_upper=1)
    return layers


def build_pdu(factory: ModelFactory, name: str, *,
              header_bytes: int = 4,
              fields: Optional[List[Tuple[str, str]]] = None,
              package: Optional[Package] = None) -> Clazz:
    """Create a «PDU» value class with the given (name, type) fields."""
    pdu = factory.clazz(name, package=package,
                        attrs=dict(fields or [("payload", "String")]))
    PDU.apply(pdu, header_bytes=header_bytes)
    return pdu


def stack_layers(root: Package) -> List[Clazz]:
    """The «ProtocolLayer» classes under *root*, top first."""
    from ..mof.query import instances_of
    layers = [cls for cls in instances_of(root, Clazz)
              if PROTOCOL_LAYER.is_applied_to(cls)]
    return sorted(layers,
                  key=lambda c: -PROTOCOL_LAYER.value_on(c, "layer_index"))
