"""``repro.profiles`` — UML profiles with analyses behind them.

* :mod:`base` — profile/stereotype/tagged-value machinery;
* :mod:`spt` — Schedulability, Performance & Time (RM priorities,
  utilisation bound, response-time analysis);
* :mod:`qos` — QoS & Fault Tolerance (contracts, replication
  availability, latency estimation);
* :mod:`testing` — UML Testing Profile (test contexts, verdicts, arbiter);
* :mod:`sysml` — SysML-lite (blocks, requirements, traceability matrix);
* :mod:`etsi_cs` — Communicating Systems (protocol stack builders).
"""

from .base import (
    Profile,
    ProfileError,
    Stereotype,
    StereotypeApplication,
    TagDefinition,
    applications_of,
    has_stereotype,
    stereotypes_of,
)
from .etsi_cs import (
    ETSI_CS,
    PDU,
    PROTOCOL_LAYER,
    SAP,
    build_pdu,
    build_protocol_stack,
    stack_layers,
)
from .qos import (
    ContractCheck,
    FT_REPLICATED,
    QOS_FT,
    QOS_OFFERED,
    QOS_REQUIRED,
    QoSContract,
    availability_with_replication,
    check_contracts,
    effective_availability,
    estimate_path_latency_ms,
)
from .spt import (
    SA_RESOURCE,
    SA_SCHEDULABLE,
    SA_SCHEDULER,
    SPT,
    SchedulabilityReport,
    Task,
    TaskAnalysis,
    analyze_model,
    analyze_tasks,
    liu_layland_bound,
    rate_monotonic_priorities,
    response_time_analysis,
    tasks_from_model,
    total_utilization,
    utilization_test,
)
from .sysml import (
    BLOCK,
    DERIVE_REQT,
    REQUIREMENT,
    RequirementRow,
    SATISFY,
    SYSML,
    TraceabilityMatrix,
    VERIFY,
    add_requirement,
    derive,
    satisfy,
    traceability_matrix,
    verify,
)
from .testing import (
    SUT,
    TEST_CASE,
    TEST_CONTEXT,
    TESTING,
    TestCase,
    TestCaseResult,
    TestContext,
    TestReport,
    Verdict,
    worst,
)

__all__ = [
    "BLOCK", "ContractCheck", "DERIVE_REQT", "ETSI_CS", "FT_REPLICATED",
    "PDU", "PROTOCOL_LAYER", "Profile", "ProfileError", "QOS_FT",
    "QOS_OFFERED", "QOS_REQUIRED", "QoSContract", "REQUIREMENT",
    "RequirementRow", "SAP", "SATISFY", "SA_RESOURCE", "SA_SCHEDULABLE",
    "SA_SCHEDULER", "SPT", "SUT", "SYSML", "SchedulabilityReport",
    "Stereotype", "StereotypeApplication", "TEST_CASE", "TEST_CONTEXT",
    "TESTING", "TagDefinition", "Task", "TaskAnalysis", "TestCase",
    "TestCaseResult", "TestContext", "TestReport", "TraceabilityMatrix",
    "VERIFY", "Verdict", "add_requirement", "analyze_model",
    "analyze_tasks", "applications_of", "availability_with_replication",
    "build_pdu", "build_protocol_stack", "check_contracts", "derive",
    "effective_availability", "estimate_path_latency_ms", "has_stereotype",
    "liu_layland_bound", "rate_monotonic_priorities",
    "response_time_analysis", "satisfy", "stack_layers", "stereotypes_of",
    "tasks_from_model", "total_utilization", "traceability_matrix",
    "utilization_test", "verify", "worst",
]
