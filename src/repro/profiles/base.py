"""UML profile machinery: profiles, stereotypes, tagged values.

A :class:`Stereotype` extends a metaclass and declares typed tags; applying
it to a model element attaches a validated
:class:`StereotypeApplication`.  Applications ride on the element (in a
side slot, not a metamodel feature) so that profiles extend models without
touching the metamodel — exactly UML's lightweight extension mechanism.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from ..mof.errors import MofError
from ..mof.kernel import Element, MetaClass, MetaEnum
from ..mof.types import PrimitiveType

_SLOT = "_stereotype_applications"


class ProfileError(MofError):
    """Stereotype misuse: wrong base metaclass, unknown/badly typed tag."""


class TagDefinition:
    """One typed tag of a stereotype."""

    def __init__(self, name: str, type: Union[PrimitiveType, MetaEnum],
                 default: Any = None, required: bool = False):
        self.name = name
        self.type = type
        self.default = default
        self.required = required

    def check(self, value: Any) -> None:
        if not self.type.conforms(value):
            raise ProfileError(
                f"tag '{self.name}' expects {self.type.name}, "
                f"got {value!r}")

    def __repr__(self) -> str:
        return f"<Tag {self.name}: {self.type.name}>"


class Stereotype:
    """An extension of a metaclass, with tag definitions."""

    def __init__(self, name: str, extends: Union[MetaClass, type],
                 profile: Optional["Profile"] = None):
        self.name = name
        self.extends: MetaClass = (extends if isinstance(extends, MetaClass)
                                   else extends._meta)
        self.tags: Dict[str, TagDefinition] = {}
        self.profile = profile
        if profile is not None:
            profile.register(self)

    def tag(self, name: str, type: Union[PrimitiveType, MetaEnum],
            default: Any = None, required: bool = False) -> "Stereotype":
        if name in self.tags:
            raise ProfileError(f"stereotype '{self.name}' already has tag "
                               f"'{name}'")
        self.tags[name] = TagDefinition(name, type, default, required)
        return self

    # -- application -----------------------------------------------------

    def apply(self, element: Element, **values: Any
              ) -> "StereotypeApplication":
        """Apply to *element* with the given tagged values."""
        if not element.meta.conforms_to(self.extends):
            raise ProfileError(
                f"stereotype '{self.name}' extends "
                f"'{self.extends.name}'; cannot apply to "
                f"'{element.meta.name}'")
        tagged: Dict[str, Any] = {}
        for tag_name, definition in self.tags.items():
            if tag_name in values:
                definition.check(values[tag_name])
                tagged[tag_name] = values[tag_name]
            elif definition.default is not None:
                tagged[tag_name] = definition.default
            elif definition.required:
                raise ProfileError(
                    f"stereotype '{self.name}' requires tag "
                    f"'{tag_name}'")
        unknown = set(values) - set(self.tags)
        if unknown:
            raise ProfileError(
                f"stereotype '{self.name}' has no tag(s) "
                f"{sorted(unknown)}")
        application = StereotypeApplication(element, self, tagged)
        applications = getattr(element, _SLOT, None)
        if applications is None:
            applications = []
            object.__setattr__(element, _SLOT, applications)
        applications.append(application)
        return application

    def is_applied_to(self, element: Element) -> bool:
        return any(app.stereotype is self
                   for app in applications_of(element))

    def value_on(self, element: Element, tag_name: str,
                 default: Any = None) -> Any:
        for app in applications_of(element):
            if app.stereotype is self:
                return app.values.get(tag_name, default)
        return default

    def __repr__(self) -> str:
        return f"<Stereotype «{self.name}» extends {self.extends.name}>"


class StereotypeApplication:
    """One application of a stereotype to an element."""

    def __init__(self, element: Element, stereotype: Stereotype,
                 values: Dict[str, Any]):
        self.element = element
        self.stereotype = stereotype
        self.values = values

    def __getitem__(self, tag_name: str) -> Any:
        return self.values[tag_name]

    def get(self, tag_name: str, default: Any = None) -> Any:
        return self.values.get(tag_name, default)

    def set(self, tag_name: str, value: Any) -> None:
        definition = self.stereotype.tags.get(tag_name)
        if definition is None:
            raise ProfileError(
                f"stereotype '{self.stereotype.name}' has no tag "
                f"'{tag_name}'")
        definition.check(value)
        self.values[tag_name] = value

    def __repr__(self) -> str:
        return (f"<«{self.stereotype.name}» on {self.element!r} "
                f"{self.values}>")


class Profile:
    """A named collection of stereotypes (one per UML profile spec)."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.stereotypes: Dict[str, Stereotype] = {}

    def register(self, stereotype: Stereotype) -> None:
        if stereotype.name in self.stereotypes:
            raise ProfileError(
                f"profile '{self.name}' already defines "
                f"'{stereotype.name}'")
        self.stereotypes[stereotype.name] = stereotype
        stereotype.profile = self

    def stereotype(self, name: str) -> Stereotype:
        try:
            return self.stereotypes[name]
        except KeyError:
            raise ProfileError(f"profile '{self.name}' has no stereotype "
                               f"{name!r}") from None

    def define(self, name: str, extends: Union[MetaClass, type]
               ) -> Stereotype:
        return Stereotype(name, extends, profile=self)

    def applied_elements(self, root: Element,
                         stereotype_name: str) -> List[Element]:
        """Elements under *root* carrying the named stereotype."""
        stereotype = self.stereotype(stereotype_name)
        out: List[Element] = []
        for element in [root] + list(root.all_contents()):
            if stereotype.is_applied_to(element):
                out.append(element)
        return out

    def __repr__(self) -> str:
        return f"<Profile {self.name}: {sorted(self.stereotypes)}>"


def applications_of(element: Element) -> List[StereotypeApplication]:
    """All stereotype applications on *element*."""
    return list(getattr(element, _SLOT, []) or [])


def stereotypes_of(element: Element) -> List[Stereotype]:
    return [app.stereotype for app in applications_of(element)]


def has_stereotype(element: Element, name: str) -> bool:
    return any(s.name == name for s in stereotypes_of(element))
