"""A SysML-lite profile: blocks, value properties, requirements and
traceability.

Covers the slice of SysML the paper's systems-engineering argument needs:
requirements as model elements, «satisfy»/«verify»/«deriveReqt» links, and
a traceability matrix with coverage figures — i.e. requirements that can
be *tested for coverage*, not just listed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mof import MString
from ..uml import Clazz, Dependency, NamedElement, Package
from ..mof.query import instances_of
from .base import Profile, applications_of

SYSML = Profile("SysML", "Systems Modeling Language (lite)")

BLOCK = SYSML.define("Block", Clazz)
VALUE_TYPE = SYSML.define("ValueType", Clazz)
REQUIREMENT = SYSML.define("Requirement", Clazz) \
    .tag("req_id", MString, required=True) \
    .tag("text", MString, required=True) \
    .tag("risk", MString, "medium")
SATISFY = SYSML.define("Satisfy", Dependency)
VERIFY = SYSML.define("Verify", Dependency)
DERIVE_REQT = SYSML.define("DeriveReqt", Dependency)


def add_requirement(package: Package, name: str, req_id: str,
                    text: str, risk: str = "medium") -> Clazz:
    """Create a «Requirement» class inside *package*."""
    requirement = Clazz(name=name, is_abstract=True)
    package.add(requirement)
    REQUIREMENT.apply(requirement, req_id=req_id, text=text, risk=risk)
    return requirement


def _stereotyped_dependency(package: Package, stereotype,
                            client: NamedElement,
                            supplier: NamedElement) -> Dependency:
    dependency = Dependency(name=f"{client.name}_{supplier.name}",
                            client=client, supplier=supplier)
    package.add(dependency)
    stereotype.apply(dependency)
    return dependency


def satisfy(package: Package, element: NamedElement,
            requirement: Clazz) -> Dependency:
    """Record that *element* satisfies *requirement*."""
    return _stereotyped_dependency(package, SATISFY, element, requirement)


def verify(package: Package, test_element: NamedElement,
           requirement: Clazz) -> Dependency:
    """Record that *test_element* verifies *requirement*."""
    return _stereotyped_dependency(package, VERIFY, test_element,
                                   requirement)


def derive(package: Package, derived: Clazz, source: Clazz) -> Dependency:
    """Record that *derived* is derived from *source* requirement."""
    return _stereotyped_dependency(package, DERIVE_REQT, derived, source)


@dataclass
class RequirementRow:
    req_id: str
    name: str
    text: str
    satisfied_by: List[str] = field(default_factory=list)
    verified_by: List[str] = field(default_factory=list)
    derived_from: List[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return bool(self.satisfied_by)

    @property
    def verified(self) -> bool:
        return bool(self.verified_by)


@dataclass
class TraceabilityMatrix:
    rows: List[RequirementRow] = field(default_factory=list)

    def row(self, req_id: str) -> RequirementRow:
        for row in self.rows:
            if row.req_id == req_id:
                return row
        raise KeyError(req_id)

    @property
    def satisfaction_coverage(self) -> float:
        if not self.rows:
            return 1.0
        return sum(1 for r in self.rows if r.satisfied) / len(self.rows)

    @property
    def verification_coverage(self) -> float:
        if not self.rows:
            return 1.0
        return sum(1 for r in self.rows if r.verified) / len(self.rows)

    def unsatisfied(self) -> List[RequirementRow]:
        return [r for r in self.rows if not r.satisfied]

    def unverified(self) -> List[RequirementRow]:
        return [r for r in self.rows if not r.verified]

    def summary(self) -> str:
        return (f"requirements={len(self.rows)} "
                f"satisfied={self.satisfaction_coverage:.0%} "
                f"verified={self.verification_coverage:.0%}")


def traceability_matrix(root: Package) -> TraceabilityMatrix:
    """Build the matrix from «Requirement» classes and stereotyped
    dependencies under *root*."""
    matrix = TraceabilityMatrix()
    requirement_rows: Dict[int, RequirementRow] = {}
    for cls in instances_of(root, Clazz):
        if REQUIREMENT.is_applied_to(cls):
            row = RequirementRow(
                req_id=REQUIREMENT.value_on(cls, "req_id"),
                name=cls.name,
                text=REQUIREMENT.value_on(cls, "text"))
            requirement_rows[id(cls)] = row
            matrix.rows.append(row)
    for dependency in instances_of(root, Dependency):
        supplier = dependency.supplier
        client = dependency.client
        if supplier is None or client is None:
            continue
        row = requirement_rows.get(id(supplier))
        if row is None:
            continue
        if SATISFY.is_applied_to(dependency):
            row.satisfied_by.append(client.name)
        elif VERIFY.is_applied_to(dependency):
            row.verified_by.append(client.name)
        elif DERIVE_REQT.is_applied_to(dependency):
            client_row = requirement_rows.get(id(client))
            if client_row is not None:
                client_row.derived_from.append(supplier.name)
    return matrix
