"""The QoS & Fault Tolerance profile — contracts that can be *evaluated*.

Stereotypes mark classes/associations with offered or required QoS
characteristics (latency, throughput, reliability, availability) and
fault-tolerance policies (replication).  The functions below check
offered-vs-required contract conformance statically, estimate end-to-end
latency over a platform's communication mechanisms, and compute
availability under replication — so QoS annotations are testable model
content, not decoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..mof import MInteger, MReal, MString
from ..platforms.base import PlatformModel
from ..uml import Association, Clazz, Package
from ..mof.query import instances_of
from .base import Profile

QOS_FT = Profile("QoSFT", "Quality of Service and Fault Tolerance")

QOS_OFFERED = QOS_FT.define("QoSOffered", Clazz) \
    .tag("latency_ms", MReal) \
    .tag("throughput_ops", MReal) \
    .tag("reliability", MReal, 1.0) \
    .tag("availability", MReal, 1.0)

QOS_REQUIRED = QOS_FT.define("QoSRequired", Clazz) \
    .tag("latency_ms", MReal) \
    .tag("throughput_ops", MReal) \
    .tag("reliability", MReal) \
    .tag("availability", MReal)

FT_REPLICATED = QOS_FT.define("FTReplicated", Clazz) \
    .tag("replicas", MInteger, 2) \
    .tag("style", MString, "hot")        # hot | warm | cold


@dataclass
class QoSContract:
    """A comparable bundle of QoS figures.

    ``latency_ms``: smaller is better; ``throughput_ops``, ``reliability``,
    ``availability``: larger is better.  ``None`` means unconstrained /
    unspecified.
    """

    latency_ms: Optional[float] = None
    throughput_ops: Optional[float] = None
    reliability: Optional[float] = None
    availability: Optional[float] = None

    def satisfies(self, required: "QoSContract") -> bool:
        return not self.violations(required)

    def violations(self, required: "QoSContract") -> List[str]:
        """Which required figures this offered contract fails."""
        problems: List[str] = []
        if required.latency_ms is not None:
            if self.latency_ms is None or \
                    self.latency_ms > required.latency_ms:
                problems.append(
                    f"latency {self.latency_ms} > {required.latency_ms}")
        for figure in ("throughput_ops", "reliability", "availability"):
            wanted = getattr(required, figure)
            if wanted is None:
                continue
            offered = getattr(self, figure)
            if offered is None or offered < wanted:
                problems.append(f"{figure} {offered} < {wanted}")
        return problems

    @classmethod
    def offered_on(cls, element) -> Optional["QoSContract"]:
        if not QOS_OFFERED.is_applied_to(element):
            return None
        return cls(
            latency_ms=QOS_OFFERED.value_on(element, "latency_ms"),
            throughput_ops=QOS_OFFERED.value_on(element, "throughput_ops"),
            reliability=QOS_OFFERED.value_on(element, "reliability"),
            availability=QOS_OFFERED.value_on(element, "availability"))

    @classmethod
    def required_on(cls, element) -> Optional["QoSContract"]:
        if not QOS_REQUIRED.is_applied_to(element):
            return None
        return cls(
            latency_ms=QOS_REQUIRED.value_on(element, "latency_ms"),
            throughput_ops=QOS_REQUIRED.value_on(element, "throughput_ops"),
            reliability=QOS_REQUIRED.value_on(element, "reliability"),
            availability=QOS_REQUIRED.value_on(element, "availability"))


@dataclass
class ContractCheck:
    client: str
    supplier: str
    passed: bool
    problems: List[str] = field(default_factory=list)


def check_contracts(root: Package) -> List[ContractCheck]:
    """For every association whose ends join a «QoSRequired» client to a
    «QoSOffered» supplier, check the offered contract against the
    required one."""
    checks: List[ContractCheck] = []
    for association in instances_of(root, Association):
        ends = list(association.member_ends)
        if len(ends) != 2:
            continue
        types = [end.type for end in ends]
        if not all(isinstance(t, Clazz) for t in types):
            continue
        for client, supplier in (types, list(reversed(types))):
            required = QoSContract.required_on(client)
            offered = QoSContract.offered_on(supplier)
            if required is None or offered is None:
                continue
            problems = offered.violations(required)
            checks.append(ContractCheck(client.name, supplier.name,
                                        not problems, problems))
    return checks


def availability_with_replication(base_availability: float,
                                  replicas: int,
                                  style: str = "hot") -> float:
    """Availability of a replicated service.

    hot: all replicas active, fails only if all fail;
    warm: standby switch-over succeeds with 0.95 probability per replica;
    cold: switch-over succeeds with 0.8 probability per replica.
    """
    if not 0.0 <= base_availability <= 1.0:
        raise ValueError("availability must be within [0, 1]")
    if replicas < 1:
        raise ValueError("need at least one replica")
    failure = 1.0 - base_availability
    switch = {"hot": 1.0, "warm": 0.95, "cold": 0.8}.get(style)
    if switch is None:
        raise ValueError(f"unknown replication style {style!r}")
    # A standby replica saves the service only if the switch-over works
    # AND the replica itself is up: effective per-replica failure is
    # 1 - switch * (1 - failure); hot replicas have perfect switch-over.
    effective_failure = 1.0 - switch * (1.0 - failure)
    unavailable = failure * (effective_failure ** (replicas - 1))
    return 1.0 - min(unavailable, 1.0)


def effective_availability(cls: Clazz) -> Optional[float]:
    """Offered availability after applying the class's «FTReplicated»
    policy, if any."""
    offered = QoSContract.offered_on(cls)
    if offered is None or offered.availability is None:
        return None
    if not FT_REPLICATED.is_applied_to(cls):
        return offered.availability
    replicas = FT_REPLICATED.value_on(cls, "replicas", 2)
    style = FT_REPLICATED.value_on(cls, "style", "hot")
    return availability_with_replication(offered.availability, replicas,
                                         style)


def estimate_path_latency_ms(platform: PlatformModel, hops: int, *,
                             comm_kind: str = "queue",
                             per_hop_processing_ms: float = 0.0) -> float:
    """End-to-end latency estimate over *hops* platform communications."""
    comm = platform.comm_for(comm_kind)
    comm_latency_ms = (comm.latency_us / 1000.0) if comm is not None else 0.0
    return hops * (comm_latency_ms + per_hop_processing_ms)
