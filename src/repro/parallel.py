"""``repro.parallel`` — multi-core sharded full-pass checking.

A full :meth:`repro.session.Session.check` walks every element several
times (structural features, registered invariants, detached constraint
sets).  Those walks are embarrassingly parallel over the element list —
but diagnostics must come back *in the sequential report order*, and
the notification/transaction/index protocols are process-local state
that must never be touched from another process.

So the sharding protocol is:

* the parent flattens the check into **partitions**: the per-root
  preorder element list, cut into one contiguous slice per worker, plus
  (for the ``constraint`` family) the per-invariant candidate lists,
  each cut the same way;
* workers are ``fork()`` children (:func:`multiprocessing.get_context`
  with the ``fork`` start method), so they inherit the live object
  graph read-only and nothing is ever pickled *into* a worker — on
  platforms without ``fork`` the caller falls back to the sequential
  path;
* each worker checks only its slices and sends back plain-data
  **diagnostic records** (:func:`diagnostic_to_record`) over its own
  pipe, then ``os._exit``\\ s without running any teardown;
* the parent concatenates the records slice-by-slice in worker order —
  contiguous slices make that exactly the sequential order — and
  rebuilds :class:`~repro.mof.validate.Diagnostic` values
  (:func:`record_to_diagnostic`) whose ``str``/``render``/JSON forms
  are byte-identical to the sequential run's;
* a worker that dies without reporting (the ``parallel.worker`` chaos
  site, an OOM kill, a crash) degrades, not fails: the parent re-checks
  that worker's partition in-process and emits a
  :class:`RuntimeWarning`.

Because workers only ever *read* the model, the parent's model is
untouched afterwards: columns, extent index, incremental engines and
transactions all keep their state, and parallel runs compose with the
incremental engine exactly like any other full pass.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import faults as _faults
from .mof.kernel import Element
from .mof.validate import (
    Diagnostic,
    Severity,
    ValidationReport,
    _check_invariants,
    validate_element,
)
from .obs import metrics as _metrics
from .obs import trace as _trace
from .ocl.errors import OclError

#: The Session families this module can shard.  The remaining families
#: (``wellformed``, ``lint``, ``consistency``) run whole-model passes
#: with cross-element state and stay in the parent.
SHARDABLE_FAMILIES: Tuple[str, ...] = ("structural", "invariant",
                                       "constraint")


def available_workers() -> int:
    """How many workers this process can actually run concurrently
    (the scheduler affinity mask when available, else the CPU count)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):                 # pragma: no cover
        return os.cpu_count() or 1


def _fork_context() -> Optional[Any]:
    """The ``fork`` multiprocessing context, or ``None`` where the
    platform cannot fork (then callers run sequentially)."""
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:                                # pragma: no cover
        return None


# ---------------------------------------------------------------------------
# Diagnostic records: the wire form of a Diagnostic
#
# Workers cannot send Diagnostic objects — element references don't
# survive pickling (and must not: the parent's graph is the only live
# one).  A record carries every piece of a diagnostic's *rendered*
# identity instead; the rebuilt Diagnostic holds lightweight proxies
# whose repr()/name reproduce the original strings exactly.
# ---------------------------------------------------------------------------

class _ReprToken:
    """Stands in for a remote element: ``repr()`` replays the original."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text

    def __repr__(self) -> str:
        return self.text


class _FeatureToken:
    """Stands in for a remote feature: only ``.name`` is ever rendered."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:                        # pragma: no cover
        return f"<feature {self.name}>"


def diagnostic_to_record(diagnostic: Diagnostic) -> Dict[str, Any]:
    """The plain-data form of *diagnostic* a worker ships to the parent."""
    record: Dict[str, Any] = {
        "severity": diagnostic.severity.value,
        "code": diagnostic.code,
        "message": diagnostic.message,
        "path": diagnostic.path,
        "hint": diagnostic.hint,
        "element": repr(diagnostic.element),
    }
    if diagnostic.feature is not None:
        record["feature"] = diagnostic.feature.name
    if diagnostic.related is not None:
        record["related"] = repr(diagnostic.related)
        record["related_path"] = diagnostic.related_path
    return record


def record_to_diagnostic(record: Dict[str, Any]) -> Diagnostic:
    """Rebuild a :class:`Diagnostic` whose ``str()``, ``render()`` and
    JSON serialization are byte-identical to the worker-side original."""
    related = record.get("related")
    feature = record.get("feature")
    return Diagnostic(
        severity=Severity(record["severity"]),
        element=_ReprToken(record["element"]),
        message=record["message"],
        feature=_FeatureToken(feature) if feature is not None else None,
        code=record["code"],
        path=record["path"],
        hint=record["hint"],
        related=_ReprToken(related) if related is not None else None,
        related_path=record.get("related_path", ""),
    )


# ---------------------------------------------------------------------------
# Partitioning and the per-partition work function
# ---------------------------------------------------------------------------

#: One constraint-family unit: an invariant plus its full candidate
#: list, in the exact order ``ConstraintSet.evaluate`` would iterate.
ConstraintGroup = Tuple[Any, List[Element]]


def _slice_bounds(total: int, workers: int) -> List[Tuple[int, int]]:
    """*workers* contiguous ``(start, stop)`` ranges covering ``total``
    items, sizes differing by at most one."""
    base, extra = divmod(total, workers)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(workers):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _constraint_records(invariant: Any,
                        candidates: Sequence[Element]) -> List[Dict[str, Any]]:
    # mirrors the diagnostic construction in ConstraintSet.evaluate —
    # OclError becomes an invariant-error record, any other exception
    # propagates (crashing the worker, which the parent degrades from,
    # re-raising on the in-process re-check)
    report = ValidationReport()
    for element in candidates:
        try:
            ok = invariant.holds(element)
        except OclError as exc:
            report.add(Severity.ERROR, element,
                       f"invariant '{invariant.name}' raised: {exc}",
                       code="invariant-error")
            continue
        if not ok:
            report.add(invariant.severity, element,
                       f"invariant '{invariant.name}' violated"
                       + (f": {invariant.message}"
                          if invariant.message else ""),
                       code="invariant")
    return [diagnostic_to_record(d) for d in report.diagnostics]


def _check_partition(families: Sequence[str], elements: Sequence[Element],
                     groups: Sequence[Tuple[Any, Sequence[Element]]]
                     ) -> Dict[str, Any]:
    """Check one partition; runs inside a worker, or in the parent when
    degrading.  *groups* carries each constraint group already reduced
    to this partition's candidate slice.  The internal ``tree`` family
    is ``validate_tree``'s per-element interleaving of structure and
    invariants (used by :func:`parallel_validate_tree`)."""
    out: Dict[str, Any] = {}
    if "structural" in families:
        records: List[Dict[str, Any]] = []
        for element in elements:
            records.extend(
                diagnostic_to_record(d) for d in
                validate_element(element, check_invariants=False)
                .diagnostics)
        out["structural"] = records
    if "invariant" in families:
        report = ValidationReport()
        for element in elements:
            _check_invariants(element, report)
        out["invariant"] = [diagnostic_to_record(d)
                            for d in report.diagnostics]
    if "tree" in families:
        records = []
        for element in elements:
            records.extend(
                diagnostic_to_record(d) for d in
                validate_element(element, check_invariants=True)
                .diagnostics)
        out["tree"] = records
    if "constraint" in families:
        out["constraint"] = [_constraint_records(invariant, candidates)
                             for invariant, candidates in groups]
    return out


# ---------------------------------------------------------------------------
# The fan-out
# ---------------------------------------------------------------------------

def _fan_out(roots: Sequence[Element], families: Sequence[str],
             constraint_groups: Sequence[ConstraintGroup],
             workers: int) -> Optional[Dict[str, List[Diagnostic]]]:
    from .mof import kernel as _kernel
    if _kernel._READ_HOOK is not None:
        # dependency tracking must observe every per-element read in
        # this process; a forked worker's reads are invisible to it
        return None
    elements: List[Element] = []
    for root in roots:
        elements.append(root)
        elements.extend(root.all_contents())
    workers = min(int(workers), len(elements) or 1)
    if workers <= 1:
        return None
    ctx = _fork_context()
    if ctx is None:                                   # pragma: no cover
        return None

    element_bounds = _slice_bounds(len(elements), workers)
    group_bounds = [_slice_bounds(len(candidates), workers)
                    for _, candidates in constraint_groups]

    def partition(index: int) -> Tuple[List[Element],
                                       List[Tuple[Any, Sequence[Element]]]]:
        start, stop = element_bounds[index]
        sliced_groups = [
            (invariant, candidates[bounds[index][0]:bounds[index][1]])
            for (invariant, candidates), bounds
            in zip(constraint_groups, group_bounds)]
        return elements[start:stop], sliced_groups

    def worker_body(sender: Any, index: int, doomed: bool) -> None:
        # forked child: inherits the graph; must never run the parent's
        # atexit/teardown machinery, hence os._exit on every path
        status = 1
        try:
            if doomed:
                return            # die unreported: parent degrades
            part_elements, part_groups = partition(index)
            sender.send(
                _check_partition(families, part_elements, part_groups))
            sender.close()
            status = 0
        finally:
            os._exit(status)

    procs: List[Tuple[Any, Any]] = []
    span = (_trace.span("parallel.check", workers=str(workers),
                        families=",".join(families))
            if _trace.ON else _trace.NULL_SPAN)
    with span:
        for index in range(workers):
            # the chaos site fires in the parent so ordinals stay
            # deterministic (one firing per worker launch, in launch
            # order); a scheduled fault dooms that worker to die
            # unreported, exercising the degradation path below
            doomed = False
            if _faults.ACTIVE is not None:
                try:
                    _faults.probe("parallel.worker")
                except _faults.InjectedFault:
                    doomed = True
            receiver, sender = ctx.Pipe(duplex=False)
            process = ctx.Process(target=worker_body,
                                  args=(sender, index, doomed),
                                  daemon=True)
            process.start()
            sender.close()
            procs.append((process, receiver))

        merged: List[Dict[str, Any]] = []
        degraded = 0
        for index, (process, receiver) in enumerate(procs):
            try:
                payload = receiver.recv()
            except EOFError:
                payload = None
            receiver.close()
            process.join()
            if payload is None:
                degraded += 1
                warnings.warn(
                    f"parallel check worker {index} exited without "
                    f"reporting; re-checking its partition "
                    f"single-process", RuntimeWarning, stacklevel=3)
                part_elements, part_groups = partition(index)
                payload = _check_partition(families, part_elements,
                                           part_groups)
            merged.append(payload)

    if _trace.ON:
        _metrics.REGISTRY.counter(
            "parallel.checks", help="sharded full-pass check runs",
            workers=str(workers)).inc()
        if degraded:
            _metrics.REGISTRY.counter(
                "parallel.worker_degraded",
                help="dead workers degraded to in-process re-checks"
            ).inc(degraded)

    out: Dict[str, List[Diagnostic]] = {}
    for family in families:
        if family == "constraint":
            records = [record
                       for group_index in range(len(constraint_groups))
                       for payload in merged
                       for record in payload["constraint"][group_index]]
        else:
            records = [record for payload in merged
                       for record in payload[family]]
        out[family] = [record_to_diagnostic(r) for r in records]
    return out


def parallel_check(roots: Sequence[Element], families: Sequence[str],
                   constraint_groups: Sequence[ConstraintGroup] = (), *,
                   workers: int) -> Optional[Dict[str, List[Diagnostic]]]:
    """Run the shardable *families* over *roots* with *workers* forked
    processes; return ``{family: diagnostics}`` in sequential report
    order — or ``None`` when sharding isn't possible here (one worker,
    a fork-less platform, a near-empty model) and the caller should use
    the sequential path.

    Dead workers degrade: their partitions are re-checked in-process
    and a :class:`RuntimeWarning` is emitted.
    """
    families = [f for f in families if f in SHARDABLE_FAMILIES]
    if not families:
        return {}
    return _fan_out(roots, families, constraint_groups, workers)


def parallel_validate_tree(root: Element, *,
                           workers: int) -> Optional[ValidationReport]:
    """A sharded ``validate_tree(root)`` — per-element interleaving of
    structural checks and invariants preserved — for the quality
    report's structural section; ``None`` when sharding isn't possible
    and the caller should validate sequentially."""
    shards = _fan_out([root], ("tree",), (), workers)
    if shards is None:
        return None
    return ValidationReport(diagnostics=shards["tree"])
