"""repro — a model-driven engineering framework.

Reproduction of *Applying UML and MDA to Real Systems Design* (Ian Oliver,
DATE 2005).  The package provides, from the bottom up:

* :mod:`repro.mof` — a MOF-style reflective metamodeling kernel (M3) with
  dynamic metamodels, validation, queries, notification and model diff;
* :mod:`repro.uml` — a UML metamodel subset defined on that kernel (M2):
  classes/associations, state machines (incl. choice pseudostates and
  internal transitions), activities, interactions, use cases, components
  and deployment, plus well-formedness rules and DOT diagram export;
* :mod:`repro.ocl` — an OCL-like constraint and query language with
  tuples, invariants and a round-tripping unparser;
* :mod:`repro.xmi` — XMI-style XML and JSON model interchange (stereotype
  applications included);
* :mod:`repro.transform` — the rule-based two-phase transformation engine
  with traces, chains, refinement checking, state-machine flattening and
  the classic UML->relational mapping;
* :mod:`repro.platforms` — platform description models (POSIX RTOS,
  bare-metal hardware, message-bus middleware), the generic
  platform-parametric PIM->PSM engine, deployment allocation and
  memory-footprint analysis;
* :mod:`repro.codegen` — the model compiler: PSM -> code-model IR -> C /
  Java-like / SystemC-like text (state machines and activities);
* :mod:`repro.validation` — model testing: metrics, state-machine /
  activity / timed simulation, scenario conformance, explicit-state
  model checking, animation, interaction mining, model-based test
  generation and the quality report;
* :mod:`repro.profiles` — UML profiles with analyses: SPT schedulability,
  QoS & fault tolerance, Testing, SysML-lite, ETSI communicating systems;
* :mod:`repro.method` — methodology support: abstraction levels,
  separation-of-concerns checking, gated development processes;
* :mod:`repro.cli` — the ``python -m repro`` command-line toolchain.
"""

__version__ = "1.0.0"
