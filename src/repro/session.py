"""``repro.session`` — the unified checking/session facade.

Historically the workbench grew five separate check/watch entry points
(``mof.validate.validate_model``, ``uml.wellformed.check_model`` /
``watch_model``, ``ConstraintSet.check``/``watch``, ``lint_model`` /
``ModelLinter.watch``, ``validation.report.quality_report``) with
inconsistent signatures and severities.  :class:`Session` wraps them all
behind two verbs:

* :meth:`Session.check` — run any subset of the checker *families*
  (``structural``, ``invariant``, ``wellformed``, ``lint``,
  ``consistency``, ``constraint``) and get one merged
  :class:`CheckResult` of :class:`~repro.mof.validate.Diagnostic`
  records;
* :meth:`Session.watch` — the same subset, incrementally maintained by a
  primed :class:`~repro.incremental.IncrementalEngine`.

Each family delegates to the engine-level building block the legacy
entry point used (``validate_tree``, ``validate_invariants``,
``run_wellformed_rules``, ``ModelLinter.lint``,
``ConstraintSet.evaluate``), so results are multiset-identical to the
legacy API — the parity suite in ``tests/test_session.py`` holds that
equality over the generated model corpus.  The legacy entry points
remain importable as thin shims that emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .analysis import LintConfig, ModelLinter, RuleRegistry
from .mof.kernel import Element
from .mof.repository import Model
from .mof.validate import (
    Diagnostic,
    Severity,
    ValidationReport,
    validate_element,
    validate_invariants,
    validate_tree,
)
from .obs import metrics as _metrics
from .obs import trace as _trace

Scope = Union[Model, Element, Sequence[Element]]

#: Every checker family, in report order.  ``consistency`` is the
#: cross-diagram ``XD`` rule family (:mod:`repro.analysis.rules_consistency`).
FAMILIES: Tuple[str, ...] = (
    "structural", "invariant", "wellformed", "lint", "consistency",
    "constraint")

#: Families run by default (``constraint`` joins when the session has
#: constraint sets).
DEFAULT_FAMILIES: Tuple[str, ...] = (
    "structural", "invariant", "wellformed", "lint", "consistency")

_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


def _as_severity(severity: Union[str, Severity, None]) -> Optional[Severity]:
    if severity is None or isinstance(severity, Severity):
        return severity
    try:
        return Severity(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of "
            f"{sorted(s.value for s in Severity)}") from None


class CheckResult:
    """The merged outcome of one :meth:`Session.check` call."""

    def __init__(self, by_family: Dict[str, List[Diagnostic]]):
        self.by_family = by_family
        self.families: Tuple[str, ...] = tuple(by_family)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All diagnostics, in family order."""
        out: List[Diagnostic] = []
        for family in self.families:
            out.extend(self.by_family[family])
        return out

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        return not self.errors

    def filtered(self, severity: Union[str, Severity, None]) -> "CheckResult":
        """A copy keeping only diagnostics at or above *severity*."""
        minimum = _as_severity(severity)
        if minimum is None:
            return self
        floor = _SEVERITY_RANK[minimum]
        return CheckResult({
            family: [d for d in diagnostics
                     if _SEVERITY_RANK[d.severity] >= floor]
            for family, diagnostics in self.by_family.items()})

    def as_validation_report(self) -> ValidationReport:
        return ValidationReport(diagnostics=self.diagnostics)

    def to_json(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "families": {
                family: [_diagnostic_json(d) for d in diagnostics]
                for family, diagnostics in self.by_family.items()},
        }

    def render(self, format: str = "text") -> str:
        return render_check_document(self.to_json(), format)

    def __repr__(self) -> str:
        return (f"<CheckResult families={list(self.families)} "
                f"errors={len(self.errors)} warnings={len(self.warnings)}>")


def render_check_document(document: Dict[str, Any],
                          format: str = "text") -> str:
    """Render a :meth:`CheckResult.to_json` document.

    This is *the* diagnostic renderer: :meth:`CheckResult.render`
    delegates here, and because it works on the serialized document
    rather than live objects, a ``check`` response received over the
    model-server wire protocol renders byte-identically to a local
    ``python -m repro check`` run.
    """
    if format == "json":
        return json.dumps(document, indent=2)
    families = document.get("families", {})
    lines = [record["rendered"]
             for diagnostics in families.values()
             for record in diagnostics]
    lines.append(f"check: {document.get('errors', 0)} error(s), "
                 f"{document.get('warnings', 0)} warning(s), "
                 f"{document.get('infos', 0)} info(s) "
                 f"[{', '.join(families)}]")
    return "\n".join(lines)


def canonical_check_document(document: Dict[str, Any]) -> str:
    """One canonical byte representation of a check document.

    Sorted keys, no whitespace — two documents are semantically equal
    exactly when their canonical strings compare equal, which is how
    the server's crash-recovery verification (``repro.server``
    durability tests and the crash-recovery smoke) proves a restarted
    repository byte-identical to a shadow session that applied the same
    acknowledged edit prefix.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _diagnostic_json(diagnostic: Diagnostic) -> Dict[str, Any]:
    record = {
        "severity": diagnostic.severity.value,
        "code": diagnostic.code,
        "message": diagnostic.message,
        "path": diagnostic.path,
        "element": repr(diagnostic.element),
        "hint": diagnostic.hint,
        "rendered": diagnostic.render(),
    }
    if diagnostic.related is not None:
        record["related"] = repr(diagnostic.related)
        record["related_path"] = diagnostic.related_path
    return record


class Session:
    """One model scope plus everything needed to check it uniformly.

    *scope* is a :class:`~repro.mof.repository.Model`, a single root
    element, or a sequence of roots (same contract as the incremental
    engine).  *constraint_sets* supplies detached
    :class:`~repro.ocl.invariants.ConstraintSet` groups for the
    ``constraint`` family; *registry*/*lint_config* parameterize the
    ``lint`` family.
    """

    def __init__(self, scope: Scope, *,
                 constraint_sets: Iterable[Any] = (),
                 registry: Optional[RuleRegistry] = None,
                 lint_config: Optional[LintConfig] = None,
                 columnar: bool = False):
        from .incremental.engine import IncrementalEngine
        self.scope = scope
        self.model = IncrementalEngine._resolve_scope(scope)
        self.constraint_sets = list(constraint_sets)
        self.registry = registry
        self.lint_config = lint_config
        if columnar:
            # per-metaclass struct-of-arrays extents (repro.mof.columns):
            # allInstances-heavy OCL and the structural/invariant families
            # run over contiguous columns instead of per-object slots
            self.model.enable_columns()
        #: the :class:`~repro.generate.GenerationResult` behind this
        #: session, when it was opened via :meth:`Session.generate`
        self.generation: Optional[Any] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def load(cls, path: str, **kwargs: Any) -> "Session":
        """Open a session over a serialized model file (.xmi/.xml/.json),
        with all bundled profiles available for stereotype resolution."""
        from .cli import load_model
        return cls(load_model(path), **kwargs)

    @classmethod
    def generate(cls, package: str = "demo", *, size: int = 1000,
                 seed: int = 0, repair: bool = True,
                 **kwargs: Any) -> "Session":
        """Open a session over a freshly generated seeded model
        (:func:`repro.generate.generate_model`); by default the corpus
        is repaired to zero error diagnostics first.  The full
        :class:`~repro.generate.GenerationResult` (coverage map, repair
        report) is kept as ``session.generation``."""
        from .generate import generate_model
        result = generate_model(package, size=size, seed=seed,
                                repair=repair, **kwargs)
        session = cls(result.model)
        session.generation = result
        return session

    @property
    def roots(self) -> List[Element]:
        return list(self.model.roots)

    # -- batch checking ----------------------------------------------------

    def check(self, families: Optional[Iterable[str]] = None, *,
              severity: Union[str, Severity, None] = None,
              workers: Optional[int] = None) -> CheckResult:
        """Run the requested checker *families*; merge their diagnostics.

        With ``families=None``, runs structural, invariant, wellformed,
        lint and cross-diagram consistency checks — plus constraint
        checks when the session has constraint sets.  *severity* keeps
        only diagnostics at or above the given floor.

        ``workers=N`` (N > 1) shards the structural, invariant and
        constraint families across N forked worker processes
        (:mod:`repro.parallel`); the other families run in-process.
        The merged document is byte-identical to the sequential run.
        """
        selected = self._resolve_families(families)
        sharded: Dict[str, List[Diagnostic]] = {}
        if workers is not None and workers > 1:
            sharded = self._check_sharded(selected, workers) or {}
        by_family: Dict[str, List[Diagnostic]] = {}
        with (_trace.span("session.check", families=",".join(selected))
              if _trace.ON else _trace.NULL_SPAN):
            for family in selected:
                if family in sharded:
                    by_family[family] = sharded[family]
                    continue
                with (_trace.span(f"session.check.{family}")
                      if _trace.ON else _trace.NULL_SPAN):
                    if family == "lint":
                        by_family[family] = self._check_lint(selected)
                    else:
                        by_family[family] = getattr(
                            self, f"_check_{family}")()
        result = CheckResult(by_family)
        if _trace.ON:
            for family in selected:
                _metrics.REGISTRY.counter(
                    "session.checks", help="family runs per Session.check",
                    family=family).inc()
            for diagnostic in result.diagnostics:
                _metrics.REGISTRY.counter(
                    "session.diagnostics",
                    help="diagnostics returned, by severity",
                    severity=diagnostic.severity.value).inc()
        return result.filtered(severity)

    def _resolve_families(self,
                          families: Optional[Iterable[str]]
                          ) -> Tuple[str, ...]:
        if families is None:
            selected = DEFAULT_FAMILIES + (
                ("constraint",) if self.constraint_sets else ())
        else:
            requested = tuple(families)
            unknown = [f for f in requested if f not in FAMILIES]
            if unknown:
                raise ValueError(
                    f"unknown checker families {unknown}; "
                    f"expected a subset of {list(FAMILIES)}")
            # report in canonical order, ignoring duplicates
            selected = tuple(f for f in FAMILIES if f in requested)
        return selected

    def _active_column_store(self) -> Optional[Any]:
        """The model's column store when its fast paths may be used:
        enabled, and no dependency read hook (incremental tracking must
        observe per-element reads a bulk scan would hide)."""
        from .mof import kernel as _kernel
        store = self.model.column_store()
        if store is None or _kernel._READ_HOOK is not None:
            return None
        return store

    def _check_sharded(self, selected: Tuple[str, ...], workers: int
                       ) -> Optional[Dict[str, List[Diagnostic]]]:
        from .mof import kernel as _kernel
        if _kernel._READ_HOOK is not None:
            return None
        from .parallel import SHARDABLE_FAMILIES, parallel_check
        shardable = [f for f in selected if f in SHARDABLE_FAMILIES]
        if not shardable:
            return None
        groups = (self._constraint_groups()
                  if "constraint" in shardable else ())
        return parallel_check(self.model.roots, shardable, groups,
                              workers=workers)

    def _constraint_groups(self) -> List[Any]:
        """Every (invariant, candidate list) the ``constraint`` family
        evaluates, in its exact (set, scope, invariant) order — the
        partition units :func:`repro.parallel.parallel_check` shards."""
        scopes: List[Union[Model, Element]]
        if isinstance(self.scope, (Model, Element)):
            scopes = [self.scope]
        else:
            scopes = list(self.model.roots)
        groups: List[Any] = []
        for constraint_set in self.constraint_sets:
            for scope in scopes:
                if isinstance(scope, Model):
                    for inv in constraint_set.invariants:
                        groups.append(
                            (inv, scope.instances_of(inv.context)))
                else:
                    elements = [scope] + list(scope.all_contents())
                    for inv in constraint_set.invariants:
                        groups.append(
                            (inv, [e for e in elements
                                   if e.meta.conforms_to(inv.context)]))
        return groups

    def _check_structural(self) -> List[Diagnostic]:
        store = self._active_column_store()
        if store is not None:
            # columnar fast path: one bulk scan over the extent columns
            # flags every element that *could* carry a structural
            # diagnostic; only suspects get the per-object validator,
            # visited in the sequential walk order (clean elements emit
            # nothing, so the report is unchanged)
            suspects = store.scan_structural()
            out: List[Diagnostic] = []
            if suspects:
                for root in self.model.roots:
                    for element in [root, *root.all_contents()]:
                        if id(element) in suspects:
                            out.extend(
                                validate_element(
                                    element, check_invariants=False)
                                .diagnostics)
            return out
        out = []
        for root in self.model.roots:
            out.extend(validate_tree(root, check_invariants=False)
                       .diagnostics)
        return out

    def _check_invariant(self) -> List[Diagnostic]:
        store = self._active_column_store()
        if store is not None:
            # columnar fast path: invariants run extent-wide as row
            # plans (repro.ocl.columns); the flagged set is exact, and
            # holds() re-runs per suspect in walk order reproduce the
            # sequential diagnostics byte for byte
            from .mof.validate import _check_invariants
            from .ocl.columns import flag_registered_suspects
            flagged = flag_registered_suspects(store)
            report = ValidationReport()
            if flagged:
                for root in self.model.roots:
                    for element in [root, *root.all_contents()]:
                        if id(element) in flagged:
                            _check_invariants(element, report)
            return report.diagnostics
        out: List[Diagnostic] = []
        for root in self.model.roots:
            out.extend(validate_invariants(root).diagnostics)
        return out

    def _check_wellformed(self) -> List[Diagnostic]:
        from .uml.package import Package
        from .uml.wellformed import run_wellformed_rules
        out: List[Diagnostic] = []
        for root in self.model.roots:
            if isinstance(root, Package):
                out.extend(run_wellformed_rules(root).diagnostics)
        return out

    def _check_lint(self, selected: Tuple[str, ...] = ()
                    ) -> List[Diagnostic]:
        config = self.lint_config
        if config is None and "wellformed" in selected:
            # the wellformed family already reports the uml-* rules;
            # don't let lint's bundled bridge rule repeat them
            config = LintConfig(disabled={"uml-wellformed"})
        linter = ModelLinter(self.registry, config)
        return list(linter.lint(*self.model.roots).diagnostics)

    def _check_consistency(self) -> List[Diagnostic]:
        linter = ModelLinter(self.registry, self.lint_config,
                             families=("consistency",))
        report = linter.lint(*self.model.roots)
        if _trace.ON:
            _metrics.REGISTRY.counter(
                "analysis.consistency.runs",
                help="cross-diagram consistency passes").inc()
            for diagnostic in report.diagnostics:
                _metrics.REGISTRY.counter(
                    "analysis.consistency.findings",
                    help="cross-diagram findings by code",
                    code=diagnostic.code).inc()
        return list(report.diagnostics)

    def _check_constraint(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        scopes: List[Union[Model, Element]]
        if isinstance(self.scope, (Model, Element)):
            scopes = [self.scope]
        else:
            scopes = list(self.model.roots)
        for constraint_set in self.constraint_sets:
            for scope in scopes:
                out.extend(constraint_set.evaluate(scope).diagnostics)
        return out

    # -- incremental checking ----------------------------------------------

    def watch(self, families: Optional[Iterable[str]] = None, *,
              wellformed_rules: Optional[Iterable[Any]] = None):
        """An incrementally maintained :meth:`check` over this scope.

        Returns a primed :class:`~repro.incremental.IncrementalEngine`
        restricted to the requested families; after each model edit,
        ``engine.revalidate()`` re-runs only the (check, element) units
        whose recorded read set the edit touched.
        """
        from .incremental.engine import IncrementalEngine
        selected = self._resolve_families(families)
        wellformed = "wellformed" in selected
        engine = IncrementalEngine(
            self.scope,
            structural="structural" in selected,
            invariants="invariant" in selected,
            constraint_sets=(self.constraint_sets
                             if "constraint" in selected else ()),
            wellformed=wellformed,
            wellformed_rules=(list(wellformed_rules)
                              if wellformed_rules is not None and wellformed
                              else None),
            lint="lint" in selected,
            consistency="consistency" in selected,
            registry=self.registry,
            config=self.lint_config)
        engine.revalidate()
        return engine

    # -- aggregate reporting -----------------------------------------------

    def quality_report(self, root: Optional[Element] = None, **kwargs: Any):
        """The one-page quality dashboard for a root of this session
        (defaults to the sole root; see
        :func:`repro.validation.report.build_quality_report` for the
        keyword arguments)."""
        from .validation.report import build_quality_report
        if root is None:
            roots = self.model.roots
            if len(roots) != 1:
                raise ValueError(
                    f"session has {len(roots)} roots; pass root= to pick "
                    f"one")
            root = roots[0]
        return build_quality_report(root, **kwargs)

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The session's runtime statistics document.

        The same dict the ``python -m repro stats --format json`` verb
        prints and the model server's ``stats`` verb returns per
        repository: a ``model`` block (uri, roots, element count, index
        state), the OCL compile-cache counters and the full metrics
        registry export.  Keep the three consumers as passthroughs of
        this one method so they can never drift apart.
        """
        document = runtime_stats()
        store = self.model.column_store()
        document["model"] = {
            "uri": self.model.uri,
            "roots": len(self.model.roots),
            "elements": self.model.size(),
            "index": self.model.index().stats(),
            "columns": (store.stats() if store is not None
                        else {"enabled": False}),
        }
        return document

    def __repr__(self) -> str:
        return (f"<Session model={self.model.uri!r} "
                f"roots={len(self.model.roots)} "
                f"constraint_sets={len(self.constraint_sets)}>")


def runtime_stats() -> Dict[str, Any]:
    """The model-free half of :meth:`Session.stats`: OCL cache counters
    plus the process-wide metrics registry export."""
    from .ocl.compile import cache_stats
    return {
        "ocl_cache": dict(cache_stats()),
        "metrics": _metrics.REGISTRY.to_json(),
    }
