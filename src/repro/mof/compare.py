"""Structural model comparison (diff).

Compares two containment trees element-by-element.  Elements are matched
by *signature path*: their position under same-named ancestors (name if
present, else metaclass + sibling index) — the practical heuristic real
model-diff tools (EMF Compare) default to when ids are absent.  The
result is a list of typed :class:`Difference` entries: added / removed
elements, changed attributes, changed (non-containment) references.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .kernel import Attribute, Element, Reference


class DiffKind(enum.Enum):
    ADDED = "added"             # element only in the right model
    REMOVED = "removed"         # element only in the left model
    ATTRIBUTE = "attribute"     # same element, attribute value differs
    REFERENCE = "reference"     # same element, reference targets differ
    TYPE = "type"               # same path, different metaclass


@dataclass
class Difference:
    kind: DiffKind
    path: str
    feature: Optional[str] = None
    left: Any = None
    right: Any = None

    def __str__(self) -> str:
        if self.kind is DiffKind.ADDED:
            return f"+ {self.path}"
        if self.kind is DiffKind.REMOVED:
            return f"- {self.path}"
        return (f"~ {self.path}.{self.feature}: "
                f"{self.left!r} -> {self.right!r}")


@dataclass
class DiffResult:
    differences: List[Difference] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.differences

    def of_kind(self, kind: DiffKind) -> List[Difference]:
        return [d for d in self.differences if d.kind is kind]

    @property
    def added(self) -> List[Difference]:
        return self.of_kind(DiffKind.ADDED)

    @property
    def removed(self) -> List[Difference]:
        return self.of_kind(DiffKind.REMOVED)

    @property
    def changed(self) -> List[Difference]:
        return [d for d in self.differences
                if d.kind in (DiffKind.ATTRIBUTE, DiffKind.REFERENCE,
                              DiffKind.TYPE)]

    def summary(self) -> str:
        return (f"diff: +{len(self.added)} -{len(self.removed)} "
                f"~{len(self.changed)}")

    def __str__(self) -> str:
        if self.identical:
            return "models identical"
        return "\n".join(str(d) for d in self.differences)


def _label(element: Element) -> str:
    name_feature = element.meta.find_feature("name")
    if name_feature is not None and not name_feature.many:
        name = element.eget("name")
        if name:
            return f"{element.meta.name}'{name}'"
    return element.meta.name


def _signature(element: Element, index: int) -> str:
    """Match key among siblings: prefer the name, fall back to metaclass
    plus position."""
    name_feature = element.meta.find_feature("name")
    if name_feature is not None and not name_feature.many:
        name = element.eget("name")
        if name:
            return f"{element.meta.name}:{name}"
    return f"{element.meta.name}#{index}"


def _ref_signature(element: Optional[Element]) -> Optional[str]:
    if element is None:
        return None
    parts = []
    current: Optional[Element] = element
    while current is not None:
        parts.append(_label(current))
        current = current.container
    return "/".join(reversed(parts))


class ModelComparator:
    def __init__(self) -> None:
        self.result = DiffResult()

    def compare(self, left: Element, right: Element,
                path: str = "") -> DiffResult:
        self._compare_elements(left, right, path or _label(left))
        return self.result

    # -- element pair -------------------------------------------------------

    def _compare_elements(self, left: Element, right: Element,
                          path: str) -> None:
        if left.meta is not right.meta:
            self.result.differences.append(Difference(
                DiffKind.TYPE, path, left=left.meta.name,
                right=right.meta.name))
            return          # feature sets differ; stop descending
        for feature in left.meta.all_features().values():
            if feature.derived:
                continue
            if isinstance(feature, Attribute):
                self._compare_attribute(left, right, feature, path)
            elif feature.containment:
                self._compare_children(left, right, feature, path)
            else:
                opposite = feature.opposite
                if opposite is not None and opposite.containment:
                    continue        # container back-pointer
                self._compare_reference(left, right, feature, path)

    def _compare_attribute(self, left: Element, right: Element,
                           feature: Attribute, path: str) -> None:
        left_value = left.eget(feature.name)
        right_value = right.eget(feature.name)
        if feature.many:
            left_value, right_value = list(left_value), list(right_value)
        if left_value != right_value:
            self.result.differences.append(Difference(
                DiffKind.ATTRIBUTE, path, feature.name,
                left_value, right_value))

    def _compare_reference(self, left: Element, right: Element,
                           feature: Reference, path: str) -> None:
        left_value = left.eget(feature.name)
        right_value = right.eget(feature.name)
        if feature.many:
            left_signatures = [_ref_signature(t) for t in left_value]
            right_signatures = [_ref_signature(t) for t in right_value]
        else:
            left_signatures = _ref_signature(left_value)
            right_signatures = _ref_signature(right_value)
        if left_signatures != right_signatures:
            self.result.differences.append(Difference(
                DiffKind.REFERENCE, path, feature.name,
                left_signatures, right_signatures))

    def _compare_children(self, left: Element, right: Element,
                          feature: Reference, path: str) -> None:
        left_value = left.eget(feature.name)
        right_value = right.eget(feature.name)
        left_children = list(left_value) if feature.many else (
            [left_value] if left_value is not None else [])
        right_children = list(right_value) if feature.many else (
            [right_value] if right_value is not None else [])
        left_map: Dict[str, Element] = {
            _signature(child, i): child
            for i, child in enumerate(left_children)}
        right_map: Dict[str, Element] = {
            _signature(child, i): child
            for i, child in enumerate(right_children)}
        for key, child in left_map.items():
            child_path = f"{path}/{_label(child)}"
            if key in right_map:
                self._compare_elements(child, right_map[key], child_path)
            else:
                self.result.differences.append(Difference(
                    DiffKind.REMOVED, child_path, feature.name))
        for key, child in right_map.items():
            if key not in left_map:
                self.result.differences.append(Difference(
                    DiffKind.ADDED, f"{path}/{_label(child)}",
                    feature.name))


def compare(left: Element, right: Element) -> DiffResult:
    """Diff two containment trees; see module docstring for matching."""
    return ModelComparator().compare(left, right)
