"""Primitive data types and multiplicities for the MOF kernel.

The kernel's type system distinguishes three kinds of attribute types:

* :class:`PrimitiveType` — string/integer/real/boolean, the MOF primitives;
* :class:`MetaEnum` — user-defined enumerations (defined in ``kernel``);
* metaclasses — used only by references, never by attributes.

Multiplicities follow UML/MOF conventions: a lower bound (0 or more) and an
upper bound that is either a positive integer or ``UNBOUNDED``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

UNBOUNDED: Optional[int] = None
"""Sentinel for a ``*`` upper bound."""


@dataclass(frozen=True)
class Multiplicity:
    """A ``lower..upper`` multiplicity as written on UML association ends.

    ``upper is None`` means unbounded (``*``).
    """

    lower: int = 0
    upper: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ValueError(f"lower bound must be >= 0, got {self.lower}")
        if self.upper is not None:
            if self.upper < 1:
                raise ValueError(f"upper bound must be >= 1, got {self.upper}")
            if self.upper < self.lower:
                raise ValueError(
                    f"upper bound {self.upper} < lower bound {self.lower}"
                )

    @property
    def is_many(self) -> bool:
        """True when more than one value may be held (upper > 1 or ``*``)."""
        return self.upper is None or self.upper > 1

    @property
    def is_required(self) -> bool:
        """True when at least one value must be present."""
        return self.lower >= 1

    def accepts_count(self, n: int) -> bool:
        """Whether a value count *n* satisfies these bounds."""
        if n < self.lower:
            return False
        return self.upper is None or n <= self.upper

    def __str__(self) -> str:
        upper = "*" if self.upper is None else str(self.upper)
        if str(self.lower) == upper:
            return upper
        return f"{self.lower}..{upper}"


# Common multiplicities, named after their UML notation.
M_01 = Multiplicity(0, 1)
M_11 = Multiplicity(1, 1)
M_0N = Multiplicity(0, UNBOUNDED)
M_1N = Multiplicity(1, UNBOUNDED)


class PrimitiveType:
    """One of the MOF primitive data types.

    Instances are singletons (``MString`` etc. below); user code never
    constructs new primitive types.
    """

    def __init__(self, name: str, python_types: tuple, default: object):
        self.name = name
        self.python_types = python_types
        self.default = default

    def conforms(self, value: object) -> bool:
        """Whether *value* is a legal runtime value of this type.

        ``bool`` is deliberately excluded from Integer/Real conformance even
        though it subclasses ``int`` in Python — a boolean slot must not be
        silently usable as a number in models.
        """
        if value is None:
            return True  # absence is handled by multiplicity, not type
        if self is not MBoolean and isinstance(value, bool):
            return False
        return isinstance(value, self.python_types)

    def coerce(self, value: object) -> object:
        """Convert *value* from its serialized string form, if needed."""
        if value is None or self.conforms(value):
            return value
        if isinstance(value, str):
            if self is MInteger:
                return int(value)
            if self is MReal:
                return float(value)
            if self is MBoolean:
                lowered = value.strip().lower()
                if lowered in ("true", "1"):
                    return True
                if lowered in ("false", "0"):
                    return False
        raise ValueError(f"cannot coerce {value!r} to {self.name}")

    def __repr__(self) -> str:
        return f"<PrimitiveType {self.name}>"


MString = PrimitiveType("String", (str,), "")
MInteger = PrimitiveType("Integer", (int,), 0)
MReal = PrimitiveType("Real", (int, float), 0.0)
MBoolean = PrimitiveType("Boolean", (bool,), False)

PRIMITIVES = {t.name: t for t in (MString, MInteger, MReal, MBoolean)}


def primitive_by_name(name: str) -> PrimitiveType:
    """Look up a primitive type by its MOF name (``String``, ``Integer``...)."""
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise KeyError(f"unknown primitive type {name!r}") from None
