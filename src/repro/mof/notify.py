"""Change notification for model elements.

Transformations, trace recorders and animators need to observe model
mutations.  Every successful high-level mutation of a feature emits a
:class:`Notification` to observers registered on the touched element (and to
repository-wide observers when the element belongs to a repository-attached
model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, List, Optional


class ChangeKind(enum.Enum):
    """What a mutation did to a feature slot."""

    SET = "set"          # single-valued feature assigned
    UNSET = "unset"      # single-valued feature cleared
    ADD = "add"          # value appended to a many-valued feature
    REMOVE = "remove"    # value removed from a many-valued feature
    MOVE = "move"        # value repositioned within an ordered feature


@dataclass(frozen=True)
class Notification:
    """A single observed model change."""

    element: Any                  # the element whose feature changed
    feature: Any                  # the Feature object
    kind: ChangeKind
    old: Any = None
    new: Any = None
    position: Optional[int] = None

    def __str__(self) -> str:
        return (
            f"{self.kind.value} {type(self.element).__name__}."
            f"{self.feature.name}: {self.old!r} -> {self.new!r}"
        )


Observer = Callable[[Notification], None]

_NOTIFY_HOOK: Optional[Observer] = None


def set_notify_hook(hook: Optional[Observer]) -> Optional[Observer]:
    """Install *hook* as the process-wide notification observer; return
    the old one.

    Unlike per-element observers, the hook sees every notification from
    every element, before local observers run.  It is the tap
    :mod:`repro.obs` uses for change-kind counters; with no hook
    installed (``None``) dispatch pays one global load and a falsy test.
    """
    global _NOTIFY_HOOK
    previous = _NOTIFY_HOOK
    _NOTIFY_HOOK = hook
    return previous


class ObserverMixin:
    """Gives an element an observer list and a ``_notify`` hook.

    Observers are stored lazily: most elements are never observed and should
    not pay for an empty list.
    """

    _observers: Optional[List[Observer]]

    def observe(self, observer: Observer) -> None:
        """Register *observer* to be called after each change to ``self``."""
        observers = getattr(self, "_observers", None)
        if observers is None:
            observers = []
            object.__setattr__(self, "_observers", observers)
        observers.append(observer)

    def unobserve(self, observer: Observer) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        observers = getattr(self, "_observers", None)
        if observers and observer in observers:
            observers.remove(observer)

    def _notify(self, notification: Notification) -> None:
        if _NOTIFY_HOOK is not None:
            _NOTIFY_HOOK(notification)
        observers = getattr(self, "_observers", None)
        if observers:
            # Iterate over a snapshot (observers may register/unregister
            # while we dispatch) but re-check live membership before each
            # call: an observer detached by an earlier observer must not
            # receive the notification it asked to stop seeing.
            for observer in tuple(observers):
                if observer in observers:
                    observer(notification)
        forward = getattr(self, "_notification_sink", None)
        if forward is not None:
            forward(notification)


class ChangeRecorder:
    """Collects notifications; convenient for tests and undo-style tooling."""

    def __init__(self) -> None:
        self.notifications: List[Notification] = []

    def __call__(self, notification: Notification) -> None:
        self.notifications.append(notification)

    def clear(self) -> None:
        # Rebind rather than clear in place: callers iterating an earlier
        # snapshot of ``self.notifications`` (e.g. replaying a change log
        # while new changes arrive) keep a consistent list.
        self.notifications = []

    def __len__(self) -> int:
        return len(self.notifications)
