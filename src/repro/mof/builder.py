"""Fluent builder for dynamic metamodels.

Example
-------
>>> from repro.mof.builder import PackageBuilder
>>> from repro.mof.types import MString, M_0N
>>> net = (PackageBuilder("net")
...        .clazz("Layer")
...            .attr("name", MString)
...            .ref("above", "Layer", opposite="below")
...            .ref("below", "Layer")
...        .done()
...        .build())
>>> layer = net.classifier("Layer")
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from . import dynamic
from .errors import MetamodelError
from .kernel import MetaClass, MetaEnum, MetaPackage
from .types import M_01, Multiplicity, PrimitiveType


class ClassBuilder:
    """Builds one metaclass; returned by :meth:`PackageBuilder.clazz`."""

    def __init__(self, parent: "PackageBuilder", metaclass: MetaClass):
        self._parent = parent
        self._metaclass = metaclass

    def attr(self, name: str, type: Union[PrimitiveType, MetaEnum],
             default: Any = None,
             multiplicity: Multiplicity = M_01,
             doc: str = "") -> "ClassBuilder":
        dynamic.add_attribute(self._metaclass, name, type, default,
                              multiplicity=multiplicity, doc=doc)
        return self

    def ref(self, name: str, target: Union[MetaClass, type, str],
            containment: bool = False,
            opposite: Optional[str] = None,
            multiplicity: Multiplicity = M_01,
            doc: str = "") -> "ClassBuilder":
        dynamic.add_reference(self._metaclass, name, target,
                              containment=containment, opposite=opposite,
                              multiplicity=multiplicity, doc=doc)
        return self

    def contains(self, name: str, target: Union[MetaClass, type, str],
                 multiplicity: Multiplicity = None,
                 opposite: Optional[str] = None,
                 doc: str = "") -> "ClassBuilder":
        """Shorthand for a containment reference, defaulting to ``0..*``."""
        from .types import M_0N
        return self.ref(name, target, containment=True, opposite=opposite,
                        multiplicity=multiplicity or M_0N, doc=doc)

    def done(self) -> "PackageBuilder":
        return self._parent

    # allow starting the next class without an explicit done()
    def clazz(self, name: str, **kwargs) -> "ClassBuilder":
        return self._parent.clazz(name, **kwargs)

    def enum(self, name: str, literals: Sequence[str]) -> "PackageBuilder":
        return self._parent.enum(name, literals)

    def build(self) -> MetaPackage:
        return self._parent.build()

    @property
    def metaclass(self) -> MetaClass:
        return self._metaclass


class PackageBuilder:
    """Accumulates classifiers into a fresh :class:`MetaPackage`."""

    def __init__(self, name: str, uri: Optional[str] = None):
        self._package = MetaPackage(name, uri=uri)
        self._class_builders: List[ClassBuilder] = []

    def clazz(self, name: str, *,
              superclasses: Sequence[Union[MetaClass, type, str]] = (),
              abstract: bool = False) -> ClassBuilder:
        resolved: List[Union[MetaClass, type]] = []
        for sup in superclasses:
            if isinstance(sup, str):
                classifier = self._package.classifiers.get(sup)
                if not isinstance(classifier, MetaClass):
                    raise MetamodelError(
                        f"superclass {sup!r} not yet defined in package "
                        f"'{self._package.name}'"
                    )
                resolved.append(classifier)
            else:
                resolved.append(sup)
        metaclass = dynamic.define_class(
            self._package, name, superclasses=resolved, abstract=abstract)
        builder = ClassBuilder(self, metaclass)
        self._class_builders.append(builder)
        return builder

    def enum(self, name: str, literals: Sequence[str]) -> "PackageBuilder":
        dynamic.define_enum(self._package, name, literals)
        return self

    def build(self) -> MetaPackage:
        """Resolve all forward references and return the finished package."""
        for metaclass in self._package.metaclasses():
            for feature in metaclass.own_features.values():
                if feature.is_reference:
                    feature.target        # force resolution
                    feature.opposite      # force opposite pairing
        return self._package

    @property
    def package(self) -> MetaPackage:
        return self._package
