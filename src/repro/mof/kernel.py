"""The MOF-style metamodeling kernel (the M3 layer).

This module provides what the paper calls the Meta Object Facility: the
machinery with which metamodels (UML among them) are *defined* and through
which models are *reflected upon*.

Design
------
A metamodel is a set of :class:`MetaClass` objects grouped into
:class:`MetaPackage` namespaces.  Each metaclass owns typed features:
:class:`Attribute` (primitive/enum-typed) and :class:`Reference`
(metaclass-typed, optionally containment, optionally with an opposite).

Metamodels can be written in two equivalent styles:

* **static** — subclass :class:`Element` and declare features as class
  attributes; a Python metaclass (:class:`MofMeta`) harvests them into a
  ``MetaClass`` automatically, so the Python class hierarchy *is* the
  metamodel and instances are plain Python objects with full reflection;
* **dynamic** — build ``MetaClass`` objects at runtime (see
  ``repro.mof.dynamic`` and ``repro.mof.builder``) and instantiate
  :class:`DynamicElement`.

Both styles share one mutation protocol, implemented by the module-level
``_link``/``_unlink`` primitives, which atomically maintain the two
cross-object invariants of MOF models:

1. *opposite consistency* — ``a in b.f  <=>  b in a.f.opposite``;
2. *single container* — an element is contained by at most one containment
   slot at a time, and containment is acyclic.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .. import faults as _faults
from .errors import (
    CompositionError,
    FrozenElementError,
    MetamodelError,
    MultiplicityError,
    TypeConformanceError,
    UnknownFeatureError,
)
from .notify import ChangeKind, Notification, ObserverMixin
from .types import (
    M_01,
    M_0N,
    Multiplicity,
    PrimitiveType,
)

_id_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# Read instrumentation
# ---------------------------------------------------------------------------

CONTAINER_KEY = "@container"
"""Pseudo-feature name under which container reads are reported to the
read hook.  ``element.container`` / ``element.root()`` walks are not
feature reads, but checkers depend on them all the same — an incremental
engine must re-run a check when an element it walked through is
reparented."""

_READ_HOOK = None


def set_read_hook(hook):
    """Install *hook* as the kernel-wide read observer; return the old one.

    When a hook is installed, every feature read — descriptor access,
    ``eget``, dynamic attribute lookup, ``contents()`` — calls
    ``hook(element, feature_name)`` before returning the value.  Container
    walks report the pseudo-feature :data:`CONTAINER_KEY`.  This is the tap
    the incremental revalidation engine uses to learn what a check actually
    read; with no hook installed (``None``) reads pay a single global load
    and a falsy test.
    """
    global _READ_HOOK
    previous = _READ_HOOK
    _READ_HOOK = hook
    return previous


_WRITE_HOOK = None


def set_write_hook(hook):
    """Install *hook* as the kernel-wide write observer; return the old one.

    When a hook is installed, every high-level feature write — ``eset``,
    descriptor assignment, dynamic attribute store — calls
    ``hook(element, feature_name)`` before the mutation is applied.  This
    is the mutation-count tap used by :mod:`repro.obs`; with no hook
    installed (``None``) writes pay one global load and a falsy test.
    Structural side effects (opposite updates, containment moves) are
    observable through the notification hook instead, so a single logical
    write is counted once here however many slots it touches.
    """
    global _WRITE_HOOK
    previous = _WRITE_HOOK
    _WRITE_HOOK = hook
    return previous


# ---------------------------------------------------------------------------
# Packages and enumerations
# ---------------------------------------------------------------------------

class MetaPackage:
    """A namespace for metaclasses and enumerations, with an identifying URI."""

    def __init__(self, name: str, uri: Optional[str] = None,
                 parent: Optional["MetaPackage"] = None):
        self.name = name
        self.uri = uri or f"urn:repro:{name}"
        self.parent = parent
        self.classifiers: Dict[str, Union["MetaClass", "MetaEnum"]] = {}
        self.subpackages: Dict[str, "MetaPackage"] = {}
        if parent is not None:
            if name in parent.subpackages:
                raise MetamodelError(
                    f"package '{parent.name}' already has subpackage '{name}'"
                )
            parent.subpackages[name] = self

    @property
    def qualified_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.qualified_name}.{self.name}"

    def register(self, classifier: Union["MetaClass", "MetaEnum"]) -> None:
        existing = self.classifiers.get(classifier.name)
        if existing is not None and existing is not classifier:
            raise MetamodelError(
                f"package '{self.name}' already defines classifier "
                f"'{classifier.name}'"
            )
        self.classifiers[classifier.name] = classifier
        classifier.package = self

    def classifier(self, name: str) -> Union["MetaClass", "MetaEnum"]:
        """Look up a classifier by simple name, raising ``KeyError`` if absent."""
        try:
            return self.classifiers[name]
        except KeyError:
            raise KeyError(
                f"package '{self.qualified_name}' has no classifier {name!r}"
            ) from None

    def metaclasses(self) -> List["MetaClass"]:
        return [c for c in self.classifiers.values() if isinstance(c, MetaClass)]

    def all_packages(self) -> Iterator["MetaPackage"]:
        """This package and all transitively nested subpackages, preorder."""
        yield self
        for sub in self.subpackages.values():
            yield from sub.all_packages()

    def __repr__(self) -> str:
        return f"<MetaPackage {self.qualified_name}>"


class MetaEnum:
    """A user-defined enumeration type for attributes.

    Values of an enum-typed attribute are the literal strings themselves,
    which keeps models trivially serializable.
    """

    def __init__(self, name: str, literals: Iterable[str],
                 package: Optional[MetaPackage] = None):
        self.name = name
        self.literals: Tuple[str, ...] = tuple(literals)
        if not self.literals:
            raise MetamodelError(f"enum '{name}' needs at least one literal")
        if len(set(self.literals)) != len(self.literals):
            raise MetamodelError(f"enum '{name}' has duplicate literals")
        self.package = package
        if package is not None:
            package.register(self)
        self.default = self.literals[0]

    def conforms(self, value: object) -> bool:
        if value is None:
            return True
        return isinstance(value, str) and value in self.literals

    def coerce(self, value: object) -> object:
        if self.conforms(value):
            return value
        raise ValueError(f"{value!r} is not a literal of enum {self.name}")

    def __contains__(self, value: object) -> bool:
        return value in self.literals

    def __repr__(self) -> str:
        return f"<MetaEnum {self.name} {self.literals!r}>"


# ---------------------------------------------------------------------------
# Features
# ---------------------------------------------------------------------------

class Feature:
    """Base class for structural features; doubles as a Python descriptor.

    The same object serves as M3 metadata (queried reflectively) and as the
    attribute-access implementation for statically declared elements.
    """

    is_reference = False

    def __init__(self, *, multiplicity: Multiplicity, ordered: bool = True,
                 derived: bool = False, doc: str = ""):
        self.name: str = ""            # assigned by __set_name__ / builder
        self.owner: Optional[MetaClass] = None
        self.multiplicity = multiplicity
        self.ordered = ordered
        self.derived = derived
        self.doc = doc

    @property
    def many(self) -> bool:
        return self.multiplicity.is_many

    @property
    def required(self) -> bool:
        return self.multiplicity.is_required

    # -- descriptor protocol -------------------------------------------------

    def __set_name__(self, owner: type, name: str) -> None:
        if not self.name:
            self.name = name

    def __get__(self, obj: Optional["Element"], objtype=None):
        if obj is None:
            return self
        return _get_value(obj, self)

    def __set__(self, obj: "Element", value: Any) -> None:
        _set_value(obj, self, value)

    # -- to be specialised ----------------------------------------------------

    def check_type(self, value: Any) -> None:
        raise NotImplementedError

    def default_value(self) -> Any:
        raise NotImplementedError

    def type_name(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else "?"
        return (f"<{type(self).__name__} {owner}.{self.name}: "
                f"{self.type_name()} [{self.multiplicity}]>")


class Attribute(Feature):
    """A primitive- or enum-typed feature."""

    def __init__(self, type: Union[PrimitiveType, MetaEnum],
                 default: Any = None, *,
                 multiplicity: Multiplicity = M_01,
                 ordered: bool = True, derived: bool = False, doc: str = ""):
        super().__init__(multiplicity=multiplicity, ordered=ordered,
                         derived=derived, doc=doc)
        self.type = type
        self._default = default

    def check_type(self, value: Any) -> None:
        if not self.type.conforms(value):
            raise TypeConformanceError(self.name, self.type_name(), value)

    def default_value(self) -> Any:
        if self._default is not None:
            return self._default
        if self.required:
            return self.type.default
        return None

    def type_name(self) -> str:
        return self.type.name


class Reference(Feature):
    """A metaclass-typed feature, optionally containment / bidirectional.

    ``target`` may be given as a ``MetaClass``, an ``Element`` subclass, or a
    string naming a metaclass in the owner's package (resolved lazily so that
    mutually referencing metaclasses can be declared in any order).
    ``opposite`` names the inverse feature declared on the target metaclass.
    """

    is_reference = True

    def __init__(self, target: Union["MetaClass", type, str], *,
                 containment: bool = False,
                 opposite: Optional[str] = None,
                 multiplicity: Multiplicity = M_01,
                 ordered: bool = True, derived: bool = False, doc: str = ""):
        super().__init__(multiplicity=multiplicity, ordered=ordered,
                         derived=derived, doc=doc)
        self._target_spec = target
        self.containment = containment
        self.opposite_name = opposite
        self._resolved_target: Optional[MetaClass] = None
        self._resolved_opposite: Optional["Reference"] = None

    @property
    def target(self) -> "MetaClass":
        if self._resolved_target is None:
            self._resolve_target()
        assert self._resolved_target is not None
        return self._resolved_target

    def _resolve_target(self) -> None:
        spec = self._target_spec
        if isinstance(spec, MetaClass):
            self._resolved_target = spec
        elif isinstance(spec, type) and hasattr(spec, "_meta"):
            self._resolved_target = spec._meta
        elif isinstance(spec, str):
            if self.owner is None or self.owner.package is None:
                raise MetamodelError(
                    f"cannot resolve target {spec!r} of feature "
                    f"'{self.name}': owner has no package"
                )
            classifier = self.owner.package.classifiers.get(spec)
            if classifier is None:
                # search sibling/parent packages to be forgiving in layered
                # metamodels
                pkg = self.owner.package
                while pkg.parent is not None:
                    pkg = pkg.parent
                for candidate in pkg.all_packages():
                    if spec in candidate.classifiers:
                        classifier = candidate.classifiers[spec]
                        break
            if not isinstance(classifier, MetaClass):
                raise MetamodelError(
                    f"cannot resolve reference target {spec!r} for feature "
                    f"'{self.name}' of '{self.owner.name}'"
                )
            self._resolved_target = classifier
        else:
            raise MetamodelError(
                f"invalid reference target spec {spec!r} on '{self.name}'"
            )

    @property
    def opposite(self) -> Optional["Reference"]:
        if self.opposite_name is None:
            return None
        if self._resolved_opposite is None:
            candidate = self.target.find_feature(self.opposite_name)
            if not isinstance(candidate, Reference):
                raise MetamodelError(
                    f"opposite '{self.opposite_name}' of "
                    f"'{self.owner.name if self.owner else '?'}.{self.name}' "
                    f"is not a reference on '{self.target.name}'"
                )
            self._resolved_opposite = candidate
            # make the pairing symmetric even if only one side declared it
            if candidate.opposite_name is None:
                candidate.opposite_name = self.name
            if candidate._resolved_opposite is None:
                candidate._resolved_opposite = self
        return self._resolved_opposite

    def check_type(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, Element):
            raise TypeConformanceError(self.name, self.type_name(), value)
        if not value.meta.conforms_to(self.target):
            raise TypeConformanceError(self.name, self.type_name(), value)

    def default_value(self) -> Any:
        return None

    def type_name(self) -> str:
        if self._resolved_target is not None:
            return self._resolved_target.name
        spec = self._target_spec
        if isinstance(spec, str):
            return spec
        if isinstance(spec, MetaClass):
            return spec.name
        return getattr(spec, "__name__", repr(spec))


# ---------------------------------------------------------------------------
# MetaClass
# ---------------------------------------------------------------------------

class MetaClass:
    """An M2-level class: named, packaged, with features and superclasses.

    For statically declared metamodels ``python_class`` points back at the
    ``Element`` subclass; dynamic metaclasses have ``python_class is None``
    and instantiate :class:`DynamicElement`.
    """

    def __init__(self, name: str, *,
                 package: Optional[MetaPackage] = None,
                 superclasses: Iterable["MetaClass"] = (),
                 abstract: bool = False,
                 python_class: Optional[type] = None):
        self.name = name
        self.package: Optional[MetaPackage] = None
        self.superclasses: List[MetaClass] = list(superclasses)
        self.subclasses: List[MetaClass] = []
        self.abstract = abstract
        self.python_class = python_class
        self.own_features: Dict[str, Feature] = {}
        self.invariants: List[Any] = []   # populated by repro.ocl.invariants
        self._all_features_cache: Optional[Dict[str, Feature]] = None
        self._all_superclasses_cache: Optional[List[MetaClass]] = None
        self._ancestor_ids: Optional[frozenset] = None
        self._all_subclasses_cache: Optional[List[MetaClass]] = None
        for sup in self.superclasses:
            sup.subclasses.append(self)
            sup._invalidate_cache()
        # a new subclass extends the extent of every transitive ancestor
        for ancestor in self.all_superclasses():
            ancestor._all_subclasses_cache = None
        if package is not None:
            package.register(self)

    # -- structure -------------------------------------------------------

    @property
    def qualified_name(self) -> str:
        if self.package is None:
            return self.name
        return f"{self.package.qualified_name}.{self.name}"

    def add_feature(self, feature: Feature) -> Feature:
        if not feature.name:
            raise MetamodelError("feature must be named before being added")
        if feature.name in self.own_features:
            raise MetamodelError(
                f"metaclass '{self.name}' already declares feature "
                f"'{feature.name}'"
            )
        inherited = self.find_feature(feature.name)
        if inherited is not None:
            raise MetamodelError(
                f"metaclass '{self.name}' would shadow inherited feature "
                f"'{feature.name}' from '{inherited.owner.name}'"
            )
        feature.owner = self
        self.own_features[feature.name] = feature
        self._invalidate_cache()
        return feature

    def _invalidate_cache(self) -> None:
        self._all_features_cache = None
        self._all_superclasses_cache = None
        self._ancestor_ids = None
        self._all_subclasses_cache = None
        for sub in self.subclasses:
            sub._invalidate_cache()

    def all_superclasses(self) -> List["MetaClass"]:
        """All transitive superclasses, nearest first, without duplicates."""
        if self._all_superclasses_cache is None:
            seen: Dict[int, MetaClass] = {}
            stack = list(self.superclasses)
            order: List[MetaClass] = []
            while stack:
                sup = stack.pop(0)
                if id(sup) in seen:
                    continue
                seen[id(sup)] = sup
                order.append(sup)
                stack.extend(sup.superclasses)
            self._all_superclasses_cache = order
            self._ancestor_ids = frozenset(seen)
        return list(self._all_superclasses_cache)

    def all_subclasses(self) -> List["MetaClass"]:
        """All transitive subclasses (excluding self)."""
        if self._all_subclasses_cache is None:
            out: List[MetaClass] = []
            stack = list(self.subclasses)
            while stack:
                sub = stack.pop()
                if sub in out:
                    continue
                out.append(sub)
                stack.extend(sub.subclasses)
            self._all_subclasses_cache = out
        return list(self._all_subclasses_cache)

    def conforms_to(self, other: "MetaClass") -> bool:
        """True when instances of ``self`` are acceptable where ``other`` is
        expected (reflexive-transitive generalization)."""
        if self is other:
            return True
        if self._ancestor_ids is None:
            self.all_superclasses()
        return id(other) in self._ancestor_ids

    def all_features(self) -> Dict[str, Feature]:
        """Every feature, inherited ones first, in declaration order."""
        if self._all_features_cache is None:
            merged: Dict[str, Feature] = {}
            for sup in reversed(self.all_superclasses()):
                for name, feature in sup.own_features.items():
                    merged[name] = feature
            merged.update(self.own_features)
            self._all_features_cache = merged
        return self._all_features_cache

    def find_feature(self, name: str) -> Optional[Feature]:
        return self.all_features().get(name)

    def feature(self, name: str) -> Feature:
        found = self.find_feature(name)
        if found is None:
            raise UnknownFeatureError(self.name, name)
        return found

    def containment_features(self) -> List[Reference]:
        return [f for f in self.all_features().values()
                if isinstance(f, Reference) and f.containment]

    # -- instantiation -----------------------------------------------------

    def instantiate(self, **kwargs: Any) -> "Element":
        """Create a new instance of this metaclass.

        Static metaclasses delegate to their Python class; dynamic ones
        build a :class:`DynamicElement`.
        """
        if self.abstract:
            raise MetamodelError(
                f"cannot instantiate abstract metaclass '{self.name}'"
            )
        if self.python_class is not None:
            return self.python_class(**kwargs)
        return DynamicElement(self, **kwargs)

    def __call__(self, **kwargs: Any) -> "Element":
        return self.instantiate(**kwargs)

    def __repr__(self) -> str:
        return f"<MetaClass {self.qualified_name}>"


# ---------------------------------------------------------------------------
# Managed collections for many-valued features
# ---------------------------------------------------------------------------

class FeatureList:
    """The live value of a many-valued feature.

    Mutations go through the kernel's link/unlink protocol so that opposites
    and containment stay consistent.  Values are unique (MOF default): adding
    a value already present is a no-op.
    """

    __slots__ = ("_owner", "_feature", "_items")

    def __init__(self, owner: "Element", feature: Feature):
        self._owner = owner
        self._feature = feature
        self._items: List[Any] = []

    # -- reading ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._items))

    def __contains__(self, value: Any) -> bool:
        return any(v is value or v == value for v in self._items)

    def __getitem__(self, index):
        return self._items[index]

    def index(self, value: Any) -> int:
        return self._items.index(value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FeatureList):
            return self._items == other._items
        if isinstance(other, (list, tuple)):
            return self._items == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FeatureList({self._feature.name}, {self._items!r})"

    # -- mutation ----------------------------------------------------------

    def append(self, value: Any) -> None:
        self._insert(len(self._items), value)

    def add(self, value: Any) -> None:
        """Alias for :meth:`append` (set-flavoured call sites)."""
        self.append(value)

    def insert(self, index: int, value: Any) -> None:
        self._insert(index, value)

    def extend(self, values: Iterable[Any]) -> None:
        for value in values:
            self.append(value)

    def remove(self, value: Any) -> None:
        if value not in self:
            raise ValueError(f"{value!r} not in feature '{self._feature.name}'")
        if _faults.ACTIVE is not None:
            _faults.probe("kernel.write")
        if self._feature.is_reference:
            _unlink(self._owner, self._feature, value)
        else:
            _check_mutable(self._owner)
            index = self._items.index(value)
            self._items.pop(index)
            self._owner._notify(Notification(
                self._owner, self._feature, ChangeKind.REMOVE, old=value,
                position=index))

    def discard(self, value: Any) -> None:
        if value in self:
            self.remove(value)

    def pop(self, index: int = -1) -> Any:
        value = self._items[index]
        self.remove(value)
        return value

    def clear(self) -> None:
        for value in list(self._items):
            self.remove(value)

    def move(self, new_index: int, value: Any) -> None:
        """Reposition *value* within an ordered feature."""
        if _faults.ACTIVE is not None:
            _faults.probe("kernel.write")
        _check_mutable(self._owner)
        old_index = self._items.index(value)
        if old_index == new_index:
            return
        self._items.pop(old_index)
        self._items.insert(new_index, value)
        self._owner._notify(Notification(
            self._owner, self._feature, ChangeKind.MOVE,
            old=old_index, new=value, position=new_index))

    def set(self, values: Iterable[Any]) -> None:
        """Replace the whole content."""
        self.clear()
        self.extend(values)

    def _insert(self, index: int, value: Any) -> None:
        if value in self:
            return
        if _faults.ACTIVE is not None:
            _faults.probe("kernel.write")
        self._feature.check_type(value)
        upper = self._feature.multiplicity.upper
        if upper is not None and len(self._items) >= upper:
            raise MultiplicityError(
                f"feature '{self._feature.name}' accepts at most {upper} "
                f"values"
            )
        if self._feature.is_reference:
            _link(self._owner, self._feature, value, position=index)
        else:
            _check_mutable(self._owner)
            self._items.insert(index, value)
            self._owner._notify(Notification(
                self._owner, self._feature, ChangeKind.ADD,
                new=value, position=index))


# ---------------------------------------------------------------------------
# The mutation protocol
# ---------------------------------------------------------------------------

def _check_mutable(obj: "Element") -> None:
    if getattr(obj, "_frozen", False):
        raise FrozenElementError(f"{obj!r} is frozen")


def _slot_list(obj: "Element", feature: Feature) -> FeatureList:
    slot = obj._slots.get(feature.name)
    if slot is None:
        slot = FeatureList(obj, feature)
        obj._slots[feature.name] = slot
    return slot


def _raw_remove(obj: "Element", feature: Feature, value: "Element") -> None:
    """Remove *value* from *obj*'s slot for *feature* without side effects."""
    if feature.many:
        items = _slot_list(obj, feature)._items
        for i, item in enumerate(items):
            if item is value:
                items.pop(i)
                break
    else:
        if obj._slots.get(feature.name) is value:
            obj._slots[feature.name] = None


def _raw_add(obj: "Element", feature: Feature, value: "Element",
             position: Optional[int] = None) -> None:
    """Add *value* to *obj*'s slot for *feature* without side effects."""
    if feature.many:
        items = _slot_list(obj, feature)._items
        if not any(item is value for item in items):
            if position is None:
                items.append(value)
            else:
                items.insert(position, value)
    else:
        obj._slots[feature.name] = value


def _ancestors(obj: "Element") -> Iterator["Element"]:
    current = obj
    while current is not None:
        yield current
        current = current._container


def _index_of(obj: "Element", feature: Reference,
              value: "Element") -> Optional[int]:
    slot = obj._slots.get(feature.name)
    if isinstance(slot, FeatureList):
        for i, item in enumerate(slot._items):
            if item is value:
                return i
    return None


def _unlink(source: "Element", feature: Reference, target: "Element",
            *, notify: bool = True) -> None:
    """Break the ``source --feature--> target`` link and its inverse."""
    if _faults.ACTIVE is not None:
        # Covers delete()/_detach(), which reach _unlink without passing a
        # FeatureList entry point — a fault mid-delete is the canonical
        # partial compound edit a transaction must be able to unwind.
        _faults.probe("kernel.write")
    _check_mutable(source)
    opposite = feature.opposite
    if opposite is not None:
        # the inverse slot mutates too; a frozen target must veto the whole
        # operation before either side changes
        _check_mutable(target)
    position = _index_of(source, feature, target) if feature.many else None
    opp_position = (_index_of(target, opposite, source)
                    if opposite is not None and opposite.many else None)
    _raw_remove(source, feature, target)
    if opposite is not None:
        _raw_remove(target, opposite, source)
    if feature.containment and target._container is source:
        target._container = None
        target._containing_feature = None
    if opposite is not None and opposite.containment \
            and source._container is target:
        source._container = None
        source._containing_feature = None
    if notify:
        kind = ChangeKind.REMOVE if feature.many else ChangeKind.UNSET
        source._notify(Notification(source, feature, kind, old=target,
                                    position=position))
        if opposite is not None:
            okind = ChangeKind.REMOVE if opposite.many else ChangeKind.UNSET
            target._notify(Notification(target, opposite, okind, old=source,
                                        position=opp_position))


def _link(source: "Element", feature: Reference, target: "Element",
          *, position: Optional[int] = None) -> None:
    """Establish ``source --feature--> target`` and its inverse atomically."""
    _check_mutable(source)
    feature.check_type(target)
    opposite = feature.opposite
    if opposite is not None:
        # linking writes the target's inverse slot as well
        _check_mutable(target)

    # Containment cycle guard: target may not be an ancestor of source.
    if feature.containment:
        if target is source or any(a is target for a in _ancestors(source)):
            raise CompositionError(
                f"containment cycle: {target!r} already (transitively) "
                f"contains {source!r}"
            )
    if opposite is not None and opposite.containment:
        if source is target or any(a is source for a in _ancestors(target)):
            raise CompositionError(
                f"containment cycle: {source!r} already (transitively) "
                f"contains {target!r}"
            )

    # Displace current occupants of single-valued ends.
    if not feature.many:
        current = source._slots.get(feature.name)
        if current is target:
            return
        if current is not None:
            _unlink(source, feature, current)
    if opposite is not None and not opposite.many:
        holder = target._slots.get(opposite.name)
        if holder is not None and holder is not source:
            # holder --feature--> target must be broken from holder's side
            _unlink(holder, feature, target)

    # An element enters a new containment slot: leave the old one first.
    if feature.containment and target._container is not None:
        target._detach()
    if opposite is not None and opposite.containment \
            and source._container is not None:
        source._detach()

    _raw_add(source, feature, target, position)
    if opposite is not None:
        _raw_add(target, opposite, source)
    if feature.containment:
        target._container = source
        target._containing_feature = feature
    if opposite is not None and opposite.containment:
        source._container = target
        source._containing_feature = opposite

    kind = ChangeKind.ADD if feature.many else ChangeKind.SET
    source._notify(Notification(source, feature, kind, new=target,
                                position=position))
    if opposite is not None:
        okind = ChangeKind.ADD if opposite.many else ChangeKind.SET
        # The inverse slot always appends, but rollback needs the actual
        # index to restore ordered opposite lists faithfully.
        opp_position = (_index_of(target, opposite, source)
                        if opposite.many else None)
        target._notify(Notification(target, opposite, okind, new=source,
                                    position=opp_position))


def _get_value(obj: "Element", feature: Feature) -> Any:
    if _READ_HOOK is not None:
        _READ_HOOK(obj, feature.name)
    if feature.many:
        return _slot_list(obj, feature)
    if feature.name in obj._slots:
        return obj._slots[feature.name]
    return feature.default_value()


def _set_value(obj: "Element", feature: Feature, value: Any) -> None:
    if _WRITE_HOOK is not None:
        _WRITE_HOOK(obj, feature.name)
    if _faults.ACTIVE is not None and not feature.many:
        # Many-valued assignment decomposes into per-item inserts/removes
        # which each carry their own probe; probing here too would double
        # the firing count for one logical write.
        _faults.probe("kernel.write")
    if feature.many:
        current = _slot_list(obj, feature)
        if value is current:
            return
        if not isinstance(value, (list, tuple, FeatureList)):
            raise TypeConformanceError(
                feature.name, f"collection of {feature.type_name()}", value)
        current.set(list(value))
        return
    if isinstance(feature, Reference):
        if value is None:
            current = obj._slots.get(feature.name)
            if current is not None:
                _unlink(obj, feature, current)
            return
        _link(obj, feature, value)
        return
    # single-valued attribute
    _check_mutable(obj)
    feature.check_type(value)
    # The *effective* old value is what a reader would have seen, which is
    # the default when the slot was never written — comparing against the
    # raw slot would report ``old=None`` on a first set and emit a spurious
    # notification when assigning a value equal to the default.
    if feature.name in obj._slots:
        old = obj._slots[feature.name]
    else:
        old = feature.default_value()
    if old is value or old == value:
        obj._slots[feature.name] = value
        return
    obj._slots[feature.name] = value
    kind = ChangeKind.SET if value is not None else ChangeKind.UNSET
    obj._notify(Notification(obj, feature, kind, old=old, new=value))


# ---------------------------------------------------------------------------
# Elements
# ---------------------------------------------------------------------------

class MofMeta(type):
    """Python metaclass that turns ``Element`` subclasses into metaclasses.

    Declared :class:`Feature` class attributes are harvested (in declaration
    order) into a :class:`MetaClass`, registered in the package named by the
    ``_mof_package`` class attribute (inherited if unset).
    """

    def __new__(mcls, name, bases, namespace, **kwargs):
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        if namespace.get("_mof_kernel_root", False):
            return cls
        package = namespace.get("_mof_package")
        if package is None:
            for base in cls.__mro__[1:]:
                package = getattr(base, "_mof_package", None)
                if package is not None:
                    break
        supers = []
        for base in bases:
            base_meta = base.__dict__.get("_meta") or getattr(base, "_meta", None)
            if base_meta is not None and base_meta not in supers:
                supers.append(base_meta)
        meta = MetaClass(
            name,
            package=package,
            superclasses=supers,
            abstract=bool(namespace.get("_mof_abstract", False)),
            python_class=cls,
        )
        for attr_name, attr_value in namespace.items():
            if isinstance(attr_value, Feature):
                attr_value.name = attr_name
                meta.add_feature(attr_value)
        cls._meta = meta
        return cls


class Element(ObserverMixin, metaclass=MofMeta):
    """Base class of every model element (static style).

    Provides slot storage, containment bookkeeping, reflection (``eget``,
    ``eset``...), containment-tree traversal and observer support.
    """

    _mof_kernel_root = True
    _meta: MetaClass = None  # type: ignore[assignment]

    def __init__(self, **kwargs: Any):
        object.__setattr__(self, "_slots", {})
        object.__setattr__(self, "_container", None)
        object.__setattr__(self, "_containing_feature", None)
        object.__setattr__(self, "_observers", None)
        object.__setattr__(self, "_frozen", False)
        object.__setattr__(self, "_eid", None)
        object.__setattr__(self, "_model", None)
        if self._meta is not None and self._meta.abstract:
            raise MetamodelError(
                f"cannot instantiate abstract metaclass '{self._meta.name}'"
            )
        for name, value in kwargs.items():
            feature = self.meta.find_feature(name)
            if feature is None:
                raise UnknownFeatureError(self.meta.name, name)
            _set_value(self, feature, value)

    # -- identity ----------------------------------------------------------

    @property
    def eid(self) -> str:
        """A stable per-process identifier, lazily assigned."""
        if self._eid is None:
            object.__setattr__(self, "_eid", f"e{next(_id_counter)}")
        return self._eid

    def set_eid(self, eid: str) -> None:
        """Force a specific identifier (used by deserializers)."""
        object.__setattr__(self, "_eid", eid)

    # -- reflection ----------------------------------------------------------

    @property
    def meta(self) -> MetaClass:
        return self._meta

    def eget(self, name: str) -> Any:
        return _get_value(self, self.meta.feature(name))

    def eset(self, name: str, value: Any) -> None:
        _set_value(self, self.meta.feature(name), value)

    def eunset(self, name: str) -> None:
        feature = self.meta.feature(name)
        if feature.many:
            _get_value(self, feature).clear()
        else:
            _set_value(self, feature, None)

    def eis_set(self, name: str) -> bool:
        feature = self.meta.feature(name)
        if _READ_HOOK is not None:
            _READ_HOOK(self, feature.name)
        slot = self._slots.get(feature.name)
        if feature.many:
            return bool(slot is not None and len(slot) > 0)
        return slot is not None

    def isinstance_of(self, metaclass: MetaClass) -> bool:
        return self.meta.conforms_to(metaclass)

    # -- containment tree ----------------------------------------------------

    @property
    def container(self) -> Optional["Element"]:
        if _READ_HOOK is not None:
            _READ_HOOK(self, CONTAINER_KEY)
        return self._container

    @property
    def containing_feature(self) -> Optional[Reference]:
        if _READ_HOOK is not None:
            _READ_HOOK(self, CONTAINER_KEY)
        return self._containing_feature

    def root(self) -> "Element":
        current = self
        if _READ_HOOK is not None:
            _READ_HOOK(current, CONTAINER_KEY)
        while current._container is not None:
            current = current._container
            if _READ_HOOK is not None:
                _READ_HOOK(current, CONTAINER_KEY)
        return current

    def contents(self) -> List["Element"]:
        """Directly contained elements, in feature/declaration order."""
        out: List[Element] = []
        for feature in self.meta.all_features().values():
            if not (isinstance(feature, Reference) and feature.containment):
                continue
            value = _get_value(self, feature)
            if feature.many:
                out.extend(value)
            elif value is not None:
                out.append(value)
        return out

    def all_contents(self) -> Iterator["Element"]:
        """All transitively contained elements, preorder."""
        for child in self.contents():
            yield child
            yield from child.all_contents()

    def _detach(self) -> None:
        """Remove this element from its current container slot, if any."""
        container = self._container
        feature = self._containing_feature
        if container is not None and feature is not None:
            _unlink(container, feature, self)

    def delete(self) -> None:
        """Remove from the container and break all incoming/outgoing links
        reachable through this element's own references."""
        self._detach()
        for feature in self.meta.all_features().values():
            if not isinstance(feature, Reference):
                continue
            value = _get_value(self, feature)
            if feature.many:
                for other in list(value):
                    _unlink(self, feature, other)
            elif value is not None:
                _unlink(self, feature, value)

    # -- freezing --------------------------------------------------------

    def freeze(self, recursive: bool = True) -> None:
        """Make the element (and optionally its contents) read-only."""
        object.__setattr__(self, "_frozen", True)
        if recursive:
            for child in self.contents():
                child.freeze(recursive=True)

    def unfreeze(self, recursive: bool = True) -> None:
        object.__setattr__(self, "_frozen", False)
        if recursive:
            for child in self.contents():
                child.unfreeze(recursive=True)

    # -- notification forwarding ---------------------------------------------

    def _notification_sink(self, notification: Notification) -> None:
        model = getattr(self.root(), "_model", None)
        if model is not None:
            model._element_changed(notification)

    # -- misc --------------------------------------------------------------

    def __repr__(self) -> str:
        label = ""
        name_feature = self.meta.find_feature("name") if self.meta else None
        if name_feature is not None and not name_feature.many:
            if _READ_HOOK is not None:
                # diagnostics embed reprs; a rename must invalidate them
                _READ_HOOK(self, "name")
            value = self._slots.get("name")
            if isinstance(value, str) and value:
                label = f" '{value}'"
        return f"<{self.meta.name if self.meta else type(self).__name__}{label}>"


class DynamicElement(Element):
    """An instance of a runtime-defined :class:`MetaClass`.

    Feature access works through plain attribute syntax, resolved against
    the dynamic metaclass.
    """

    _mof_kernel_root = True

    def __init__(self, meta: MetaClass, **kwargs: Any):
        object.__setattr__(self, "_dynamic_meta", meta)
        super().__init__(**kwargs)

    @property
    def meta(self) -> MetaClass:
        return self._dynamic_meta

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        meta = self.__dict__.get("_dynamic_meta")
        feature = meta.find_feature(name) if meta is not None else None
        if feature is None:
            raise AttributeError(
                f"'{meta.name if meta else '?'}' object has no feature {name!r}"
            )
        return _get_value(self, feature)

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        meta = self.__dict__.get("_dynamic_meta")
        feature = meta.find_feature(name) if meta is not None else None
        if feature is None:
            raise UnknownFeatureError(meta.name if meta else "?", name)
        _set_value(self, feature, value)

    def __repr__(self) -> str:
        label = ""
        if self.meta.find_feature("name") is not None:
            if _READ_HOOK is not None:
                _READ_HOOK(self, "name")
            value = self._slots.get("name")
            if isinstance(value, str) and value:
                label = f" '{value}'"
        return f"<dyn:{self.meta.name}{label}>"
