"""``repro.mof`` — the MOF-style metamodeling kernel (M3 layer).

Public surface:

* metamodel definition: :class:`MetaPackage`, :class:`MetaClass`,
  :class:`MetaEnum`, :class:`Attribute`, :class:`Reference`,
  :class:`Element`, :class:`DynamicElement`, the ``dynamic`` helpers and
  :class:`PackageBuilder`;
* types: ``MString``/``MInteger``/``MReal``/``MBoolean`` and
  :class:`Multiplicity` (with ``M_01``, ``M_11``, ``M_0N``, ``M_1N``);
* models: :class:`Model`, :class:`Repository`;
* validation: :func:`validate_element`, :func:`validate_tree`,
  :func:`validate_model`;
* queries: see :mod:`repro.mof.query`;
* change notification: :class:`Notification`, :class:`ChangeRecorder`;
* transactions: :func:`transaction`, :class:`Transaction`,
  :func:`current_transaction` (see :mod:`repro.mof.txn`).
"""

from .builder import ClassBuilder, PackageBuilder
from .compare import DiffKind, DiffResult, Difference, compare
from .dynamic import (
    add_attribute,
    add_reference,
    define_class,
    define_enum,
    define_package,
)
from .errors import (
    CompositionError,
    FrozenElementError,
    MetamodelError,
    MofError,
    MultiplicityError,
    RepositoryError,
    TransactionError,
    TypeConformanceError,
    UnknownFeatureError,
)
from .kernel import (
    CONTAINER_KEY,
    Attribute,
    DynamicElement,
    Element,
    Feature,
    FeatureList,
    MetaClass,
    MetaEnum,
    MetaPackage,
    Reference,
    set_read_hook,
    set_write_hook,
)
from .columns import ColumnStore, ExtentColumns
from .index import IndexDivergence, ModelIndex
from .notify import ChangeKind, ChangeRecorder, Notification, set_notify_hook
from .query import (
    all_contents,
    closure,
    cross_references,
    find_by_name,
    instances_of,
    navigate,
    path,
    referenced_elements,
    select,
)
from .repository import Model, Repository, set_root_hook
from .txn import (
    RootChange,
    Savepoint,
    Transaction,
    current_transaction,
    in_transaction,
    transaction,
)
from .types import (
    M_01,
    M_0N,
    M_11,
    M_1N,
    MBoolean,
    MInteger,
    MReal,
    MString,
    Multiplicity,
    PrimitiveType,
    UNBOUNDED,
    primitive_by_name,
)
from .validate import (
    Diagnostic,
    Severity,
    ValidationReport,
    model_path,
    validate_element,
    validate_invariants,
    validate_model,
    validate_tree,
)

__all__ = [
    "Attribute", "CONTAINER_KEY", "set_read_hook", "set_write_hook",
    "set_notify_hook",
    "DiffKind", "DiffResult", "Difference", "compare", "ChangeKind", "ChangeRecorder", "ClassBuilder",
    "ColumnStore", "ExtentColumns",
    "CompositionError", "Diagnostic", "DynamicElement", "Element",
    "Feature", "FeatureList", "FrozenElementError", "IndexDivergence",
    "M_01", "M_0N",
    "M_11", "M_1N", "MBoolean", "MInteger", "MReal", "MString",
    "MetaClass", "MetaEnum", "MetaPackage", "MetamodelError", "Model",
    "ModelIndex",
    "MofError", "Multiplicity", "MultiplicityError", "Notification",
    "PackageBuilder", "PrimitiveType", "Reference", "Repository",
    "RepositoryError", "RootChange", "Savepoint", "Severity",
    "Transaction", "TransactionError", "TypeConformanceError", "UNBOUNDED",
    "UnknownFeatureError", "ValidationReport", "add_attribute",
    "add_reference", "all_contents", "closure", "cross_references",
    "current_transaction", "define_class", "define_enum", "define_package",
    "find_by_name", "in_transaction",
    "instances_of", "model_path", "navigate", "path", "primitive_by_name",
    "referenced_elements", "select", "set_root_hook", "transaction",
    "validate_element",
    "validate_invariants", "validate_model", "validate_tree",
]
