"""Traversal and query helpers over containment trees.

These are the workhorse operations every other subsystem (OCL, metrics,
transformations) uses to walk models.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Set, Union

from .kernel import Element, MetaClass, Reference


def all_contents(element: Element, include_self: bool = False) -> Iterator[Element]:
    """Preorder traversal of the containment tree below *element*."""
    if include_self:
        yield element
    yield from element.all_contents()


def instances_of(root: Element, metaclass: Union[MetaClass, type],
                 include_self: bool = True) -> List[Element]:
    """All elements under *root* conforming to *metaclass*."""
    if isinstance(metaclass, type):
        metaclass = metaclass._meta
    return [e for e in all_contents(root, include_self=include_self)
            if e.meta.conforms_to(metaclass)]


def find_by_name(root: Element, name: str,
                 metaclass: Optional[Union[MetaClass, type]] = None
                 ) -> Optional[Element]:
    """First element under *root* whose ``name`` attribute equals *name*."""
    candidates: Iterable[Element]
    if metaclass is not None:
        candidates = instances_of(root, metaclass)
    else:
        candidates = all_contents(root, include_self=True)
    for element in candidates:
        feature = element.meta.find_feature("name")
        if feature is not None and not feature.many:
            if element.eget("name") == name:
                return element
    return None


def select(root: Element,
           predicate: Callable[[Element], bool]) -> List[Element]:
    """All elements under *root* (inclusive) satisfying *predicate*."""
    return [e for e in all_contents(root, include_self=True) if predicate(e)]


def closure(seeds: Iterable[Element],
            step: Callable[[Element], Iterable[Element]]) -> List[Element]:
    """Transitive closure of *step* starting from *seeds* (seeds excluded
    unless reachable), in discovery order."""
    seen: Set[int] = {id(s) for s in seeds}
    frontier: List[Element] = list(seeds)
    out: List[Element] = []
    while frontier:
        current = frontier.pop(0)
        for neighbour in step(current):
            if id(neighbour) not in seen:
                seen.add(id(neighbour))
                out.append(neighbour)
                frontier.append(neighbour)
    return out


def referenced_elements(element: Element,
                        include_containment: bool = False) -> List[Element]:
    """Elements *element* points at through its (non-containment) references."""
    out: List[Element] = []
    for feature in element.meta.all_features().values():
        if not isinstance(feature, Reference):
            continue
        if feature.containment and not include_containment:
            continue
        value = element.eget(feature.name)
        if feature.many:
            out.extend(value)
        elif value is not None:
            out.append(value)
    return out


def cross_references(root: Element) -> List[tuple]:
    """All (source, feature, target) non-containment links in the tree."""
    out = []
    for element in all_contents(root, include_self=True):
        for feature in element.meta.all_features().values():
            if not isinstance(feature, Reference) or feature.containment:
                continue
            value = element.eget(feature.name)
            targets = list(value) if feature.many else (
                [value] if value is not None else [])
            for target in targets:
                out.append((element, feature, target))
    return out


def path(element: Element) -> str:
    """A human-readable containment path like ``pkg/Class/attr``."""
    parts: List[str] = []
    current: Optional[Element] = element
    while current is not None:
        name_feature = current.meta.find_feature("name")
        if name_feature is not None and not name_feature.many:
            label = current.eget("name") or current.meta.name
        else:
            label = current.meta.name
        parts.append(str(label))
        current = current.container
    return "/".join(reversed(parts))


def navigate(element: Element, dotted: str) -> Any:
    """Navigate a dotted feature path, e.g. ``"container.name"``.

    Many-valued intermediate steps flatten (OCL ``collect`` semantics).
    """
    current: Any = element
    for segment in dotted.split("."):
        if current is None:
            return None
        if isinstance(current, (list, tuple)) or hasattr(current, "_items"):
            flattened: List[Any] = []
            for item in current:
                value = item.eget(segment)
                if hasattr(value, "_items") or isinstance(value, (list, tuple)):
                    flattened.extend(value)
                elif value is not None:
                    flattened.append(value)
            current = flattened
        else:
            current = current.eget(segment)
    return current
