"""Opt-in columnar (struct-of-arrays) backing store per metaclass extent.

``Session.check`` over a large model is a per-object pointer chase: every
element is visited through ``eget`` (descriptor dispatch, hook tests,
``FeatureList`` wrappers) once per feature.  A :class:`ColumnStore`
re-materialises each **exact-metaclass extent** as one
:class:`ExtentColumns` block — per-feature columns over the extent's
elements, in extent (insertion) order:

* single-valued attribute → a flat list of *effective* values (the slot
  value, or the feature default), compacted to an ``array('q')`` /
  ``array('d')`` when every value is a plain int/float;
* single-valued reference → a flat list of targets (``None`` when unset);
* many-valued reference  → a list of target tuples;
* many-valued attribute  → an ``array('l')`` of lengths (structural checks
  and ``->size()`` only need the counts).

``allInstances``-heavy invariants and the structural checks then become
tight loops over contiguous columns instead of per-object ``get()`` calls
(see :meth:`ColumnStore.conforming_values`, the bulk fast path the OCL
closure compiler uses, and :meth:`ColumnStore.scan_structural`).

Staleness protocol — the same discipline as :class:`~repro.mof.index.ModelIndex`:

* Blocks are built lazily on first read and **invalidated on write**: the
  store observes the model's notification stream and marks the mutated
  element's exact metaclass stale (plus, for containment changes, every
  metaclass in the attached/detached subtree — those elements enter or
  leave their extents).  Invalidation walks raw ``_slots`` so it never
  feeds the dependency-tracking read hook.
* ``Model.add_root``/``remove_root`` call :meth:`root_added` /
  :meth:`root_removed` directly (root changes emit no notification).
* While a dependency read hook is installed (``kernel._READ_HOOK``), all
  bulk reads answer ``None`` so callers fall back to the per-object path
  the incremental engine can observe.

Columns hold **no authority**: the object slots stay the single source of
truth, a stale block is simply rebuilt from the extent on next read, and
:meth:`ColumnStore.verify` cross-checks every built column against the
per-object reads it replaced (the oracle the property tests use).
"""

from __future__ import annotations

import sys
from array import array
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from . import kernel as _kernel
from .kernel import Attribute, Element, Feature, MetaClass, Reference
from .notify import ChangeKind, Notification

if TYPE_CHECKING:                                   # pragma: no cover
    from .repository import Model

_EMPTY: Tuple[Any, ...] = ()

#: column kinds, per feature shape
ATTR1 = "attr1"     # single-valued attribute: effective values
REF1 = "ref1"       # single-valued reference: target or None
REFN = "refN"       # many-valued reference: tuple of targets
LENN = "lenN"       # many-valued attribute: lengths only


def _raw_single(element: Element, feature: Feature, default: Any) -> Any:
    # the effective value _get_value would return, without firing hooks
    slots = element._slots
    name = feature.name
    if name in slots:
        return slots[name]
    return default


def _raw_items(element: Element, feature: Feature) -> Tuple[Any, ...]:
    slot = element._slots.get(feature.name)
    if slot is None:
        return _EMPTY
    return tuple(slot._items)


class ExtentColumns:
    """The struct-of-arrays image of one exact-metaclass extent."""

    __slots__ = ("meta", "built", "elements", "columns", "kinds")

    def __init__(self, meta: MetaClass):
        self.meta = meta
        self.built = False
        self.elements: List[Element] = []
        self.columns: Dict[str, Any] = {}
        self.kinds: Dict[str, str] = {}

    def build(self, elements: List[Element]) -> None:
        self.elements = elements
        columns: Dict[str, Any] = {}
        kinds: Dict[str, str] = {}
        for feature in self.meta.all_features().values():
            name = feature.name
            if feature.many:
                if isinstance(feature, Reference):
                    columns[name] = [_raw_items(e, feature)
                                     for e in elements]
                    kinds[name] = REFN
                else:
                    columns[name] = array(
                        "l", [len(_raw_items(e, feature))
                              for e in elements])
                    kinds[name] = LENN
            elif isinstance(feature, Reference):
                columns[name] = [_raw_single(e, feature, None)
                                 for e in elements]
                kinds[name] = REF1
            else:
                default = feature.default_value()
                values = [_raw_single(e, feature, default)
                          for e in elements]
                columns[name] = _compact_attribute(feature, values)
                kinds[name] = ATTR1
        self.columns = columns
        self.kinds = kinds
        self.built = True

    def nbytes(self) -> int:
        """Approximate heap footprint of the columns (arrays exactly,
        pointer columns by their list header)."""
        total = 0
        for column in self.columns.values():
            if isinstance(column, array):
                total += column.itemsize * len(column) + 64
            else:
                total += sys.getsizeof(column)
        return total

    def __repr__(self) -> str:
        return (f"<ExtentColumns {self.meta.name} rows={len(self.elements)} "
                f"built={self.built}>")


def _compact_attribute(feature: Attribute, values: List[Any]) -> Any:
    """Pack an all-int/all-float attribute column into a typed array.

    ``bool`` is excluded (``type(v) is int`` test): ``truthy`` must keep
    raising on non-Boolean values, and an ``array('q')`` would launder
    ``True`` into ``1``.
    """
    type_name = getattr(feature.type, "name", "")
    try:
        if type_name == "Integer" \
                and all(type(v) is int for v in values):
            return array("q", values)
        if type_name == "Real" \
                and all(type(v) is float for v in values):
            return array("d", values)
    except OverflowError:       # ints beyond 64 bits stay boxed
        pass
    return values


class ColumnStore:
    """Per-extent columns over one :class:`~repro.mof.repository.Model`,
    invalidated from change notifications and rebuilt lazily on read.

    Created via ``Model.enable_columns()``; read through
    :meth:`conforming_values` (OCL bulk path) and
    :meth:`scan_structural` (structural suspect scan)."""

    def __init__(self, model: "Model"):
        self.model = model
        self._index = model.index()
        self._blocks: Dict[MetaClass, ExtentColumns] = {}
        self._built = 0
        self.rebuilds = 0
        self.invalidations = 0
        self.bulk_reads = 0
        model.observe(self._on_change)

    def detach(self) -> None:
        """Stop observing the model (``Model.disable_columns``)."""
        self.model.unobserve(self._on_change)
        self._blocks.clear()
        self._built = 0

    # -- staleness intake --------------------------------------------------

    def _on_change(self, notification: Notification) -> None:
        if self._built == 0:
            return
        feature = notification.feature
        self._invalidate_meta(notification.element.meta)
        if not getattr(feature, "containment", False):
            return
        kind = notification.kind
        if kind is ChangeKind.MOVE:
            # reorder within one container: membership and values of the
            # moved subtree are untouched, only the container's column
            # (already invalidated above) changed
            return
        moved = (notification.new
                 if kind in (ChangeKind.ADD, ChangeKind.SET)
                 else notification.old)
        if isinstance(moved, Element):
            self._invalidate_tree(moved)

    def root_added(self, root: Element) -> None:
        if self._built:
            self._invalidate_tree(root)

    def root_removed(self, root: Element) -> None:
        if self._built:
            self._invalidate_tree(root)

    def _invalidate_meta(self, meta: MetaClass) -> None:
        block = self._blocks.get(meta)
        if block is not None and block.built:
            block.built = False
            self._built -= 1
            self.invalidations += 1

    def _invalidate_tree(self, element: Element) -> None:
        # raw containment walk: must not fire the read hook (column
        # maintenance is bookkeeping, not a tracked model read)
        stack = [element]
        while stack:
            node = stack.pop()
            self._invalidate_meta(node.meta)
            if self._built == 0:
                return
            for feature in node.meta.all_features().values():
                if not (isinstance(feature, Reference)
                        and feature.containment):
                    continue
                if feature.many:
                    slot = node._slots.get(feature.name)
                    if slot is not None:
                        stack.extend(slot._items)
                else:
                    child = node._slots.get(feature.name)
                    if child is not None:
                        stack.append(child)

    # -- block access ------------------------------------------------------

    def extent_metaclasses(self) -> List[MetaClass]:
        """Every exact metaclass with instances in the model, from the
        extent index."""
        return list(self._index._extent.keys())

    def block(self, meta: MetaClass) -> ExtentColumns:
        """The (freshly built) column block for *meta*'s exact extent."""
        block = self._blocks.get(meta)
        if block is None:
            block = ExtentColumns(meta)
            self._blocks[meta] = block
        if not block.built:
            block.build(self._index.instances_of(meta, exact=True))
            self._built += 1
            self.rebuilds += 1
        return block

    # -- bulk reads --------------------------------------------------------

    def conforming_values(self, metaclass: MetaClass,
                          name: str) -> Optional[List[Any]]:
        """The effective values of single-valued attribute *name* over all
        elements conforming to *metaclass*, in ``instances_of`` order — or
        ``None`` when the column path does not apply (read hook active,
        no such feature, many-valued/reference feature, or a subclass
        redefining the feature with a different shape)."""
        if _kernel._READ_HOOK is not None:
            return None
        feature = metaclass.find_feature(name)
        if not isinstance(feature, Attribute) or feature.many:
            return None
        main = self.block(metaclass)
        if main.kinds.get(name) != ATTR1:
            return None
        self.bulk_reads += 1
        subclasses = metaclass.all_subclasses()
        if not subclasses:
            return main.columns[name]
        out = list(main.columns[name])
        for sub in subclasses:
            block = self.block(sub)
            if block.kinds.get(name) != ATTR1:
                return None
            out.extend(block.columns[name])
        return out

    # -- structural suspect scan ------------------------------------------

    def scan_structural(self) -> Dict[int, Element]:
        """Elements that *may* carry a structural diagnostic (multiplicity,
        opposite, containment), as ``{id(e): e}``.

        This is a sound over-approximation computed from columns alone:
        every element ``validate_element`` would flag is in the result, so
        an empty result proves the model structurally clean without a
        tree walk, and a non-empty one bounds the exact re-validation to
        the suspects."""
        flagged: Dict[int, Element] = {}
        for meta in self.extent_metaclasses():
            block = self.block(meta)
            elements = block.elements
            if not elements:
                continue
            for feature in meta.all_features().values():
                name = feature.name
                kind = block.kinds[name]
                column = block.columns[name]
                self._scan_multiplicity(feature, kind, column, elements,
                                        flagged)
                if isinstance(feature, Reference):
                    if feature.opposite is not None:
                        self._scan_opposites(feature, kind, column,
                                             elements, flagged)
                    if feature.containment:
                        self._scan_containment(kind, column, elements,
                                               flagged)
        return flagged

    @staticmethod
    def _scan_multiplicity(feature: Feature, kind: str, column: Any,
                           elements: List[Element],
                           flagged: Dict[int, Element]) -> None:
        multiplicity = feature.multiplicity
        if kind in (ATTR1, REF1):
            # a single slot holds 0 or 1 values and upper >= 1 always
            # accepts 1, so the only violation is None under lower >= 1
            if multiplicity.lower >= 1 and not isinstance(column, array):
                for row, value in enumerate(column):
                    if value is None:
                        element = elements[row]
                        flagged[id(element)] = element
            return
        lower, upper = multiplicity.lower, multiplicity.upper
        if lower == 0 and upper is None:
            return
        if kind == REFN:
            for row, targets in enumerate(column):
                count = len(targets)
                if count < lower or (upper is not None and count > upper):
                    element = elements[row]
                    flagged[id(element)] = element
        else:
            for row, count in enumerate(column):
                if count < lower or (upper is not None and count > upper):
                    element = elements[row]
                    flagged[id(element)] = element

    @staticmethod
    def _scan_opposites(feature: Reference, kind: str, column: Any,
                        elements: List[Element],
                        flagged: Dict[int, Element]) -> None:
        opposite = feature.opposite
        opp_name = opposite.name
        opp_many = opposite.many
        if kind == REF1:
            rows = ((row, (target,)) for row, target in enumerate(column)
                    if target is not None)
        else:
            rows = enumerate(column)
        for row, targets in rows:
            element = elements[row]
            for target in targets:
                slot = target._slots.get(opp_name)
                if opp_many:
                    ok = slot is not None and any(
                        v is element or v == element for v in slot._items)
                else:
                    ok = slot is element
                if not ok:
                    flagged[id(element)] = element
                    break

    @staticmethod
    def _scan_containment(kind: str, column: Any, elements: List[Element],
                          flagged: Dict[int, Element]) -> None:
        if kind == REF1:
            for row, child in enumerate(column):
                if child is not None and child._container is not elements[row]:
                    element = elements[row]
                    flagged[id(element)] = element
        else:
            for row, children in enumerate(column):
                element = elements[row]
                for child in children:
                    if child._container is not element:
                        flagged[id(element)] = element
                        break

    # -- oracle + introspection -------------------------------------------

    def verify(self) -> List[str]:
        """Cross-check every built block against per-object reads; return
        a list of discrepancies (the property-test oracle)."""
        problems: List[str] = []
        for meta, block in self._blocks.items():
            if not block.built:
                continue
            expected = self._index.instances_of(meta, exact=True)
            if [id(e) for e in expected] != [id(e) for e in block.elements]:
                problems.append(
                    f"{meta.name}: row set diverged "
                    f"({len(block.elements)} rows vs {len(expected)} "
                    f"extent elements)")
                continue
            for feature in meta.all_features().values():
                name = feature.name
                kind = block.kinds[name]
                column = block.columns[name]
                for row, element in enumerate(block.elements):
                    value = element.eget(name)
                    if kind == LENN:
                        expected_value: Any = len(value)
                    elif kind == REFN:
                        expected_value = tuple(value)
                    else:
                        expected_value = value
                    got = column[row]
                    if not (got is expected_value or got == expected_value):
                        problems.append(
                            f"{meta.name}.{name}[{row}] ({element!r}): "
                            f"column holds {got!r}, object holds "
                            f"{expected_value!r}")
        return problems

    def stats(self) -> Dict[str, Any]:
        per_extent: Dict[str, Dict[str, Any]] = {}
        total_bytes = 0
        for meta, block in self._blocks.items():
            nbytes = block.nbytes() if block.built else 0
            total_bytes += nbytes
            per_extent[meta.name] = {
                "rows": len(block.elements) if block.built else 0,
                "columns": len(block.columns) if block.built else 0,
                "bytes": nbytes,
                "built": block.built,
            }
        return {
            "enabled": True,
            "extents": len(self._blocks),
            "built": self._built,
            "bytes": total_bytes,
            "rebuilds": self.rebuilds,
            "invalidations": self.invalidations,
            "bulk_reads": self.bulk_reads,
            "per_extent": per_extent,
        }

    def __repr__(self) -> str:
        return (f"<ColumnStore {self.model.uri} blocks={len(self._blocks)} "
                f"built={self._built}>")
