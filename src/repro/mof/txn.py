"""ACID-style transactions over the kernel's notification stream.

The kernel already reports every successful high-level mutation as a
:class:`~repro.mof.notify.Notification` carrying the old value and, for
ordered features, the position.  That record is exactly an undo log: each
change kind has a well-defined inverse (re-link what was unlinked at its
old index, restore the previous attribute value, move an element back).
A :class:`Transaction` journals the stream through the process-wide
notify hook and replays inverses in reverse order on rollback.

Usage::

    with transaction(repository):
        pim.classes.append(broken)
        rule.apply(...)            # raises -> every edit above is undone

Properties and limitations:

* **Atomicity** is at the granularity of kernel operations: an operation
  that raises (type error, frozen element, containment cycle, injected
  fault) has already guaranteed not to mutate anything, and completed
  operations are undone by rollback.  There is no isolation — this is a
  single-writer undo journal, not a concurrency mechanism.
* **Nesting**: entering ``transaction()`` inside an open transaction
  creates a savepoint; an inner rollback unwinds to the savepoint only.
  Explicit :meth:`Transaction.savepoint` / :meth:`Transaction.rollback_to`
  give finer control.
* **Scope** is advisory: the journal hooks are process-wide (they chain
  any previously installed notify hook, e.g. the observability layer's,
  so both see the stream).  The ``scope`` argument documents intent and
  is carried on the transaction for commit listeners.
* Root attachment (``Model.add_root``/``remove_root``) is not a feature
  write and bypasses notifications; it is journaled through the
  dedicated root hook (:func:`repro.mof.repository.set_root_hook`).
* ``freeze``/``unfreeze`` are not journaled; freezing an element after
  editing it inside an open transaction makes that edit irreversible and
  rollback will report it via :class:`TransactionError`.

Commit listeners registered with :func:`on_commit` fire once per
*outermost* commit with the committed transaction — the hook the
incremental engine and index maintenance use to run once per logical
edit burst instead of once per notification.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, NamedTuple, Optional, Union

from .. import faults as _faults
from . import kernel as _kernel
from . import notify as _notify
from . import repository as _repository
from .errors import TransactionError
from .kernel import Element, FeatureList, Reference
from .notify import ChangeKind, Notification


class RootChange(NamedTuple):
    """Journal entry for ``Model.add_root`` / ``remove_root``."""

    model: Any
    element: Element
    added: bool


JournalEntry = Union[Notification, RootChange]

#: Stack of open transactions (outermost first).  Process-wide by design:
#: the journal taps process-wide hooks, so there is exactly one journal.
_STACK: List["Transaction"] = []

#: True while a rollback replays inverses — replay mutations must not be
#: journaled or they would undo themselves.
_REPLAYING = False

_COMMIT_LISTENERS: List[Callable[["Transaction"], None]] = []
_ROLLBACK_LISTENERS: List[Callable[["Transaction"], None]] = []


def on_commit(listener: Callable[["Transaction"], None]) -> None:
    """Call *listener(txn)* after every outermost commit."""
    _COMMIT_LISTENERS.append(listener)


def on_rollback(listener: Callable[["Transaction"], None]) -> None:
    """Call *listener(txn)* after every rollback (outermost or savepoint
    unwind via exception)."""
    _ROLLBACK_LISTENERS.append(listener)


def remove_listener(listener: Callable[["Transaction"], None]) -> None:
    """Drop *listener* from both listener lists (no-op if absent)."""
    if listener in _COMMIT_LISTENERS:
        _COMMIT_LISTENERS.remove(listener)
    if listener in _ROLLBACK_LISTENERS:
        _ROLLBACK_LISTENERS.remove(listener)


def current_transaction() -> Optional["Transaction"]:
    """The innermost open transaction, or None."""
    return _STACK[-1] if _STACK else None


def in_transaction() -> bool:
    return bool(_STACK)


# ---------------------------------------------------------------------------
# Inverse application
# ---------------------------------------------------------------------------

def _clamp(position: Optional[int], length: int) -> Optional[int]:
    if position is None:
        return None
    return max(0, min(position, length))


def _invert(entry: JournalEntry) -> None:
    """Apply the inverse of one journal entry.

    Every branch is guarded to be idempotent against the *current* state:
    link/unlink operations notify both ends, so the journal holds two
    entries per bidirectional change and the second inverse finds its work
    already done (except for position restoration, which only the owning
    side's entry can do faithfully).
    """
    if isinstance(entry, RootChange):
        model, element, added = entry
        if added:
            if element in model.roots:
                model.remove_root(element)
        else:
            if element not in model.roots and element.container is None:
                model.add_root(element)
        return

    element, feature, kind = entry.element, entry.feature, entry.kind
    is_ref = isinstance(feature, Reference) and feature.is_reference

    if kind is ChangeKind.SET or kind is ChangeKind.UNSET:
        if is_ref:
            current = element._slots.get(feature.name)
            if entry.old is None:
                if current is not None and current is entry.new:
                    _kernel._unlink(element, feature, current)
            elif current is not entry.old:
                _kernel._link(element, feature, entry.old)
        else:
            _kernel._set_value(element, feature, entry.old)
        return

    slot = _kernel._slot_list(element, feature)

    if kind is ChangeKind.ADD:
        if entry.new in slot:
            if is_ref:
                _kernel._unlink(element, feature, entry.new)
            else:
                slot.remove(entry.new)
        return

    if kind is ChangeKind.REMOVE:
        if entry.old in slot:
            # the other end's inverse already re-linked us — but appended;
            # restore the recorded index
            if feature.ordered and entry.position is not None:
                index = slot.index(entry.old)
                target = _clamp(entry.position, len(slot) - 1)
                if target is not None and index != target:
                    slot.move(target, entry.old)
        else:
            position = _clamp(entry.position, len(slot))
            if is_ref:
                _kernel._link(element, feature, entry.old, position=position)
            elif position is None:
                slot.append(entry.old)
            else:
                slot.insert(position, entry.old)
        return

    if kind is ChangeKind.MOVE:
        # forward: old=old_index, new=value, position=new_index
        if entry.new in slot:
            target = _clamp(entry.old, len(slot) - 1)
            if target is not None and slot.index(entry.new) != target:
                slot.move(target, entry.new)
        return

    raise TransactionError(f"journal holds unknown change kind {kind!r}")


def _replay_inverse(journal: List[JournalEntry], base: int) -> None:
    """Undo ``journal[base:]`` newest-first and truncate the journal.

    Fault injection is disarmed during replay: recovery is the machinery
    under test, not a fault site — a chaos run measures whether rollback
    restores the model, which is unanswerable if the probe re-fires inside
    the restoration itself.
    """
    global _REPLAYING
    failures: List[str] = []
    previous_plan = _faults.install(None)
    _REPLAYING = True
    try:
        for entry in reversed(journal[base:]):
            try:
                _invert(entry)
            except Exception as exc:  # noqa: BLE001 - collected, re-raised
                failures.append(f"{entry!r}: {exc}")
    finally:
        _REPLAYING = False
        _faults.install(previous_plan)
        del journal[base:]
    if failures:
        raise TransactionError(
            "rollback could not fully restore pre-transaction state",
            failures)


# ---------------------------------------------------------------------------
# The transaction object
# ---------------------------------------------------------------------------

class Savepoint(NamedTuple):
    txn: "Transaction"
    index: int


class Transaction:
    """One open undo scope over the process-wide journal.

    Created by :func:`transaction`; the outermost transaction owns the
    journal list and the hook installation, nested ones share it and mark
    their base offset.
    """

    def __init__(self, scope: Any = None,
                 parent: Optional["Transaction"] = None):
        self.scope = scope
        self.parent = parent
        self.journal: List[JournalEntry] = \
            parent.journal if parent is not None else []
        self._base = len(self.journal)
        self.state = "open"          # open | committed | rolled-back
        self._commit_hooks: List[Callable[["Transaction"], None]] = []
        self._rollback_hooks: List[Callable[["Transaction"], None]] = []
        self._saved_notify = None
        self._saved_root = None

    # -- journal taps -----------------------------------------------------

    def _install_hooks(self) -> None:
        def journal_notify(notification: Notification,
                           _journal=self.journal) -> None:
            if not _REPLAYING:
                _journal.append(notification)
            if self._saved_notify is not None:
                self._saved_notify(notification)

        def journal_root(model, element, added,
                         _journal=self.journal) -> None:
            if not _REPLAYING:
                _journal.append(RootChange(model, element, added))
            if self._saved_root is not None:
                self._saved_root(model, element, added)

        self._saved_notify = _notify.set_notify_hook(journal_notify)
        self._saved_root = _repository.set_root_hook(journal_root)

    def _uninstall_hooks(self) -> None:
        _notify.set_notify_hook(self._saved_notify)
        _repository.set_root_hook(self._saved_root)
        self._saved_notify = None
        self._saved_root = None

    # -- user API ---------------------------------------------------------

    @property
    def op_count(self) -> int:
        """Journal entries recorded within this transaction's scope."""
        return len(self.journal) - self._base

    def touched_elements(self) -> List[Element]:
        """The distinct elements this transaction's journal touched, in
        first-touch order (both endpoints of bidirectional changes).

        The model server uses this for conflict/watch payloads: a
        rejected ``edit-txn`` can name exactly what the winning
        transaction changed, and a committed one can push a precise
        invalidation summary to watching clients.
        """
        seen: dict = {}
        for entry in self.journal[self._base:]:
            if isinstance(entry, RootChange):
                candidates = (entry.element,)
            else:
                candidates = (entry.element, entry.old, entry.new)
            for candidate in candidates:
                if isinstance(candidate, Element):
                    seen.setdefault(id(candidate), candidate)
        return list(seen.values())

    def on_commit(self, hook: Callable[["Transaction"], None]) -> None:
        """Run *hook(self)* when this transaction commits."""
        self._commit_hooks.append(hook)

    def on_rollback(self, hook: Callable[["Transaction"], None]) -> None:
        """Run *hook(self)* when this transaction rolls back."""
        self._rollback_hooks.append(hook)

    def savepoint(self) -> Savepoint:
        """Mark the current journal position for a partial rollback."""
        self._check_open()
        return Savepoint(self, len(self.journal))

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Undo every change made since *savepoint*; the transaction
        stays open."""
        self._check_open()
        if savepoint.txn is not self:
            raise TransactionError(
                "savepoint belongs to a different transaction")
        if savepoint.index < self._base \
                or savepoint.index > len(self.journal):
            raise TransactionError("savepoint is no longer valid")
        _replay_inverse(self.journal, savepoint.index)

    def commit(self) -> None:
        """Close the transaction keeping its changes."""
        self._finish("committed")
        for hook in self._commit_hooks:
            hook(self)
        if self.parent is None:
            for listener in tuple(_COMMIT_LISTENERS):
                listener(self)
        self._record_metrics("commit")

    def rollback(self) -> None:
        """Undo every change made inside this transaction and close it."""
        ops = self.op_count
        try:
            _replay_inverse(self.journal, self._base)
        finally:
            self._finish("rolled-back")
        for hook in self._rollback_hooks:
            hook(self)
        for listener in tuple(_ROLLBACK_LISTENERS):
            listener(self)
        self._record_metrics("rollback", ops)

    # -- internals --------------------------------------------------------

    def _check_open(self) -> None:
        if self.state != "open":
            raise TransactionError(
                f"transaction is already {self.state}")

    def _finish(self, state: str) -> None:
        self._check_open()
        if current_transaction() is not self:
            raise TransactionError(
                "transactions must finish innermost-first")
        self.state = state
        _STACK.pop()
        if self.parent is None:
            self._uninstall_hooks()

    def _record_metrics(self, outcome: str, undone: int = 0) -> None:
        try:
            from ..obs import metrics as _metrics
            from ..obs import trace as _trace
        except ImportError:          # pragma: no cover - obs always ships
            return
        if not _trace.ON:
            return
        registry = _metrics.REGISTRY
        registry.counter(
            "txn.finished", help="transactions finished",
            outcome=outcome).inc()
        registry.counter(
            "txn.ops.journaled",
            help="journal entries recorded in finished transactions").inc(
                self.op_count if outcome == "commit" else undone)

    def __repr__(self) -> str:
        nested = " nested" if self.parent is not None else ""
        return (f"<Transaction {self.state}{nested} "
                f"ops={self.op_count}>")


@contextmanager
def transaction(scope: Any = None) -> Iterator[Transaction]:
    """Open a transaction (or, nested, a savepoint scope) over *scope*.

    Commits on normal exit; on exception rolls back every journaled change
    and re-raises the original exception.  A :class:`TransactionError`
    raised *by the rollback itself* supersedes it — a half-restored model
    must never fail silently.
    """
    parent = current_transaction()
    txn = Transaction(scope, parent=parent)
    if parent is None:
        txn._install_hooks()
    _STACK.append(txn)
    try:
        yield txn
    except BaseException:
        if txn.state == "open":
            txn.rollback()
        raise
    else:
        if txn.state == "open":
            txn.commit()
