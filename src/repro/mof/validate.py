"""Structural validation of models against their metamodels.

Mutation-time checks (type conformance, upper bounds, containment cycles)
are enforced eagerly by the kernel; this module performs the *whole-model*
checks that can only be decided once construction is finished: lower bounds,
required attributes, opposite integrity, and single-container discipline —
plus any OCL invariants registered on the metaclasses.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

from .kernel import Attribute, Element, Feature, Reference
from .repository import Model


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


def model_path(element: Any) -> str:
    """A stable, human-readable location of *element* in its model: the
    containment chain of names (metaclass name where unnamed), joined
    with ``/``.  Works for any kernel element; non-elements yield ""."""
    if not isinstance(element, Element):
        return ""
    parts: List[str] = []
    node: Optional[Element] = element
    while isinstance(node, Element):
        try:
            label = node.eget("name") if "name" in node.meta.all_features() \
                else ""
        except Exception:
            label = ""
        parts.append(label or node.meta.name)
        node = node.container
    return "/".join(reversed(parts))


@dataclass
class Diagnostic:
    """One finding — the record shared by every checker in the toolchain.

    The structural validator, the UML well-formedness rules and the
    :mod:`repro.analysis` lint engine all emit this same shape: a
    severity, a stable rule ``code`` (e.g. ``OCL001``, ``SM003``,
    ``uml-unique-name``), the offending element plus its containment
    ``path``, the message, and an optional fix ``hint``.

    Cross-diagram findings (the ``XD`` consistency rules) involve *two*
    model locations — e.g. a message and the state machine that cannot
    accept it.  ``related``/``related_path`` carry that secondary
    endpoint; both default empty so single-location checkers are
    unaffected.
    """

    severity: Severity
    element: Any
    message: str
    feature: Optional[Feature] = None
    code: str = ""
    path: str = ""
    hint: str = ""
    related: Any = None
    related_path: str = ""

    def __str__(self) -> str:
        where = f" [{self.feature.name}]" if self.feature else ""
        return f"{self.severity.value}: {self.element!r}{where}: {self.message}"

    def render(self) -> str:
        """The lint-style one-liner: ``severity code path: message``."""
        code = f" {self.code}" if self.code else ""
        where = self.path or repr(self.element)
        text = f"{self.severity.value}{code} {where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        if self.related is not None:
            text += f" [with {self.related_path or repr(self.related)}]"
        return text


@dataclass
class ValidationReport:
    """All diagnostics from one validation run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def add(self, severity: Severity, element: Any, message: str,
            feature: Optional[Feature] = None, code: str = "",
            hint: str = "") -> None:
        self.diagnostics.append(
            Diagnostic(severity, element, message, feature, code,
                       path=model_path(element), hint=hint))

    def extend(self, other: "ValidationReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def __str__(self) -> str:
        if not self.diagnostics:
            return "validation: ok"
        return "\n".join(str(d) for d in self.diagnostics)


def _check_multiplicities(element: Element, report: ValidationReport) -> None:
    for feature in element.meta.all_features().values():
        value = element.eget(feature.name)
        count = len(value) if feature.many else (0 if value is None else 1)
        if not feature.multiplicity.accepts_count(count):
            report.add(
                Severity.ERROR, element,
                f"multiplicity [{feature.multiplicity}] violated: "
                f"{count} value(s) present",
                feature=feature, code="multiplicity")


def _check_opposites(element: Element, report: ValidationReport) -> None:
    for feature in element.meta.all_features().values():
        if not isinstance(feature, Reference) or feature.opposite is None:
            continue
        opposite = feature.opposite
        value = element.eget(feature.name)
        targets = list(value) if feature.many else (
            [value] if value is not None else [])
        for target in targets:
            back = target.eget(opposite.name)
            holds = (element in back) if opposite.many else (back is element)
            if not holds:
                report.add(
                    Severity.ERROR, element,
                    f"opposite inconsistency: {target!r}.{opposite.name} "
                    f"does not point back",
                    feature=feature, code="opposite")


def _check_containment(element: Element, report: ValidationReport) -> None:
    for child in element.contents():
        if child.container is not element:
            report.add(
                Severity.ERROR, element,
                f"containment bookkeeping broken for child {child!r}",
                code="containment")


def _check_invariants(element: Element, report: ValidationReport) -> None:
    for metaclass in [element.meta] + element.meta.all_superclasses():
        for invariant in metaclass.invariants:
            try:
                passed = invariant.holds(element)
            except Exception as exc:  # invariant itself is broken
                report.add(
                    Severity.ERROR, element,
                    f"invariant '{invariant.name}' raised: {exc}",
                    code="invariant-error")
                continue
            if not passed:
                report.add(
                    invariant.severity, element,
                    f"invariant '{invariant.name}' violated"
                    + (f": {invariant.message}" if invariant.message else ""),
                    code="invariant")


def validate_element(element: Element,
                     check_invariants: bool = True) -> ValidationReport:
    """Validate a single element (not its contents)."""
    report = ValidationReport()
    _check_multiplicities(element, report)
    _check_opposites(element, report)
    _check_containment(element, report)
    if check_invariants:
        _check_invariants(element, report)
    return report


def validate_tree(root: Element,
                  check_invariants: bool = True) -> ValidationReport:
    """Validate *root* and everything it contains."""
    report = ValidationReport()
    report.extend(validate_element(root, check_invariants))
    for element in root.all_contents():
        report.extend(validate_element(element, check_invariants))
    return report


def validate_invariants(root: Element) -> ValidationReport:
    """Evaluate only the registered invariants over *root* and its tree.

    The invariant-only counterpart of
    ``validate_tree(root, check_invariants=False)``: together the two
    cover exactly what ``validate_tree(root)`` covers.  This is the
    building block behind the ``"invariant"`` family of
    :meth:`repro.session.Session.check`.
    """
    report = ValidationReport()
    _check_invariants(root, report)
    for element in root.all_contents():
        _check_invariants(element, report)
    return report


def validate_model(model: Model,
                   check_invariants: bool = True) -> ValidationReport:
    """Validate every root of *model*.

    .. deprecated::
        Use :meth:`repro.session.Session.check` with the
        ``("structural", "invariant")`` families instead; this shim
        delegates and will be removed after a deprecation cycle.
    """
    warnings.warn(
        "validate_model() is deprecated; use "
        "repro.session.Session(model).check("
        "families=('structural', 'invariant'))",
        DeprecationWarning, stacklevel=2)
    report = ValidationReport()
    for root in model.roots:
        report.extend(validate_tree(root, check_invariants))
    return report
