"""Models and the model repository.

A :class:`Model` groups root elements under a URI; a :class:`Repository`
holds many models and supports the global queries OCL needs
(``allInstances``) plus cross-model element resolution by ``uri#id``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from . import kernel as _kernel
from .errors import RepositoryError
from .kernel import Element, MetaClass
from .notify import Notification

if TYPE_CHECKING:                                   # pragma: no cover
    from .columns import ColumnStore
    from .index import ModelIndex


_ROOT_HOOK = None


def set_root_hook(hook):
    """Install *hook* as the repository-wide root-change observer; return
    the previous one.

    Root attachment is not a feature write, so it never reaches the
    notification stream — but a transaction must still be able to undo
    ``add_root``/``remove_root``.  When installed, the hook is called as
    ``hook(model, element, added)`` after every root-list change; with no
    hook (``None``) the paths pay one global load and a falsy test.
    """
    global _ROOT_HOOK
    previous = _ROOT_HOOK
    _ROOT_HOOK = hook
    return previous


class Model:
    """A named collection of root elements forming one model document."""

    def __init__(self, uri: str, name: Optional[str] = None):
        self.uri = uri
        self.name = name or uri.rsplit("/", 1)[-1]
        self.roots: List[Element] = []
        self.repository: Optional["Repository"] = None
        self._observers: List[Callable[[Notification], None]] = []
        self._index: Optional["ModelIndex"] = None
        self._columns: Optional["ColumnStore"] = None

    def add_root(self, element: Element) -> Element:
        """Attach a (container-less) element as a root of this model."""
        if element.container is not None:
            raise RepositoryError(
                f"{element!r} is contained by {element.container!r}; only "
                f"container-less elements can be model roots"
            )
        if element in self.roots:
            return element
        self.roots.append(element)
        object.__setattr__(element, "_model", self)
        # root attachment emits no notification; tell the index directly
        if self._index is not None:
            self._index.root_added(element)
        if self._columns is not None:
            self._columns.root_added(element)
        if _ROOT_HOOK is not None:
            _ROOT_HOOK(self, element, True)
        return element

    def remove_root(self, element: Element) -> None:
        self.roots.remove(element)
        object.__setattr__(element, "_model", None)
        if self._index is not None:
            self._index.root_removed(element)
        if self._columns is not None:
            self._columns.root_removed(element)
        if _ROOT_HOOK is not None:
            _ROOT_HOOK(self, element, False)

    def index(self) -> "ModelIndex":
        """The model's extent/eid index, built lazily on first use and
        maintained incrementally from change notifications."""
        if self._index is None:
            from .index import ModelIndex
            self._index = ModelIndex(self)
        return self._index

    def enable_columns(self) -> "ColumnStore":
        """Turn on the columnar extent store for this model (idempotent).

        Columns are maintained from change notifications like the extent
        index and rebuilt lazily per metaclass on read — see
        :mod:`repro.mof.columns` for the staleness protocol."""
        if self._columns is None:
            from .columns import ColumnStore
            self._columns = ColumnStore(self)
        return self._columns

    def disable_columns(self) -> None:
        """Drop the columnar store and stop maintaining it."""
        if self._columns is not None:
            self._columns.detach()
            self._columns = None

    def column_store(self) -> Optional["ColumnStore"]:
        """The model's :class:`~repro.mof.columns.ColumnStore`, or ``None``
        when columns are not enabled."""
        return self._columns

    def column_values(self, metaclass: MetaClass, name: str):
        """Bulk read: effective values of single attribute *name* over all
        conforming instances, in ``instances_of`` order — or ``None``
        whenever the per-object path must be used instead (columns off,
        read hook active, or the feature shape does not columnify).

        This is the entry point the OCL closure compiler's
        ``allInstances`` fast path calls (see
        :meth:`repro.ocl.evaluator.Environment.columns`)."""
        store = self._columns
        if store is None or _kernel._READ_HOOK is not None:
            return None
        return store.conforming_values(metaclass, name)

    def all_elements(self) -> Iterator[Element]:
        """Every element in the model: the roots and all their contents."""
        for root in self.roots:
            yield root
            yield from root.all_contents()

    def instances_of(self, metaclass: MetaClass,
                     exact: bool = False) -> List[Element]:
        """All elements conforming to *metaclass* (or exactly typed by it).

        Answered O(answer) from the extent index unless a dependency
        read hook is active (incremental tracking needs to see the
        per-element reads a scan performs — see :mod:`repro.mof.index`).
        """
        if _kernel._READ_HOOK is None:
            return self.index().instances_of(metaclass, exact=exact)
        if exact:
            return [e for e in self.all_elements() if e.meta is metaclass]
        return [e for e in self.all_elements()
                if e.meta.conforms_to(metaclass)]

    def size(self) -> int:
        return sum(1 for _ in self.all_elements())

    def observe(self, observer: Callable[[Notification], None]) -> None:
        """Observe every change to any element in this model."""
        self._observers.append(observer)

    def unobserve(self, observer: Callable[[Notification], None]) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    def _element_changed(self, notification: Notification) -> None:
        # snapshot + live-membership check: observers detached while the
        # dispatch is in flight must not be called (see ObserverMixin._notify)
        observers = self._observers
        for observer in tuple(observers):
            if observer in observers:
                observer(notification)

    def __repr__(self) -> str:
        return f"<Model {self.uri} roots={len(self.roots)}>"


class Repository:
    """A set of models addressable by URI.

    The repository supplies ``allInstances`` semantics for OCL and resolves
    ``uri#eid`` references for the XMI reader.
    """

    def __init__(self) -> None:
        self.models: Dict[str, Model] = {}

    def create_model(self, uri: str, name: Optional[str] = None) -> Model:
        if uri in self.models:
            raise RepositoryError(f"repository already holds model {uri!r}")
        model = Model(uri, name)
        model.repository = self
        self.models[uri] = model
        return model

    def add_model(self, model: Model) -> Model:
        if model.uri in self.models and self.models[model.uri] is not model:
            raise RepositoryError(f"repository already holds model {model.uri!r}")
        model.repository = self
        self.models[model.uri] = model
        return model

    def model(self, uri: str) -> Model:
        try:
            return self.models[uri]
        except KeyError:
            raise RepositoryError(f"no model with uri {uri!r}") from None

    def remove_model(self, uri: str) -> None:
        model = self.model(uri)
        model.repository = None
        del self.models[uri]

    def all_elements(self) -> Iterator[Element]:
        for model in self.models.values():
            yield from model.all_elements()

    def all_instances(self, metaclass: MetaClass,
                      exact: bool = False) -> List[Element]:
        out: List[Element] = []
        for model in self.models.values():
            out.extend(model.instances_of(metaclass, exact=exact))
        return out

    def resolve(self, reference: str) -> Element:
        """Resolve a ``uri#eid`` string to an element.

        Answered from the model's eid index (O(1) when warm, with a
        staleness cross-check and repairing scan fallback — eids are
        assigned lazily) unless a dependency read hook is active.
        """
        if "#" not in reference:
            raise RepositoryError(
                f"element reference {reference!r} must look like 'uri#eid'"
            )
        uri, eid = reference.split("#", 1)
        model = self.model(uri)
        if _kernel._READ_HOOK is None:
            element = model.index().resolve_eid(eid)
            if element is not None:
                return element
        else:
            for element in model.all_elements():
                if element._eid == eid:
                    return element
        raise RepositoryError(f"no element {eid!r} in model {uri!r}")

    def __repr__(self) -> str:
        return f"<Repository models={sorted(self.models)}>"
