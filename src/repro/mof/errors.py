"""Exception hierarchy for the MOF metamodeling kernel.

Every kernel-level failure derives from :class:`MofError` so that callers can
catch metamodeling problems without masking unrelated bugs.
"""

from __future__ import annotations


class MofError(Exception):
    """Base class for all metamodeling kernel errors."""


class MetamodelError(MofError):
    """The metamodel itself is ill-formed (bad feature declaration,
    unresolved opposite, duplicate names, inheritance cycle, ...)."""


class TypeConformanceError(MofError):
    """A value was assigned to a feature whose declared type it does not
    conform to."""

    def __init__(self, feature_name: str, expected: str, value: object):
        self.feature_name = feature_name
        self.expected = expected
        self.value = value
        super().__init__(
            f"value {value!r} does not conform to type {expected} "
            f"of feature '{feature_name}'"
        )


class MultiplicityError(MofError):
    """A feature's multiplicity bounds were violated by a mutation."""


class CompositionError(MofError):
    """Containment structure violated: containment cycle, or an element
    placed in two containers at once by a raw mutation."""


class UnknownFeatureError(MofError):
    """Reflective access used a feature name the metaclass does not declare."""

    def __init__(self, metaclass_name: str, feature_name: str):
        self.metaclass_name = metaclass_name
        self.feature_name = feature_name
        super().__init__(
            f"metaclass '{metaclass_name}' has no feature '{feature_name}'"
        )


class FrozenElementError(MofError):
    """Mutation attempted on an element that has been frozen read-only."""


class RepositoryError(MofError):
    """Model repository problems: duplicate URIs, unresolvable proxies."""


class TransactionError(MofError):
    """Transaction protocol misuse (commit after rollback, foreign
    savepoint) or — gravely — a rollback that could not fully restore the
    pre-transaction state; carries the per-entry failures."""

    def __init__(self, message: str, failures=()):
        self.failures = tuple(failures)
        if self.failures:
            detail = "; ".join(str(f) for f in self.failures[:3])
            message = f"{message}: {detail}"
        super().__init__(message)
