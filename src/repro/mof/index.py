"""Incrementally maintained per-model element indexes.

``Model.instances_of``, ``Repository.all_instances`` and
``Repository.resolve`` historically scanned the whole containment forest
per call — O(model) for answers that are usually tiny.  A
:class:`ModelIndex` turns them into O(answer) dictionary lookups:

* a **metaclass extent** index: exact metaclass → (insertion-ordered)
  elements, with conforming queries concatenating the extents of the
  metaclass and its transitive subclasses;
* an **eid** index for ``uri#eid`` reference resolution.

Staleness protocol — how the index stays honest against the live model:

* **Containment notifications.**  Every mutation that moves an element
  in or out of a model's containment forest emits (at least) one
  notification *on the containment side* (``feature.containment`` true;
  see ``kernel._link``/``_unlink``), and that side is always still
  attached to the model, so the notification reaches
  :meth:`Model._element_changed` and therefore the index's observer.
  The index reacts **only** to containment-feature notifications
  (ADD/SET attach a subtree, REMOVE/UNSET detach one; MOVE is a
  reordering and leaves membership alone); the mirror notification on
  the opposite (child) side is deliberately ignored so a move is never
  double-handled.
* **Root hooks.**  ``Model.add_root``/``remove_root`` bypass the
  notification machinery (no feature is involved), so :class:`Model`
  calls :meth:`ModelIndex.root_added`/:meth:`root_removed` directly.
* **Lazy eids.**  ``Element.eid`` assigns ids lazily and ``set_eid``
  rebinds them, both silently — so :meth:`resolve_eid` cross-checks the
  hit (same eid, still indexed) and falls back to a repairing scan on a
  miss.  Extent membership has no such silent channel.
* **Read-hook gating.**  While a dependency-tracking read hook is
  installed (``kernel._READ_HOOK``), the incremental engine derives
  invalidation sets from per-element reads; answering from the index
  would hide those reads, so all fast paths defer to the legacy scans
  whenever a hook is active.

``REPRO_INDEX_VERIFY=1`` cross-checks every indexed answer against the
scan it replaced (the equivalence oracle the property tests use).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .kernel import Element, MetaClass
from .notify import ChangeKind, Notification

if TYPE_CHECKING:                                   # pragma: no cover
    from .repository import Model

#: When "1", every indexed query re-runs the scan it replaced and raises
#: IndexDivergence on any mismatch.
VERIFY_ENV = "REPRO_INDEX_VERIFY"


class IndexDivergence(AssertionError):
    """An indexed answer disagreed with the containment-scan oracle."""


class ModelIndex:
    """Metaclass-extent and eid indexes over one :class:`Model`.

    Built lazily by ``Model.index()`` from a full scan, then maintained
    incrementally from change notifications (see the module docstring
    for the staleness protocol).
    """

    def __init__(self, model: "Model"):
        self.model = model
        # exact metaclass -> {id(element): element}; dicts keep insertion
        # order, which is the extent order queries report.
        self._extent: Dict[MetaClass, Dict[int, Element]] = {}
        self._ids: Dict[int, Element] = {}
        self._eids: Dict[str, Element] = {}
        self.hits = 0
        self.eid_scans = 0
        self.rebuilds = 0
        model.observe(self._on_change)
        self.rebuild()

    # -- bulk (re)construction -------------------------------------------

    def rebuild(self) -> None:
        """Rebuild from a full scan of the model's containment forest."""
        self._extent.clear()
        self._ids.clear()
        self._eids.clear()
        for root in self.model.roots:
            self._add_tree(root)
        self.rebuilds += 1

    # -- single-element maintenance --------------------------------------

    def _add_one(self, element: Element) -> None:
        key = id(element)
        if key in self._ids:
            return
        self._ids[key] = element
        self._extent.setdefault(element.meta, {})[key] = element
        eid = element._eid
        if eid is not None:
            self._eids[eid] = element

    def _remove_one(self, element: Element) -> None:
        key = id(element)
        if self._ids.pop(key, None) is None:
            return
        bucket = self._extent.get(element.meta)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._extent[element.meta]
        eid = element._eid
        if eid is not None and self._eids.get(eid) is element:
            del self._eids[eid]

    def _add_tree(self, element: Element) -> None:
        self._add_one(element)
        for child in element.all_contents():
            self._add_one(child)

    def _remove_tree(self, element: Element) -> None:
        self._remove_one(element)
        for child in element.all_contents():
            self._remove_one(child)

    # -- change intake ----------------------------------------------------

    def _on_change(self, notification: Notification) -> None:
        # Only the containment side decides membership; the opposite-side
        # mirror notification for the same mutation is ignored.
        if not getattr(notification.feature, "containment", False):
            return
        kind = notification.kind
        if kind is ChangeKind.ADD or kind is ChangeKind.SET:
            if isinstance(notification.new, Element):
                self._add_tree(notification.new)
        elif kind is ChangeKind.REMOVE or kind is ChangeKind.UNSET:
            if isinstance(notification.old, Element):
                self._remove_tree(notification.old)
        # MOVE repositions within a feature: membership unchanged.

    def root_added(self, root: Element) -> None:
        self._add_tree(root)

    def root_removed(self, root: Element) -> None:
        self._remove_tree(root)

    # -- queries ----------------------------------------------------------

    def instances_of(self, metaclass: MetaClass,
                     exact: bool = False) -> List[Element]:
        """All (conforming or exactly typed) instances, O(answer)."""
        out: List[Element] = []
        bucket = self._extent.get(metaclass)
        if bucket:
            out.extend(bucket.values())
        if not exact:
            for sub in metaclass.all_subclasses():
                bucket = self._extent.get(sub)
                if bucket:
                    out.extend(bucket.values())
        self.hits += 1
        if os.environ.get(VERIFY_ENV) == "1":
            self._verify_instances(metaclass, exact, out)
        return out

    def resolve_eid(self, eid: str) -> Optional[Element]:
        """The model's element with ``_eid == eid``, or None.

        An index hit is cross-checked (eids can be rebound via
        ``set_eid``); on a miss the containment scan runs once and
        repairs the entry (eids are assigned lazily, without any
        notification).
        """
        element = self._eids.get(eid)
        if element is not None and element._eid == eid \
                and id(element) in self._ids:
            self.hits += 1
            return element
        self.eid_scans += 1
        for candidate in self.model.all_elements():
            if candidate._eid == eid:
                self._eids[eid] = candidate
                return candidate
        if element is not None:
            # stale entry (rebound or removed): drop it
            self._eids.pop(eid, None)
        return None

    # -- equivalence cross-check ------------------------------------------

    def _verify_instances(self, metaclass: MetaClass, exact: bool,
                          answer: List[Element]) -> None:
        if exact:
            expected = [e for e in self.model.all_elements()
                        if e.meta is metaclass]
        else:
            expected = [e for e in self.model.all_elements()
                        if e.meta.conforms_to(metaclass)]
        if sorted(map(id, answer)) != sorted(map(id, expected)):
            raise IndexDivergence(
                f"instances_of({metaclass.name}, exact={exact}) diverged: "
                f"index returned {len(answer)} element(s), "
                f"scan found {len(expected)}")

    def verify(self) -> List[str]:
        """Compare against a full scan; return a list of discrepancies."""
        problems: List[str] = []
        scanned: Dict[int, Element] = {}
        for element in self.model.all_elements():
            scanned[id(element)] = element
        for key, element in scanned.items():
            if key not in self._ids:
                problems.append(f"missing from index: {element!r}")
        for key, element in self._ids.items():
            if key not in scanned:
                problems.append(f"stale in index: {element!r}")
        for metaclass, bucket in self._extent.items():
            for element in bucket.values():
                if element.meta is not metaclass:
                    problems.append(
                        f"{element!r} filed under {metaclass.name}, "
                        f"typed {element.meta.name}")
        for eid, element in self._eids.items():
            if element._eid != eid:
                problems.append(
                    f"eid entry {eid!r} points at element with "
                    f"eid {element._eid!r}")
        return problems

    def stats(self) -> Dict[str, int]:
        return {
            "elements": len(self._ids),
            "metaclasses": len(self._extent),
            "eids": len(self._eids),
            "hits": self.hits,
            "eid_scans": self.eid_scans,
            "rebuilds": self.rebuilds,
        }

    def __repr__(self) -> str:
        return (f"<ModelIndex {self.model.uri} elements={len(self._ids)} "
                f"metaclasses={len(self._extent)}>")
