"""Dynamic metamodel definition helpers.

Static metamodels are written as ``Element`` subclasses; this module covers
the other half of MOF: defining metaclasses *at runtime*, which is what a
transformation that targets a freshly loaded metamodel needs.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

from .errors import MetamodelError
from .kernel import (
    Attribute,
    Element,
    MetaClass,
    MetaEnum,
    MetaPackage,
    Reference,
)
from .types import M_01, M_0N, M_11, Multiplicity, PrimitiveType


def define_package(name: str, uri: Optional[str] = None,
                   parent: Optional[MetaPackage] = None) -> MetaPackage:
    """Create a new metamodel package."""
    return MetaPackage(name, uri=uri, parent=parent)


def define_enum(package: MetaPackage, name: str,
                literals: Iterable[str]) -> MetaEnum:
    """Define an enumeration inside *package*."""
    return MetaEnum(name, literals, package=package)


def define_class(package: MetaPackage, name: str, *,
                 superclasses: Sequence[Union[MetaClass, type]] = (),
                 abstract: bool = False) -> MetaClass:
    """Define a metaclass inside *package*.

    Superclasses may be dynamic ``MetaClass`` objects or static ``Element``
    subclasses (their harvested metaclass is used).
    """
    resolved = []
    for sup in superclasses:
        if isinstance(sup, MetaClass):
            resolved.append(sup)
        elif isinstance(sup, type) and issubclass(sup, Element):
            resolved.append(sup._meta)
        else:
            raise MetamodelError(f"invalid superclass spec {sup!r}")
    return MetaClass(name, package=package, superclasses=resolved,
                     abstract=abstract)


def add_attribute(metaclass: MetaClass, name: str,
                  type: Union[PrimitiveType, MetaEnum],
                  default: Any = None, *,
                  multiplicity: Multiplicity = M_01,
                  ordered: bool = True, doc: str = "") -> Attribute:
    """Declare an attribute on a dynamic metaclass."""
    attribute = Attribute(type, default, multiplicity=multiplicity,
                          ordered=ordered, doc=doc)
    attribute.name = name
    metaclass.add_feature(attribute)
    return attribute


def add_reference(metaclass: MetaClass, name: str,
                  target: Union[MetaClass, type, str], *,
                  containment: bool = False,
                  opposite: Optional[str] = None,
                  multiplicity: Multiplicity = M_01,
                  ordered: bool = True, doc: str = "") -> Reference:
    """Declare a reference on a dynamic metaclass."""
    reference = Reference(target, containment=containment, opposite=opposite,
                          multiplicity=multiplicity, ordered=ordered, doc=doc)
    reference.name = name
    metaclass.add_feature(reference)
    return reference
