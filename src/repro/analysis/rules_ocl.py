"""Lint rules running the OCL static type checker over a model's
expressions: registered invariants, state-machine transition guards and
activity edge guards.

=======  ============================================================
OCL101   a registered invariant fails to typecheck against its
         context metaclass
OCL102   a transition guard fails to typecheck against the owning
         class's attributes
OCL103   an activity edge guard fails to typecheck
=======  ============================================================

The emitted diagnostics carry the *underlying* checker codes
(``OCL001``–``OCL010``) so a finding reads the same whether it came
from :func:`repro.ocl.typecheck` directly or from a lint run; the rule
codes above only name the rules for enable/disable purposes.

Guard checking types ``self`` with :class:`ClassifierView` — the UML
(M1) counterpart of the checker's built-in MOF adapter — so navigation
through :class:`~repro.uml.features.Property` ends and calls of
:class:`~repro.uml.features.Operation` signatures are statically
typed.  Variables the simulators create dynamically (action-language
assignments, event arguments ``arg0``..``arg9``) are typed ``OclAny``
so gradual typing keeps them out of the false-positive zone.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, List, Optional

from ..mof.kernel import MetaClass
from ..ocl.typecheck import (
    ANY,
    BOOLEAN,
    INTEGER,
    REAL,
    STRING,
    CollectionType,
    ObjectType,
    ObjectTypeView,
    OclType,
    TypeEnv,
    typecheck,
)
from ..uml.activities import Activity
from ..uml.classifiers import (
    Classifier,
    Enumeration,
    PrimitiveDataType,
    StructuredClassifier,
)
from ..uml.statemachines import State, StateMachine
from .diagnostics import Diagnostic
from .registry import lint_rule
from .runner import LintContext

_UML_PRIMITIVES = {"String": STRING, "Integer": INTEGER,
                   "Real": REAL, "Boolean": BOOLEAN}


def uml_type_to_ocl(uml_type: Optional[Classifier]) -> OclType:
    """Map an M1 classifier to the checker's type lattice."""
    if uml_type is None:
        return ANY
    if isinstance(uml_type, PrimitiveDataType):
        return _UML_PRIMITIVES.get(uml_type.name, ANY)
    if isinstance(uml_type, Enumeration):
        return STRING                     # literals evaluate to their names
    if isinstance(uml_type, Classifier):
        return ObjectType(ClassifierView(uml_type))
    return ANY


class ClassifierView(ObjectTypeView):
    """Types navigation through a UML :class:`StructuredClassifier`."""

    def __init__(self, classifier: Classifier):
        self.classifier = classifier

    def type_name(self) -> str:
        return self.classifier.name

    def feature_type(self, name: str) -> Optional[OclType]:
        if not isinstance(self.classifier, StructuredClassifier):
            return None
        prop = self.classifier.attribute(name)
        if prop is None:
            return None
        base = uml_type_to_ocl(prop.type)
        if prop.is_many:
            return CollectionType("Collection", base)
        return base

    def feature_names(self) -> List[str]:
        if not isinstance(self.classifier, StructuredClassifier):
            return []
        return sorted(p.name for p in self.classifier.all_attributes()
                      if p.name)

    def operation_signature(self, name: str):
        if not isinstance(self.classifier, StructuredClassifier):
            return None
        operation = self.classifier.operation(name)
        if operation is None:
            return None
        params = [uml_type_to_ocl(p.type)
                  for p in operation.in_parameters()]
        return params, uml_type_to_ocl(operation.return_type())

    def has_fallback(self, name: str) -> bool:
        return False

    def conforms_to(self, other: ObjectTypeView) -> bool:
        if isinstance(other, ClassifierView):
            return self.classifier.conforms_to(other.classifier)
        return False

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, ClassifierView)
                and other.classifier is self.classifier)

    def __hash__(self) -> int:
        return hash(id(self.classifier))


# ---------------------------------------------------------------------------
# Guard environments
# ---------------------------------------------------------------------------

_ASSIGN_TARGET = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _harvest_assigned_names(programs: Iterable[str]) -> List[str]:
    """Variable names the action language would create at run time."""
    names: List[str] = []
    for program in programs:
        for statement in re.split(r"[;\n]", program or ""):
            if ":=" not in statement:
                continue
            target = statement.split(":=", 1)[0].strip()
            if target.startswith("self."):
                target = target[len("self."):]
            if _ASSIGN_TARGET.match(target) and target not in names:
                names.append(target)
    return names


def _guard_env(action_programs: Iterable[str]) -> TypeEnv:
    env = TypeEnv()
    for name in _harvest_assigned_names(action_programs):
        env.define(name, ANY)
    for index in range(10):               # event arguments
        env.define(f"arg{index}", ANY)
    return env


def _owning_classifier(element: Any) -> Optional[StructuredClassifier]:
    container = element.container
    if isinstance(container, StructuredClassifier):
        return container
    return None


def _check_guard(guard: str, *, owner: Optional[StructuredClassifier],
                 env: TypeEnv):
    """Typecheck one guard; returns the checker's issue list."""
    context = ClassifierView(owner) if owner is not None else None
    if context is None:
        # no declared attributes to check against: syntax + shape only
        result = typecheck(guard, context=ANY, env=env,
                           expect_boolean=True)
        return [issue for issue in result.issues
                if issue.code in ("OCL003", "OCL008")]
    return typecheck(guard, context=context, env=env,
                     expect_boolean=True).issues


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------


@lint_rule("OCL101", "invariant-typecheck", "metaclass",
           description="registered OCL invariants that fail to typecheck "
                       "against their context metaclass")
def check_invariants_typecheck(metaclass: MetaClass,
                               ctx: LintContext) -> Iterable[Diagnostic]:
    for invariant in metaclass.invariants:
        packages = list(getattr(invariant, "packages", None) or [])
        if metaclass.package is not None \
                and metaclass.package not in packages:
            packages.append(metaclass.package)
        env = TypeEnv()
        for package in packages:
            env.register_metapackage(package)
        result = typecheck(invariant.ast, context=metaclass, env=env,
                           expect_boolean=True)
        for issue in result.issues:
            yield ctx.diag(
                metaclass,
                f"invariant '{invariant.name}' "
                f"({invariant.expression!r}): {issue.message}",
                code=issue.code, hint=issue.hint)


@lint_rule("OCL102", "guard-typecheck", "statemachine",
           description="transition guards that fail to typecheck against "
                       "the owning class")
def check_guards_typecheck(machine: StateMachine,
                           ctx: LintContext) -> Iterable[Diagnostic]:
    owner = _owning_classifier(machine)
    programs = [transition.effect for transition in
                machine.all_transitions()]
    for vertex in machine.all_vertices():
        if isinstance(vertex, State):
            programs.extend((vertex.entry, vertex.exit,
                             vertex.do_activity))
    env = _guard_env(programs)
    for transition in machine.all_transitions():
        guard = (transition.guard or "").strip()
        if not guard:
            continue
        for issue in _check_guard(guard, owner=owner, env=env):
            source = transition.source.name if transition.source else "?"
            yield ctx.diag(
                transition,
                f"guard [{guard}] on transition from '{source}': "
                f"{issue.message}",
                code=issue.code, hint=issue.hint)


@lint_rule("OCL103", "activity-guard-typecheck", "activity",
           description="activity edge guards that fail to typecheck")
def check_activity_guards_typecheck(activity: Activity,
                                    ctx: LintContext
                                    ) -> Iterable[Diagnostic]:
    owner = _owning_classifier(activity)
    programs = [action.body for action in activity.actions()]
    env = _guard_env(programs)
    for edge in activity.edges:
        guard = (edge.guard or "").strip()
        if not guard or guard == "else":
            continue
        for issue in _check_guard(guard, owner=owner, env=env):
            source = edge.source.name if edge.source else "?"
            yield ctx.diag(
                edge,
                f"guard [{guard}] on edge from '{source}': "
                f"{issue.message}",
                code=issue.code, hint=issue.hint)
