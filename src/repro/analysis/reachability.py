"""Reachable-trigger analysis for state machines, with a memoised cache.

The cross-diagram consistency rules ask one question over and over: *can
this machine ever accept event E?*  Answering it means replaying the
machine's structure under the simulator's semantics
(:mod:`repro.validation.statemachine_sim`): start at the initial
pseudostate, follow completion transitions and choice pseudostates, and
collect the triggers of every transition that leaves a reachable state —
pruning transitions whose guard is provably unsatisfiable (the same tiny
prover SM002 uses).  Composite machines are flattened first, exactly as
:class:`~repro.validation.statemachine_sim.StateMachineInterpreter`
flattens them, so the reachable set matches what the simulator would
execute.

The summary is an *over*-approximation of the dynamically reachable
trigger set (guards are pruned individually, never in combination), so a
trigger **absent** from it is genuinely unacceptable — the direction the
``XD003`` rule reports.  Machines using features outside the simulator's
fragment (orthogonal top-level regions, junction/history pseudostates)
yield ``None``: not analysable, never reported.

Memoisation protocol
--------------------
Summaries are cached per machine and invalidated through kernel change
notifications: every element of the machine's subtree is observed
individually (per-element observers only see their own element's
changes), and *any* notification — including the inverse ops a
transaction rollback replays — drops the cache entry and detaches the
observers.  Elements added to the subtree later are covered transitively:
their attachment mutates an already-observed container, which invalidates
the entry before the new element can matter.

While the incremental engine's read instrumentation is active
(``kernel._READ_HOOK``), the cache is bypassed entirely — same protocol
as :class:`~repro.mof.index.ModelIndex` — so dependency tracking records
the true read set of every consistency unit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from ..mof import kernel as _kernel
from ..mof.kernel import Element
from ..mof.notify import Notification
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..uml.statemachines import (
    FinalState,
    Pseudostate,
    State,
    StateMachine,
    Vertex,
)
from .rules_statemachine import guard_unsatisfiable

#: pseudostate kinds the simulator (and therefore this analysis) supports
_SUPPORTED_KINDS = {"initial", "choice"}

#: cache entries kept before least-recently-used eviction
_MAX_ENTRIES = 256


@dataclass(frozen=True)
class ReachabilitySummary:
    """What is reachable from a machine's initial configuration."""

    states: FrozenSet[str]     # names of reachable stable states
    triggers: FrozenSet[str]   # triggers acceptable in some reachable state

    def accepts(self, trigger: str) -> bool:
        return trigger in self.triggers


# ---------------------------------------------------------------------------
# The computation
# ---------------------------------------------------------------------------


def _analysable(machine: StateMachine) -> bool:
    if len(machine.regions) != 1:
        return False
    for vertex in machine.all_vertices():
        if isinstance(vertex, Pseudostate) \
                and vertex.kind not in _SUPPORTED_KINDS:
            return False
    return True


def compute_reachability(machine: StateMachine
                         ) -> Optional[ReachabilitySummary]:
    """One uncached analysis pass; ``None`` when not analysable."""
    source = machine
    if any(isinstance(v, State) and v.is_composite
           for v in source.all_vertices()):
        from ..transform.library import flatten_state_machine
        source = flatten_state_machine(source)
    if not _analysable(source):
        return None
    initial = source.main_region().initial_pseudostate()
    if initial is None:
        return None

    states: Set[str] = set()
    triggers: Set[str] = set()
    seen: Set[int] = set()
    frontier: List[Vertex] = [initial]
    while frontier:
        vertex = frontier.pop()
        if id(vertex) in seen:
            continue
        seen.add(id(vertex))
        if isinstance(vertex, FinalState):
            continue
        if isinstance(vertex, State):
            states.add(vertex.name)
        for transition in vertex.outgoing():
            if guard_unsatisfiable(transition.guard):
                continue
            if transition.trigger and isinstance(vertex, State):
                triggers.add(transition.trigger)
            if transition.is_internal:
                continue
            if transition.target is not None:
                frontier.append(transition.target)
    return ReachabilitySummary(frozenset(states), frozenset(triggers))


# ---------------------------------------------------------------------------
# The memoised cache
# ---------------------------------------------------------------------------


class _Entry:
    __slots__ = ("summary", "observed")

    def __init__(self, summary: Optional[ReachabilitySummary],
                 observed: List[Element]):
        self.summary = summary
        self.observed = observed


#: machine id -> cached entry, LRU-ordered (oldest first)
_CACHE: "OrderedDict[int, _Entry]" = OrderedDict()
#: observed element id -> owning machine id (routes notifications)
_OWNERS: Dict[int, int] = {}

#: lifetime counters, mirrored into the metrics registry when tracing is on
HITS = 0
MISSES = 0
INVALIDATIONS = 0


def _count(name: str) -> None:
    if _trace.ON:
        _metrics.REGISTRY.counter(
            f"analysis.consistency.reachability.{name}",
            help="reachable-trigger cache events").inc()


def _on_subtree_change(notification: Notification) -> None:
    machine_id = _OWNERS.get(id(notification.element))
    if machine_id is not None:
        _evict(machine_id)
        global INVALIDATIONS
        INVALIDATIONS += 1
        _count("invalidations")


def _evict(machine_id: int) -> None:
    entry = _CACHE.pop(machine_id, None)
    if entry is None:
        return
    for element in entry.observed:
        _OWNERS.pop(id(element), None)
        element.unobserve(_on_subtree_change)


def invalidate_cache() -> None:
    """Drop every cached summary and detach all observers (test hook)."""
    for machine_id in list(_CACHE):
        _evict(machine_id)


def cache_size() -> int:
    return len(_CACHE)


def reachability(machine: StateMachine) -> Optional[ReachabilitySummary]:
    """The memoised reachable-state/trigger summary of *machine*.

    Cached until any element of the machine's subtree changes; bypasses
    the cache while kernel read instrumentation is active so incremental
    checkers observe their true read sets.
    """
    global HITS, MISSES
    if _kernel._READ_HOOK is not None:
        return compute_reachability(machine)
    entry = _CACHE.get(id(machine))
    if entry is not None:
        _CACHE.move_to_end(id(machine))
        HITS += 1
        _count("hits")
        return entry.summary
    MISSES += 1
    _count("misses")
    summary = compute_reachability(machine)
    observed = [machine] + list(machine.all_contents())
    for element in observed:
        _OWNERS[id(element)] = id(machine)
        element.observe(_on_subtree_change)
    _CACHE[id(machine)] = _Entry(summary, observed)
    while len(_CACHE) > _MAX_ENTRIES:
        _evict(next(iter(_CACHE)))
    return summary


def reachable_triggers(machine: StateMachine) -> Optional[FrozenSet[str]]:
    """The memoised reachable-trigger set (``None`` = not analysable)."""
    summary = reachability(machine)
    return summary.triggers if summary is not None else None
