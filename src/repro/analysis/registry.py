"""The lint rule registry: declaration, enable/disable, severity policy.

A :class:`LintRule` names one check with a stable primary code and the
kind of target it inspects; registering it (usually via the
:func:`lint_rule` decorator) makes the batch runner dispatch to it.
A :class:`LintConfig` adjusts a run without touching the registry:
disable rules or individual diagnostic codes, opt into off-by-default
rules, and override the severity of any code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from .diagnostics import Diagnostic, Severity

#: Target kinds the runner knows how to dispatch.
TARGETS = ("model", "statemachine", "activity", "interaction",
           "metaclass", "transformation")

#: Rule families: ``lint`` is the classic single-diagram analyses,
#: ``consistency`` the cross-diagram ``XD`` rules.  Runners select the
#: families to execute; :class:`LintConfig` still filters individual
#: rules within them.
FAMILIES = ("lint", "consistency")

CheckFn = Callable[[Any, Any], Iterable[Diagnostic]]


@dataclass
class LintRule:
    """One registered static check."""

    code: str                 # primary diagnostic code, e.g. "SM001"
    name: str                 # slug, e.g. "dead-state"
    target: str               # one of TARGETS
    check: CheckFn
    severity: Severity = Severity.ERROR
    description: str = ""
    opt_in: bool = False      # excluded unless LintConfig enables it
    family: str = "lint"      # one of FAMILIES

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown lint target '{self.target}' "
                             f"(expected one of {TARGETS})")
        if self.family not in FAMILIES:
            raise ValueError(f"unknown rule family '{self.family}' "
                             f"(expected one of {FAMILIES})")


@dataclass
class LintConfig:
    """Per-run adjustments, keyed by rule name or diagnostic code."""

    disabled: Set[str] = field(default_factory=set)
    enabled: Set[str] = field(default_factory=set)   # opt-in rules to run
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)

    def is_disabled(self, rule: LintRule) -> bool:
        return rule.name in self.disabled or rule.code in self.disabled

    def is_enabled(self, rule: LintRule) -> bool:
        return rule.name in self.enabled or rule.code in self.enabled

    def allows(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.code not in self.disabled

    def effective_severity(self, diagnostic: Diagnostic) -> Severity:
        return self.severity_overrides.get(diagnostic.code,
                                           diagnostic.severity)


class RuleRegistry:
    """All known lint rules, keyed by name and by code."""

    def __init__(self) -> None:
        self._rules: Dict[str, LintRule] = {}

    def register(self, rule: LintRule) -> LintRule:
        for existing in self._rules.values():
            if existing.code == rule.code and existing.name != rule.name:
                raise ValueError(
                    f"code '{rule.code}' already registered by rule "
                    f"'{existing.name}'")
        self._rules[rule.name] = rule
        return rule

    def rule(self, name_or_code: str) -> Optional[LintRule]:
        found = self._rules.get(name_or_code)
        if found is not None:
            return found
        for rule in self._rules.values():
            if rule.code == name_or_code:
                return rule
        return None

    def rules(self, target: Optional[str] = None,
              config: Optional[LintConfig] = None,
              families: Optional[Iterable[str]] = None) -> List[LintRule]:
        config = config or LintConfig()
        family_filter = None if families is None else set(families)
        selected = []
        for rule in self._rules.values():
            if target is not None and rule.target != target:
                continue
            if family_filter is not None \
                    and rule.family not in family_filter:
                continue
            if config.is_disabled(rule):
                continue
            if rule.opt_in and not config.is_enabled(rule):
                continue
            selected.append(rule)
        return selected

    def all_rules(self) -> List[LintRule]:
        return list(self._rules.values())

    def codes(self) -> List[str]:
        return sorted(rule.code for rule in self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, name_or_code: str) -> bool:
        return self.rule(name_or_code) is not None


#: The registry populated by the bundled rule modules on import.
DEFAULT_REGISTRY = RuleRegistry()


def lint_rule(code: str, name: str, target: str, *,
              severity: Severity = Severity.ERROR,
              description: str = "", opt_in: bool = False,
              family: str = "lint",
              registry: Optional[RuleRegistry] = None
              ) -> Callable[[CheckFn], CheckFn]:
    """Decorator: register *fn* as a lint rule and return it unchanged."""
    def decorate(fn: CheckFn) -> CheckFn:
        (registry or DEFAULT_REGISTRY).register(LintRule(
            code=code, name=name, target=target, check=fn,
            severity=severity,
            description=description or (fn.__doc__ or "").strip(),
            opt_in=opt_in, family=family))
        return fn
    return decorate
