"""Bridge the UML well-formedness rules into the lint registry.

:mod:`repro.uml.wellformed` predates the lint engine and keeps its
``run_wellformed_rules`` entry point; since both sides speak the shared
:class:`~repro.mof.validate.Diagnostic`, the bridge is a pass-through —
``python -m repro lint`` thereby covers well-formedness too, with the
``uml-*`` codes individually disablable through
:class:`~repro.analysis.registry.LintConfig`.
"""

from __future__ import annotations

from typing import Iterable

from ..uml.package import Package
from ..uml.wellformed import run_wellformed_rules
from .diagnostics import Diagnostic
from .registry import lint_rule
from .runner import LintContext


@lint_rule("UML100", "uml-wellformed", "model",
           description="the UML well-formedness rule set "
                       "(diagnostics keep their uml-* codes)")
def check_wellformedness(root, ctx: LintContext) -> Iterable[Diagnostic]:
    if not isinstance(root, Package):
        return
    yield from run_wellformed_rules(root).diagnostics
