"""Behavioural lint rules for state machines.

=======  ============================================================
SM001    unreachable (dead) state or pseudostate
SM002    transition that can never fire (unsatisfiable guard)
SM003    nondeterministic conflict: overlapping guards out of one
         state for the same trigger — the static race detector for
         the collaboration simulator
=======  ============================================================

SM003 only reports *proven* overlaps.  Guards are decomposed into
conjunctions of variable-vs-constant comparisons; two guards conflict
when the combined constraint store stays satisfiable (and are cleared
when some shared variable's constraints contradict — e.g.
``balance >= 100`` against ``balance < 100``).  Guards the prover
cannot decompose are never reported, so the rule stays free of false
positives by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ocl.ast import BinOp, Ident, Literal, Nav, Node, SelfExpr, UnOp
from ..ocl.compile import parse_cached
from ..ocl.errors import OclError
from ..uml.statemachines import (
    Pseudostate,
    Region,
    State,
    StateMachine,
    Transition,
    Vertex,
)
from .diagnostics import Diagnostic
from .registry import Severity, lint_rule
from .runner import LintContext

# ---------------------------------------------------------------------------
# Guard constraint extraction (the tiny disjointness prover)
# ---------------------------------------------------------------------------

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}

#: one atomic constraint: (operator, constant)
Atom = Tuple[str, object]


def _conjuncts(node: Node) -> List[Node]:
    if isinstance(node, BinOp) and node.op == "and":
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _variable_name(node: Node) -> Optional[str]:
    if isinstance(node, Ident):
        return node.name
    if isinstance(node, Nav) and isinstance(node.source, SelfExpr):
        return node.name
    return None


def guard_constraints(guard: str) -> Optional[Dict[str, List[Atom]]]:
    """Decompose *guard* into per-variable atomic constraints.

    Returns None when any conjunct is outside the decidable fragment
    (variable OP constant, a bare boolean variable, or its negation).
    """
    text = (guard or "").strip()
    if not text:
        return {}
    try:
        ast = parse_cached(text)
    except OclError:
        return None
    store: Dict[str, List[Atom]] = {}
    for conjunct in _conjuncts(ast):
        atom = _atomize(conjunct)
        if atom is None:
            return None
        name, op, value = atom
        store.setdefault(name, []).append((op, value))
    return store


def _atomize(node: Node) -> Optional[Tuple[str, str, object]]:
    name = _variable_name(node)
    if name is not None:                       # bare boolean shorthand
        return (name, "=", True)
    if isinstance(node, UnOp) and node.op == "not":
        inner = _variable_name(node.operand)
        if inner is not None:
            return (inner, "=", False)
        return None
    if isinstance(node, BinOp) and node.op in _FLIP:
        left_var = _variable_name(node.left)
        right_var = _variable_name(node.right)
        if left_var is not None and isinstance(node.right, Literal):
            return (left_var, node.op, node.right.value)
        if right_var is not None and isinstance(node.left, Literal):
            return (right_var, _FLIP[node.op], node.left.value)
    return None


def _satisfiable(atoms: List[Atom]) -> bool:
    """Can one value satisfy every atom?  (constants only, so decidable)"""
    equals: Set[object] = set()
    not_equals: Set[object] = set()
    low: Tuple[float, bool] = (float("-inf"), False)   # (bound, inclusive)
    high: Tuple[float, bool] = (float("inf"), False)
    for op, value in atoms:
        if op == "=":
            equals.add(value)
        elif op == "<>":
            not_equals.add(value)
        else:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                return True        # non-numeric ordering: give up, assume sat
            number = float(value)
            if op == ">":
                if number >= low[0]:
                    low = (number, False)
            elif op == ">=":
                if number > low[0]:
                    low = (number, True)
            elif op == "<":
                if number <= high[0]:
                    high = (number, False)
            elif op == "<=":
                if number < high[0]:
                    high = (number, True)
    if len({repr(v) for v in equals}) > 1:
        return False
    if equals & not_equals:
        return False
    if equals:
        value = next(iter(equals))
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            number = float(value)
            if number < low[0] or (number == low[0] and not low[1]):
                return False
            if number > high[0] or (number == high[0] and not high[1]):
                return False
        return True
    if low[0] > high[0]:
        return False
    if low[0] == high[0] and not (low[1] and high[1]):
        return False
    return True


def guards_overlap(first: str, second: str) -> Optional[bool]:
    """True = proven overlap, False = proven disjoint, None = unknown."""
    first = (first or "").strip()
    second = (second or "").strip()
    if first == second:
        return True                      # same (or both empty) guard
    c1 = guard_constraints(first)
    c2 = guard_constraints(second)
    if c1 is None or c2 is None:
        # undecidable — except that an empty guard overlaps anything
        # whose satisfiability we can at least establish
        if first == "" and c2:
            return True
        if second == "" and c1:
            return True
        return None
    merged: Dict[str, List[Atom]] = {}
    for store in (c1, c2):
        for name, atoms in store.items():
            merged.setdefault(name, []).extend(atoms)
    for atoms in merged.values():
        if not _satisfiable(atoms):
            return False
    return True


def guard_unsatisfiable(guard: str) -> bool:
    """True when the guard provably never holds (e.g. ``false``,
    ``x > 2 and x < 1``)."""
    store = guard_constraints(guard)
    if store is None:
        text = (guard or "").strip()
        return text == "false"
    return any(not _satisfiable(atoms) for atoms in store.values())


# ---------------------------------------------------------------------------
# Reachability
# ---------------------------------------------------------------------------


def _machine_regions(machine: StateMachine) -> List[Region]:
    regions = list(machine.regions)
    for vertex in machine.all_vertices():
        if isinstance(vertex, State):
            regions.extend(vertex.regions)
    return regions


def reachable_vertices(machine: StateMachine) -> Optional[Set[int]]:
    """ids of vertices reachable from the top-level initial pseudostates.

    Entering a composite state enters its regions' initial pseudostates;
    being in a substate keeps every ancestor composite active (so its
    outgoing transitions remain fireable).  Returns None when the
    machine has no top-level initial (well-formedness flags that).
    """
    roots: List[Vertex] = []
    for region in machine.regions:
        initial = region.initial_pseudostate()
        if initial is not None:
            roots.append(initial)
    if not roots:
        return None

    outgoing: Dict[int, List[Transition]] = {}
    vertices: Dict[int, Vertex] = {}
    for region in _machine_regions(machine):
        for transition in region.transitions:
            if transition.source is not None:
                outgoing.setdefault(id(transition.source),
                                    []).append(transition)
        for vertex in region.subvertices:
            vertices[id(vertex)] = vertex

    reached: Set[int] = set()
    frontier = list(roots)
    while frontier:
        vertex = frontier.pop()
        if id(vertex) in reached:
            continue
        reached.add(id(vertex))
        for transition in outgoing.get(id(vertex), ()):
            if transition.target is not None:
                frontier.append(transition.target)
        if isinstance(vertex, State):
            for region in vertex.regions:
                initial = region.initial_pseudostate()
                if initial is not None:
                    frontier.append(initial)
        # a reachable substate keeps its ancestors active
        container = vertex.container
        while isinstance(container, Region):
            parent = container.container
            if isinstance(parent, State):
                frontier.append(parent)
                container = parent.container
            else:
                break
    return reached


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------


@lint_rule("SM001", "dead-state", "statemachine",
           description="states unreachable from the initial pseudostate")
def check_dead_states(machine: StateMachine,
                      ctx: LintContext) -> Iterable[Diagnostic]:
    reached = reachable_vertices(machine)
    if reached is None:
        return                        # no initial: well-formedness territory
    ctx.cache[("reachable", id(machine))] = reached
    for vertex in machine.all_vertices():
        if id(vertex) in reached:
            continue
        if isinstance(vertex, Pseudostate) and vertex.kind == "initial":
            continue                  # nested initials are entry points
        kind = ("state" if isinstance(vertex, State)
                else type(vertex).__name__.lower())
        yield ctx.diag(
            vertex,
            f"{kind} '{vertex.name}' in machine '{machine.name}' is "
            f"unreachable from the initial state",
            hint="add a transition leading here or delete the state")


@lint_rule("SM002", "dead-transition", "statemachine",
           description="transitions whose guard can never hold")
def check_dead_transitions(machine: StateMachine,
                           ctx: LintContext) -> Iterable[Diagnostic]:
    for transition in machine.all_transitions():
        if guard_unsatisfiable(transition.guard):
            source = transition.source.name if transition.source else "?"
            yield ctx.diag(
                transition,
                f"transition from '{source}' on "
                f"'{transition.trigger or 'completion'}' can never fire: "
                f"guard [{transition.guard}] is unsatisfiable",
                hint="remove the transition or fix the guard")


@lint_rule("SM003", "transition-conflict", "statemachine",
           description="overlapping guards out of one state for the "
                       "same trigger (nondeterminism)")
def check_transition_conflicts(machine: StateMachine,
                               ctx: LintContext) -> Iterable[Diagnostic]:
    by_source: Dict[int, List[Transition]] = {}
    for transition in machine.all_transitions():
        source = transition.source
        if not isinstance(source, State):
            continue                 # choice/junction branches are ordered
        by_source.setdefault(id(source), []).append(transition)
    for transitions in by_source.values():
        by_trigger: Dict[str, List[Transition]] = {}
        for transition in transitions:
            by_trigger.setdefault(transition.trigger or "",
                                  []).append(transition)
        for trigger, group in by_trigger.items():
            for index, first in enumerate(group):
                for second in group[index + 1:]:
                    if guards_overlap(first.guard, second.guard):
                        source = first.source.name if first.source else "?"
                        label = trigger or "completion"
                        yield ctx.diag(
                            second,
                            f"state '{source}' has overlapping guards "
                            f"on '{label}': [{first.guard or 'true'}] vs "
                            f"[{second.guard or 'true'}] — which "
                            f"transition fires is nondeterministic",
                            hint="make the guards mutually exclusive")
