"""The lint-facing view of the shared diagnostic record.

Every checker in the toolchain — the structural validator, the UML
well-formedness rules and the lint rules in this package — emits the
same :class:`~repro.mof.validate.Diagnostic`: severity, stable rule
code, offending element plus containment path, message, optional fix
hint.  This module re-exports it and adds :class:`LintReport`, the
container the batch runner fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..mof.validate import (  # noqa: F401  (re-exported)
    Diagnostic,
    Severity,
    ValidationReport,
    model_path,
)


@dataclass
class LintReport:
    """All diagnostics from one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    elements_scanned: int = 0
    rules_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.INFO]

    def add(self, severity: Severity, element: Any, message: str, *,
            code: str, hint: str = "",
            path: Optional[str] = None) -> Diagnostic:
        diagnostic = Diagnostic(
            severity, element, message, None, code,
            path=model_path(element) if path is None else path, hint=hint)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def by_code(self) -> Dict[str, List[Diagnostic]]:
        grouped: Dict[str, List[Diagnostic]] = {}
        for diagnostic in self.diagnostics:
            grouped.setdefault(diagnostic.code or "(uncoded)",
                               []).append(diagnostic)
        return grouped

    def codes(self) -> List[str]:
        return sorted(self.by_code())

    def summary(self) -> str:
        return (f"lint: {len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s), "
                f"{len(self.infos)} info(s) over "
                f"{self.elements_scanned} element(s)")

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def as_validation_report(self) -> ValidationReport:
        """Adapt to the structural validator's report type (gates,
        :class:`~repro.method.testing.ModelTestSuite` interop)."""
        return ValidationReport(diagnostics=list(self.diagnostics))

    def __str__(self) -> str:
        return self.render() if self.diagnostics else "lint: ok"
