"""The batch lint runner: one walk over a model, rules dispatched by kind.

The runner traverses each root's containment tree exactly once,
bucketing what the registered rules care about (state machines,
activities, the set of metaclasses in use), then hands every bucket to
the matching rules.  Severity overrides and disabled codes from the
:class:`~repro.analysis.registry.LintConfig` are applied to the emitted
diagnostics before they reach the report.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional

from ..mof.kernel import Element, MetaClass
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..uml.activities import Activity
from ..uml.interactions import Interaction
from ..uml.statemachines import StateMachine
from .diagnostics import Diagnostic, LintReport, Severity, model_path
from .registry import DEFAULT_REGISTRY, LintConfig, LintRule, RuleRegistry


class LintContext:
    """What a rule may consult while checking one target."""

    def __init__(self, root: Optional[Element], config: LintConfig,
                 registry: RuleRegistry):
        self.root = root
        self.config = config
        self.registry = registry
        self.cache: Dict[Any, Any] = {}
        self.current_rule: Optional[LintRule] = None

    def diag(self, element: Any, message: str, *,
             code: Optional[str] = None,
             severity: Optional[Severity] = None,
             hint: str = "", related: Any = None) -> Diagnostic:
        """Build a diagnostic defaulting to the running rule's identity.

        *related* names the secondary endpoint of a cross-diagram
        finding (e.g. the state machine a message cannot reach).
        """
        rule = self.current_rule
        return Diagnostic(
            severity or (rule.severity if rule else Severity.ERROR),
            element, message, None,
            code or (rule.code if rule else ""),
            path=model_path(element), hint=hint,
            related=related,
            related_path=model_path(related) if related is not None else "")


class ModelLinter:
    """Runs every applicable registered rule over models.

    *families* selects the rule families to execute (default: the
    classic single-diagram ``lint`` rules; pass ``("consistency",)`` for
    the cross-diagram ``XD`` rules, or both for everything)."""

    def __init__(self, registry: Optional[RuleRegistry] = None,
                 config: Optional[LintConfig] = None,
                 families: Iterable[str] = ("lint",)):
        self.registry = registry or DEFAULT_REGISTRY
        self.config = config or LintConfig()
        self.families = tuple(families)

    # -- model lint --------------------------------------------------------

    def lint(self, *roots: Element) -> LintReport:
        if not _trace.ON:
            report = LintReport()
            for root in roots:
                self._lint_root(root, report)
            return report
        with _trace.span("analysis.lint", roots=len(roots),
                         families=",".join(self.families)) as sp:
            report = LintReport()
            for root in roots:
                self._lint_root(root, report)
        sp.tag(elements=report.elements_scanned,
               findings=len(report.diagnostics))
        _metrics.REGISTRY.counter(
            "analysis.lint.elements",
            help="elements scanned by the linter").inc(
                report.elements_scanned)
        for diagnostic in report.diagnostics:
            _metrics.REGISTRY.counter(
                "analysis.lint.findings", help="lint findings by severity",
                severity=diagnostic.severity.value).inc()
        return report

    def _lint_root(self, root: Element, report: LintReport) -> None:
        context = LintContext(root, self.config, self.registry)

        # the single walk: bucket targets by kind
        machines: List[StateMachine] = []
        activities: List[Activity] = []
        interactions: List[Interaction] = []
        metaclasses: Dict[int, MetaClass] = {}
        count = 0
        for element in self._walk(root):
            count += 1
            if isinstance(element, StateMachine):
                machines.append(element)
            elif isinstance(element, Activity):
                activities.append(element)
            elif isinstance(element, Interaction):
                interactions.append(element)
            for metaclass in ([element.meta]
                              + element.meta.all_superclasses()):
                metaclasses.setdefault(id(metaclass), metaclass)
        report.elements_scanned += count

        self._dispatch("model", [root], context, report)
        self._dispatch("statemachine", machines, context, report)
        self._dispatch("activity", activities, context, report)
        self._dispatch("interaction", interactions, context, report)
        self._dispatch("metaclass", list(metaclasses.values()),
                       context, report)

    @staticmethod
    def _walk(root: Element) -> Iterable[Element]:
        yield root
        yield from root.all_contents()

    # -- incremental lint --------------------------------------------------

    def watch(self, *roots: Element):
        """An incrementally maintained lint session over *roots*.

        .. deprecated::
            Use :meth:`repro.session.Session.watch` with the ``"lint"``
            family; this shim delegates to it.
        """
        warnings.warn(
            "ModelLinter.watch() is deprecated; use repro.session."
            "Session(roots, registry=..., lint_config=...).watch("
            "families=('lint',))",
            DeprecationWarning, stacklevel=2)
        from ..session import Session
        return Session(roots[0] if len(roots) == 1 else roots,
                       registry=self.registry,
                       lint_config=self.config).watch(families=("lint",))

    # -- transformation lint ----------------------------------------------

    def lint_transformation(self, transformation: Any) -> LintReport:
        report = LintReport()
        context = LintContext(None, self.config, self.registry)
        self._dispatch("transformation", [transformation], context, report)
        return report

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, target_kind: str, targets: List[Any],
                  context: LintContext, report: LintReport) -> None:
        if not targets:
            return
        for rule in self.registry.rules(target_kind, self.config,
                                        families=self.families):
            context.current_rule = rule
            report.rules_run += 1
            for target in targets:
                for diagnostic in rule.check(target, context):
                    self._emit(diagnostic, report)
            context.current_rule = None

    def _emit(self, diagnostic: Diagnostic, report: LintReport) -> None:
        if not self.config.allows(diagnostic):
            return
        effective = self.config.effective_severity(diagnostic)
        if effective is not diagnostic.severity:
            diagnostic = replace(diagnostic, severity=effective)
        report.diagnostics.append(diagnostic)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def lint_model(*roots: Element,
               registry: Optional[RuleRegistry] = None,
               config: Optional[LintConfig] = None) -> LintReport:
    """Lint one or more model roots with the default registry.

    .. deprecated::
        Use :meth:`repro.session.Session.check` with the ``"lint"``
        family (or :meth:`ModelLinter.lint` directly).
    """
    warnings.warn(
        "lint_model() is deprecated; use repro.session.Session(roots)."
        "check(families=('lint',)) or ModelLinter(...).lint(*roots)",
        DeprecationWarning, stacklevel=2)
    return ModelLinter(registry, config).lint(*roots)


def lint_transformation(transformation: Any, *,
                        registry: Optional[RuleRegistry] = None,
                        config: Optional[LintConfig] = None) -> LintReport:
    """Run the transformation-conflict rules over a rule set."""
    return ModelLinter(registry, config).lint_transformation(transformation)
