"""Cross-diagram consistency rules: the ``XD`` family.

Every other checker in the toolchain validates one model kind in
isolation; these rules reason *across* the diagrams that describe one
system — the paper's premise that a set of UML views only pays off when
it stays mutually coherent.

=======  ==============================================================
XD001    a message that is neither an operation nor a state-machine
         event of the receiving lifeline's classifier
XD002    a message that resolves to an operation but disagrees with
         its signature (argument count, literal argument types)
XD003    a message whose trigger exists in the receiver's state
         machine but only on transitions out of *unreachable* states
         (reachable-trigger analysis, :mod:`.reachability`)
XD004    a transition effect or state entry/exit/do action referencing
         features the owning class does not declare (unknown called
         operation, send over an unknown link, assignment to an
         undeclared attribute)
XD005    a class that can never be instantiated: its association
         multiplicities admit no finite, non-empty object
         configuration (exact rational feasibility check)
XD006    a registered OCL invariant no instance can ever satisfy
         (provably unsatisfiable conjunction)
XD007    a message between lifelines whose classifiers share no
         association — communication without a connector (warning)
=======  ==============================================================

All rules report only *proven* inconsistencies: the multiplicity check
(XD005) decides rational feasibility exactly with Fourier–Motzkin
elimination, and the expression checks (XD004, XD006) reuse the same
decidable-fragment prover as SM002 — anything outside the fragment is
silently accepted, so the family is free of false positives by
construction.  Every diagnostic names *both* endpoints via the
``related`` secondary location.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..codegen.actions import parse_actions
from ..codegen.ir import AssignStmt, CallStmt, SendStmt
from ..mof.kernel import Element, MetaClass
from ..ocl.ast import Node
from ..uml.classifiers import Clazz, StructuredClassifier
from ..uml.features import Operation, Parameter
from ..uml.interactions import Interaction, Message
from ..uml.relationships import Association
from ..uml.statemachines import State, StateMachine
from .diagnostics import Diagnostic
from .registry import Severity, lint_rule
from .reachability import reachable_triggers
from .rules_statemachine import Atom, _atomize, _conjuncts, _satisfiable
from .runner import LintContext

# ---------------------------------------------------------------------------
# Classifier lookups shared by the interaction rules
# ---------------------------------------------------------------------------


def _receiver_classifier(message: Message) -> Optional[StructuredClassifier]:
    lifeline = message.receive_lifeline
    if lifeline is None:
        return None
    classifier = lifeline.represents
    return classifier if isinstance(classifier, StructuredClassifier) \
        else None


def _operations(classifier: StructuredClassifier) -> Dict[str, Operation]:
    """Callable operations by name: own + inherited + realized contracts."""
    found: Dict[str, Operation] = {}
    for operation in classifier.all_operations():
        found.setdefault(operation.name, operation)
    if isinstance(classifier, Clazz):
        for interface in classifier.realized_interfaces():
            for operation in interface.all_operations():
                found.setdefault(operation.name, operation)
    return found


def _machine_of(classifier: StructuredClassifier) -> Optional[StateMachine]:
    if isinstance(classifier, Clazz):
        return classifier.state_machine()
    return None


def _machine_triggers(machine: StateMachine) -> Set[str]:
    return {t.trigger for t in machine.all_transitions() if t.trigger}


# ---------------------------------------------------------------------------
# XD001 / XD002 / XD003 — interaction vs class model vs state machine
# ---------------------------------------------------------------------------


@lint_rule("XD001", "message-unresolved", "interaction",
           family="consistency",
           description="messages that name neither an operation nor a "
                       "state-machine event of the receiver's classifier")
def check_message_resolves(interaction: Interaction,
                           ctx: LintContext) -> Iterable[Diagnostic]:
    for message in interaction.messages:
        classifier = _receiver_classifier(message)
        if classifier is None or not message.name:
            continue
        if message.name in _operations(classifier):
            continue
        machine = _machine_of(classifier)
        if machine is not None and message.name in _machine_triggers(machine):
            continue
        yield ctx.diag(
            message,
            f"message '{message.name}' resolves to no operation or "
            f"state-machine event of '{classifier.name}'",
            related=classifier,
            hint="add the operation to the class (or the trigger to its "
                 "state machine), or rename the message")


@lint_rule("XD002", "message-signature", "interaction",
           family="consistency",
           description="messages whose explicit arguments disagree with "
                       "the resolved operation's signature")
def check_message_signature(interaction: Interaction,
                            ctx: LintContext) -> Iterable[Diagnostic]:
    for message in interaction.messages:
        classifier = _receiver_classifier(message)
        if classifier is None or not message.name:
            continue
        operation = _operations(classifier).get(message.name)
        if operation is None:
            continue
        arguments = list(message.arguments)
        if not arguments:
            continue               # unparameterised scenario shorthand
        parameters = operation.in_parameters()
        if len(arguments) != len(parameters):
            yield ctx.diag(
                message,
                f"message '{message.name}' carries {len(arguments)} "
                f"argument(s) but operation "
                f"'{operation.signature()}' of '{classifier.name}' "
                f"takes {len(parameters)}",
                related=operation,
                hint="match the message arguments to the operation "
                     "parameters")
            continue
        for argument, parameter in zip(arguments, parameters):
            mismatch = _literal_mismatch(argument, parameter)
            if mismatch:
                yield ctx.diag(
                    message,
                    f"message '{message.name}' argument "
                    f"{argument!r} is {mismatch} but parameter "
                    f"'{parameter.name}' of '{classifier.name}."
                    f"{operation.name}' expects "
                    f"{parameter.type.name if parameter.type else '?'}",
                    related=operation,
                    hint="fix the argument value or the parameter type")


def _literal_type(text: str) -> Optional[str]:
    """The UML primitive a textual literal denotes, or None (not a
    literal we can judge — identifiers and expressions stay untyped)."""
    value = (text or "").strip()
    if not value:
        return None
    lowered = value.lower()
    if lowered in ("true", "false"):
        return "Boolean"
    try:
        int(value)
        return "Integer"
    except ValueError:
        pass
    try:
        float(value)
        return "Real"
    except ValueError:
        pass
    if len(value) >= 2 and value[0] in "'\"" and value[-1] == value[0]:
        return "String"
    return None


def _literal_mismatch(argument: str, parameter: Parameter) -> Optional[str]:
    """A description of the literal/parameter type disagreement, if
    provable."""
    expected = parameter.type.name if parameter.type is not None else None
    if expected not in ("Integer", "Real", "Boolean", "String"):
        return None
    actual = _literal_type(argument)
    if actual is None or actual == expected:
        return None
    if actual == "Integer" and expected == "Real":
        return None                   # integers widen to reals
    return f"a {actual} literal"


@lint_rule("XD003", "message-unreachable-trigger", "interaction",
           family="consistency",
           description="messages whose trigger the receiver's state "
                       "machine only accepts in unreachable states")
def check_message_reachable(interaction: Interaction,
                            ctx: LintContext) -> Iterable[Diagnostic]:
    for message in interaction.messages:
        classifier = _receiver_classifier(message)
        if classifier is None or not message.name:
            continue
        if message.name in _operations(classifier):
            continue               # handled as a call, not an event
        machine = _machine_of(classifier)
        if machine is None \
                or message.name not in _machine_triggers(machine):
            continue               # XD001 territory
        accepted = reachable_triggers(machine)
        if accepted is None or message.name in accepted:
            continue
        yield ctx.diag(
            message,
            f"event '{message.name}' sent to '{classifier.name}' is "
            f"only accepted in states unreachable from machine "
            f"'{machine.name}'s initial configuration",
            related=machine,
            hint="connect the accepting state to the initial "
                 "configuration or retarget the message")


# ---------------------------------------------------------------------------
# XD004 — state machine vs class model (action-language features)
# ---------------------------------------------------------------------------


def _owning_classifier(element: Element) -> Optional[StructuredClassifier]:
    container = element.container
    if isinstance(container, StructuredClassifier):
        return container
    return None


def _action_programs(machine: StateMachine
                     ) -> List[Tuple[Element, str, str]]:
    """(anchor element, program kind, text) for every action program."""
    programs: List[Tuple[Element, str, str]] = []
    for transition in machine.all_transitions():
        if transition.effect:
            source = transition.source.name if transition.source else "?"
            programs.append((transition, f"effect (from '{source}')",
                             transition.effect))
    for vertex in machine.all_vertices():
        if isinstance(vertex, State):
            for kind, text in (("entry", vertex.entry),
                               ("exit", vertex.exit),
                               ("do", vertex.do_activity)):
                if text:
                    programs.append((vertex, f"{kind} of '{vertex.name}'",
                                     text))
    return programs


@lint_rule("XD004", "effect-unknown-feature", "statemachine",
           family="consistency",
           description="transition effects and state actions referencing "
                       "features the owning class does not declare")
def check_effect_features(machine: StateMachine,
                          ctx: LintContext) -> Iterable[Diagnostic]:
    owner = _owning_classifier(machine)
    if owner is None:
        return
    attributes = {p.name for p in owner.all_attributes()}
    operations = set(_operations(owner))
    links = {p.name: p.type for p in owner.all_attributes()
             if isinstance(p.type, Clazz)}
    for anchor, where, program in _action_programs(machine):
        for statement in parse_actions(program):
            if isinstance(statement, AssignStmt):
                target = statement.lhs
                if target.startswith("self."):
                    target = target[len("self."):]
                if "." in target or not target.isidentifier():
                    continue           # navigation chains: out of fragment
                if target not in attributes:
                    yield ctx.diag(
                        anchor,
                        f"{where} in machine '{machine.name}' assigns "
                        f"'{target}', which is not an attribute of "
                        f"'{owner.name}'",
                        severity=Severity.WARNING, related=owner,
                        hint=f"declare '{target}' on '{owner.name}' or "
                             f"fix the assignment target")
            elif isinstance(statement, CallStmt):
                receiver = (statement.receiver or "self").split(".")[-1]
                if receiver in ("self", ""):
                    callee, callee_ops = owner, operations
                elif receiver in links:
                    callee = links[receiver]
                    callee_ops = set(_operations(callee))
                else:
                    yield ctx.diag(
                        anchor,
                        f"{where} in machine '{machine.name}' calls "
                        f"'{statement.operation}' on '{receiver}', which "
                        f"is not an object-valued feature of "
                        f"'{owner.name}'",
                        related=owner,
                        hint="add the association end or call on self")
                    continue
                if statement.operation not in callee_ops:
                    yield ctx.diag(
                        anchor,
                        f"{where} in machine '{machine.name}' calls "
                        f"unknown operation '{statement.operation}' of "
                        f"'{callee.name}'",
                        related=callee,
                        hint=f"declare the operation on '{callee.name}'")
            elif isinstance(statement, SendStmt):
                target = statement.target.split(".")[-1]
                if target == "self" or target in links:
                    continue
                yield ctx.diag(
                    anchor,
                    f"{where} in machine '{machine.name}' sends "
                    f"'{statement.event}' to '{target}', which is not an "
                    f"object-valued feature of '{owner.name}' — the "
                    f"event would be lost at run time",
                    related=owner,
                    hint="add the association end or send to self")


# ---------------------------------------------------------------------------
# XD005 — class model vs object configurations (multiplicity feasibility)
# ---------------------------------------------------------------------------

#: stands in for an unbounded (``*``) upper bound; homogeneous scaling
#: makes any sufficiently large constant exact for rational feasibility
_UNBOUNDED = Fraction(10 ** 9)

#: a linear constraint  sum(coeffs[v] * x_v) <= const
_Constraint = Tuple[Dict[int, Fraction], Fraction]


def _fm_feasible(constraints: List[_Constraint], n_vars: int) -> bool:
    """Exact rational feasibility via Fourier–Motzkin elimination."""
    rows = [(dict(coeffs), const) for coeffs, const in constraints]
    for var in range(n_vars):
        positive, negative, rest = [], [], []
        for coeffs, const in rows:
            coefficient = coeffs.get(var, Fraction(0))
            if coefficient > 0:
                positive.append((coeffs, const))
            elif coefficient < 0:
                negative.append((coeffs, const))
            else:
                rest.append((coeffs, const))
        combined: List[_Constraint] = []
        for pos_coeffs, pos_const in positive:
            pc = pos_coeffs[var]
            for neg_coeffs, neg_const in negative:
                nc = -neg_coeffs[var]
                coeffs: Dict[int, Fraction] = {}
                for name, value in pos_coeffs.items():
                    if name != var:
                        coeffs[name] = value * nc
                for name, value in neg_coeffs.items():
                    if name == var:
                        continue
                    coeffs[name] = coeffs.get(name, Fraction(0)) \
                        + value * pc
                coeffs = {k: v for k, v in coeffs.items() if v != 0}
                combined.append((coeffs, pos_const * nc + neg_const * pc))
        rows = rest + combined
        # drop tautologies, detect contradictions early
        pruned = []
        for coeffs, const in rows:
            if not coeffs:
                if const < 0:
                    return False
                continue
            pruned.append((coeffs, const))
        rows = pruned
        if len(rows) > 4096:           # FM blow-up guard: give up (= sat)
            return True
    return all(const >= 0 for coeffs, const in rows)


def _component_constraints(classes: List[Clazz],
                           associations: List[Association]
                           ) -> Optional[List[_Constraint]]:
    """Link-count constraints over class-count variables 0..n-1 and one
    link variable per association (appended after the class counts)."""
    index = {id(cls): i for i, cls in enumerate(classes)}
    constraints: List[_Constraint] = []
    for var in range(len(classes) + len(associations)):
        constraints.append(({var: Fraction(-1)}, Fraction(0)))   # x >= 0
    for offset, association in enumerate(associations):
        link_var = len(classes) + offset
        ends = list(association.member_ends)
        if len(ends) != 2:
            return None
        for end, other in ((ends[0], ends[1]), (ends[1], ends[0])):
            # each instance of the *other* end's class holds
            # end.lower..end.upper links through this association
            if other.type is None or id(other.type) not in index:
                return None
            source_var = index[id(other.type)]
            try:
                raw_lower, raw_upper = int(end.lower), int(end.upper)
            except (TypeError, ValueError):
                return None            # degenerate bounds: not our rule
            lower = Fraction(max(raw_lower, 0))
            upper = _UNBOUNDED if raw_upper == -1 else Fraction(raw_upper)
            if lower > upper:
                return None            # ill-formed bounds: structural check
            # n_source * lower <= L  <=>  n_source*lower - L <= 0
            constraints.append(({source_var: lower,
                                 link_var: Fraction(-1)}, Fraction(0)))
            # L <= n_source * upper
            constraints.append(({link_var: Fraction(1),
                                 source_var: -upper}, Fraction(0)))
    return constraints


def _association_components(root: Element
                            ) -> List[Tuple[List[Clazz],
                                            List[Association]]]:
    """Connected components of the class–association graph."""
    classes: Dict[int, Clazz] = {}
    associations: List[Association] = []
    for element in [root] + list(root.all_contents()):
        if isinstance(element, Association):
            associations.append(element)
        elif isinstance(element, Clazz):
            classes.setdefault(id(element), element)

    parent: Dict[int, int] = {key: key for key in classes}

    def find(key: int) -> int:
        while parent[key] != key:
            parent[key] = parent[parent[key]]
            key = parent[key]
        return key

    linked: Dict[int, List[Association]] = {}
    for association in associations:
        ends = [end.type for end in association.member_ends
                if end.type is not None and id(end.type) in classes]
        if len(list(association.member_ends)) != len(ends) or not ends:
            continue
        anchor = find(id(ends[0]))
        for end_type in ends[1:]:
            parent[find(id(end_type))] = anchor
        linked.setdefault(id(association), []).append(association)

    groups: Dict[int, Tuple[List[Clazz], List[Association]]] = {}
    for key, cls in classes.items():
        groups.setdefault(find(key), ([], []))[0].append(cls)
    for association in associations:
        ends = [end.type for end in association.member_ends
                if end.type is not None and id(end.type) in classes]
        if len(list(association.member_ends)) == len(ends) and ends:
            groups[find(id(ends[0]))][1].append(association)
    return [group for group in groups.values() if group[1]]


#: skip pathological components rather than risk FM blow-up
_MAX_COMPONENT = 16


@lint_rule("XD005", "class-unsatisfiable", "model",
           family="consistency",
           description="classes whose association multiplicities admit "
                       "no finite non-empty object configuration")
def check_class_satisfiable(root: Element,
                            ctx: LintContext) -> Iterable[Diagnostic]:
    if not isinstance(root, Element):
        return
    for classes, associations in _association_components(root):
        if len(classes) + len(associations) > _MAX_COMPONENT:
            continue
        constraints = _component_constraints(classes, associations)
        if constraints is None:
            continue
        n_vars = len(classes) + len(associations)
        for position, cls in enumerate(classes):
            if getattr(cls, "is_abstract", False):
                continue
            query = constraints + [({position: Fraction(-1)},
                                    Fraction(-1))]      # n_cls >= 1
            if _fm_feasible(query, n_vars):
                continue
            culprit = associations[0] if len(associations) == 1 else None
            yield ctx.diag(
                cls,
                f"class '{cls.name}' can never be instantiated: no "
                f"finite object configuration satisfies the "
                f"multiplicities of its association(s) "
                f"({', '.join(a.name or '(unnamed)' for a in associations)})",
                related=culprit,
                hint="relax the association multiplicities so a "
                     "population with at least one instance exists")


# ---------------------------------------------------------------------------
# XD006 — OCL invariants no instance can satisfy
# ---------------------------------------------------------------------------


def _ast_constraints(node: Node) -> Optional[Dict[str, List[Atom]]]:
    """Per-variable atoms of a conjunction AST; None outside the
    fragment (same decomposition SM002 applies to guard text)."""
    store: Dict[str, List[Atom]] = {}
    for conjunct in _conjuncts(node):
        atom = _atomize(conjunct)
        if atom is None:
            return None
        name, op, value = atom
        store.setdefault(name, []).append((op, value))
    return store


@lint_rule("XD006", "invariant-unsatisfiable", "metaclass",
           family="consistency",
           description="registered OCL invariants that are provably "
                       "unsatisfiable — no instance can ever pass")
def check_invariant_satisfiable(metaclass: MetaClass,
                                ctx: LintContext) -> Iterable[Diagnostic]:
    for invariant in metaclass.invariants:
        ast = getattr(invariant, "ast", None)
        if ast is None:
            continue
        store = _ast_constraints(ast)
        if store is None:
            continue
        for name, atoms in store.items():
            if not _satisfiable(atoms):
                yield ctx.diag(
                    metaclass,
                    f"invariant '{invariant.name}' "
                    f"({invariant.expression!r}) is unsatisfiable: the "
                    f"constraints on '{name}' contradict — every "
                    f"instance of '{metaclass.name}' will fail it",
                    related=invariant,
                    hint="fix the contradictory comparison bounds")
                break


# ---------------------------------------------------------------------------
# XD007 — messages without a supporting association
# ---------------------------------------------------------------------------


def _associated_pairs(root: Element) -> Set[Tuple[int, int]]:
    """Unordered classifier-id pairs connected by an association or an
    object-valued attribute."""
    pairs: Set[Tuple[int, int]] = set()

    def connect(a: Any, b: Any) -> None:
        if a is None or b is None:
            return
        pairs.add((id(a), id(b)))
        pairs.add((id(b), id(a)))

    for element in [root] + list(root.all_contents()):
        if isinstance(element, Association):
            types = [end.type for end in element.member_ends
                     if end.type is not None]
            for i, first in enumerate(types):
                for second in types[i:]:
                    connect(first, second)
        elif isinstance(element, StructuredClassifier):
            for prop in element.owned_attributes:
                if isinstance(prop.type, Clazz):
                    connect(element, prop.type)
    return pairs


def _ancestry(classifier: StructuredClassifier) -> List[Any]:
    return [classifier] + list(classifier.all_supers())


@lint_rule("XD007", "message-no-association", "interaction",
           family="consistency", severity=Severity.WARNING,
           description="messages between lifelines whose classifiers "
                       "share no association (no connector to carry the "
                       "communication)")
def check_message_association(interaction: Interaction,
                              ctx: LintContext) -> Iterable[Diagnostic]:
    root = ctx.root
    if root is None:
        return
    cache_key = ("xd007-pairs", id(root))
    pairs = ctx.cache.get(cache_key)
    if pairs is None:
        pairs = ctx.cache[cache_key] = _associated_pairs(root)
    for message in interaction.messages:
        sender_line, receiver_line = (message.send_lifeline,
                                      message.receive_lifeline)
        if sender_line is None or receiver_line is None:
            continue
        sender, receiver = sender_line.represents, receiver_line.represents
        if not isinstance(sender, Clazz) or not isinstance(receiver, Clazz):
            continue
        if sender is receiver:
            continue
        if any((id(a), id(b)) in pairs
               for a in _ancestry(sender) for b in _ancestry(receiver)):
            continue
        yield ctx.diag(
            message,
            f"message '{message.name}' flows from '{sender.name}' to "
            f"'{receiver.name}' but no association connects the two "
            f"classes",
            related=receiver,
            hint=f"associate '{sender.name}' with '{receiver.name}' in "
                 f"the class model")
