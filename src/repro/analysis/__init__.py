"""Static analysis of models: the lint engine.

The paper's discipline is that models are the primary artefacts — so
they deserve the same static scrutiny source code gets.  This package
provides it:

* a uniform :class:`~repro.mof.validate.Diagnostic` record shared with
  the structural validator and the UML well-formedness rules;
* a :class:`~repro.analysis.registry.RuleRegistry` of lint rules with
  per-run enable/disable and severity overrides
  (:class:`~repro.analysis.registry.LintConfig`);
* a batch :class:`~repro.analysis.runner.ModelLinter` that walks a
  model once and dispatches to every applicable rule;
* the bundled rules: OCL static type checking of invariants and guards
  (``OCL001``–``OCL010`` via ``OCL101``–``OCL103``), state-machine
  dead code and nondeterminism (``SM001``–``SM003``), activity
  fork/join imbalance (``ACT001``–``ACT003``) and transformation rule
  conflicts (``TR001``–``TR003``);
* the cross-diagram **consistency** family (``XD001``–``XD007``,
  :mod:`~repro.analysis.rules_consistency`), which checks the *set* of
  diagrams describing one system against each other — interactions
  against class operations and state-machine triggers (via the memoised
  reachable-trigger analysis in :mod:`~repro.analysis.reachability`),
  state-machine actions against class features, and multiplicities and
  invariants for satisfiability.  Select it with
  ``ModelLinter(families=("consistency",))`` or
  ``Session.check(families=["consistency"])``.

Typical use::

    from repro.analysis import ModelLinter
    report = ModelLinter().lint(model_root)
    if not report.ok:
        print(report.render())

(or, for the unified multi-checker API, ``repro.session.Session``).
"""

from .diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    ValidationReport,
    model_path,
)
from .registry import (
    DEFAULT_REGISTRY,
    FAMILIES,
    LintConfig,
    LintRule,
    RuleRegistry,
    TARGETS,
    lint_rule,
)
from .runner import (
    LintContext,
    ModelLinter,
    lint_model,
    lint_transformation,
)

# importing the rule modules registers their rules on DEFAULT_REGISTRY
from . import rules_activity       # noqa: E402,F401
from . import rules_consistency    # noqa: E402,F401
from . import rules_ocl            # noqa: E402,F401
from . import rules_statemachine   # noqa: E402,F401
from . import rules_transform      # noqa: E402,F401
from . import rules_wellformed     # noqa: E402,F401

from .rules_ocl import ClassifierView, uml_type_to_ocl  # noqa: E402
from .rules_statemachine import (  # noqa: E402
    guard_constraints,
    guard_unsatisfiable,
    guards_overlap,
    reachable_vertices,
)
from .reachability import (  # noqa: E402
    ReachabilitySummary,
    compute_reachability,
    reachability,
    reachable_triggers,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "ValidationReport",
    "model_path",
    "DEFAULT_REGISTRY",
    "FAMILIES",
    "LintConfig",
    "LintRule",
    "RuleRegistry",
    "TARGETS",
    "lint_rule",
    "LintContext",
    "ModelLinter",
    "lint_model",
    "lint_transformation",
    "ClassifierView",
    "uml_type_to_ocl",
    "guard_constraints",
    "guard_unsatisfiable",
    "guards_overlap",
    "reachable_vertices",
    "ReachabilitySummary",
    "compute_reachability",
    "reachability",
    "reachable_triggers",
]
