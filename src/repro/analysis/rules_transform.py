"""Lint rules for transformation rule sets: shadowing and claim conflicts.

=======  ============================================================
TR001    dead rule — an earlier exclusive, guardless rule claims every
         element the later rule could match, so it never applies
TR002    order-dependent claim — two exclusive rules compete for the
         same source metaclass and only rule order decides the winner
TR003    duplicate images — a lazy rule shares its source metaclass
         with an eager rule, so on-demand application can produce a
         second image of an already-transformed element
=======  ============================================================

These mirror the engine's create-phase semantics exactly: non-lazy
rules are offered elements in declaration order, and an exclusive match
stops the search (:mod:`repro.transform.engine`).
"""

from __future__ import annotations

from typing import Iterable, List

from ..transform.rule import Rule
from .diagnostics import Diagnostic
from .registry import Severity, lint_rule
from .runner import LintContext


def _sources_overlap(first: Rule, second: Rule) -> bool:
    """Can one element conform to both rules' source metaclasses?"""
    return (first._source_meta.conforms_to(second._source_meta)
            or second._source_meta.conforms_to(first._source_meta))


def _claims_everything(rule: Rule, other: Rule) -> bool:
    """Does *rule* (earlier, exclusive, guardless) claim every element
    *other* could match?"""
    return (rule.exclusive and not rule.lazy and rule.guard is None
            and other._source_meta.conforms_to(rule._source_meta))


@lint_rule("TR001", "dead-rule", "transformation",
           description="rules shadowed by an earlier exclusive, "
                       "guardless rule on the same source metaclass")
def check_dead_rules(transformation,
                     ctx: LintContext) -> Iterable[Diagnostic]:
    rules: List[Rule] = list(transformation.rules)
    dead = ctx.cache.setdefault(("tr-dead", id(transformation)), set())
    for index, rule in enumerate(rules):
        if rule.lazy:
            continue
        for earlier in rules[:index]:
            if earlier.lazy or not _claims_everything(earlier, rule):
                continue
            dead.add(rule.name)
            yield ctx.diag(
                rule,
                f"rule '{rule.name}' (source {rule._source_meta.name}) "
                f"can never apply: earlier exclusive rule "
                f"'{earlier.name}' claims every "
                f"{earlier._source_meta.name} first",
                hint=f"reorder '{rule.name}' before '{earlier.name}', "
                     f"add a guard to '{earlier.name}', or mark it "
                     f"non-exclusive")
            break


@lint_rule("TR002", "order-dependent-claim", "transformation",
           severity=Severity.WARNING,
           description="exclusive rules whose claims on a shared source "
                       "metaclass depend on declaration order")
def check_order_dependent_claims(transformation,
                                 ctx: LintContext) -> Iterable[Diagnostic]:
    rules = [r for r in transformation.rules if not r.lazy]
    dead = ctx.cache.get(("tr-dead", id(transformation)), set())
    for index, first in enumerate(rules):
        if not first.exclusive:
            continue
        for second in rules[index + 1:]:
            if not second.exclusive or second.name in dead:
                continue
            if not _sources_overlap(first, second):
                continue
            if first.guard is None:
                continue              # total shadowing: that's TR001
            yield ctx.diag(
                second,
                f"rules '{first.name}' and '{second.name}' both claim "
                f"{second._source_meta.name} elements exclusively; "
                f"elements matching both guards go to "
                f"'{first.name}' only because it is declared first",
                hint="make the guards mutually exclusive or merge the "
                     "rules")


@lint_rule("TR003", "lazy-eager-duplicate", "transformation",
           severity=Severity.WARNING,
           description="lazy rules whose source metaclass an eager rule "
                       "already transforms (duplicate images)")
def check_lazy_eager_duplicates(transformation,
                                ctx: LintContext) -> Iterable[Diagnostic]:
    rules: List[Rule] = list(transformation.rules)
    for lazy in rules:
        if not lazy.lazy:
            continue
        for eager in rules:
            if eager.lazy or not eager.exclusive:
                continue
            if not _sources_overlap(lazy, eager):
                continue
            yield ctx.diag(
                lazy,
                f"lazy rule '{lazy.name}' and eager rule '{eager.name}' "
                f"both transform {lazy._source_meta.name}: applying "
                f"'{lazy.name}' on demand creates a second image of an "
                f"element '{eager.name}' already transformed",
                hint="narrow one rule's source type or resolve through "
                     "the trace before applying the lazy rule")
            break
