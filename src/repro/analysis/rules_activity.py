"""Lint rules for activities: fork/join token-flow imbalance.

=======  ============================================================
ACT001   join starvation — the join's incoming flows can never all
         carry a token concurrently (deadlock)
ACT002   token overfeed — a fork sends more tokens toward a join
         than the join consumes (leaked tokens)
ACT003   degenerate fork — fewer than two outgoing branches
=======  ============================================================

The analysis is structural: a join is *fed* when some single fork has
distinct branches reaching each of the join's incoming edges (checked
with a small bipartite matching).  Cyclic activities are exempted from
ACT001 — a loop can legitimately deliver tokens to a join across
iterations, so only acyclic starvation is provable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..uml.activities import (
    Activity,
    ActivityNode,
    ForkNode,
    JoinNode,
)
from .diagnostics import Diagnostic
from .registry import Severity, lint_rule
from .runner import LintContext


def _reachable_from(start: ActivityNode) -> Set[int]:
    seen: Set[int] = set()
    frontier: List[ActivityNode] = [start]
    while frontier:
        node = frontier.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        for edge in node.outgoing():
            if edge.target is not None:
                frontier.append(edge.target)
    return seen


def _reach_map(activity: Activity) -> Dict[int, Set[int]]:
    return {id(node): _reachable_from(node) for node in activity.nodes}


def _match_branches(fork: ForkNode, input_sources: List[ActivityNode],
                    reach: Dict[int, Set[int]]) -> bool:
    """Can each join input be fed by a *distinct* branch of *fork*?"""
    branch_targets = [edge.target for edge in fork.outgoing()
                      if edge.target is not None]
    feeds = [[index for index, branch in enumerate(branch_targets)
              if id(source) in reach.get(id(branch), set())
              or branch is source]
             for source in input_sources]

    used: Set[int] = set()

    def assign(position: int) -> bool:
        if position == len(feeds):
            return True
        for branch_index in feeds[position]:
            if branch_index in used:
                continue
            used.add(branch_index)
            if assign(position + 1):
                return True
            used.remove(branch_index)
        return False

    return assign(0)


@lint_rule("ACT001", "join-starvation", "activity",
           description="joins whose incoming flows cannot all carry a "
                       "token concurrently")
def check_join_starvation(activity: Activity,
                          ctx: LintContext) -> Iterable[Diagnostic]:
    reach = ctx.cache.setdefault(("act-reach", id(activity)),
                                 _reach_map(activity))
    initial = activity.initial_node()
    initial_reach = reach.get(id(initial), set()) if initial else set()
    forks = [node for node in activity.nodes if isinstance(node, ForkNode)]
    for join in activity.nodes:
        if not isinstance(join, JoinNode):
            continue
        sources = [edge.source for edge in join.incoming()
                   if edge.source is not None]
        if len(sources) < 2:
            continue                  # uml-act-join covers degenerate joins
        in_cycle = any(id(join) in reach.get(id(edge.target), set())
                       for edge in join.outgoing()
                       if edge.target is not None)
        if in_cycle:
            continue                  # join inside a cycle: tokens recur
        unreached = [source for source in sources
                     if initial is not None
                     and id(source) not in initial_reach]
        if unreached:
            names = ", ".join(f"'{node.name}'" for node in unreached)
            yield ctx.diag(
                join,
                f"join '{join.name}' can never fire: incoming flow(s) "
                f"from {names} are unreachable from the initial node",
                hint="connect the dead branch or drop the join input")
            continue
        if not any(_match_branches(fork, sources, reach) for fork in forks):
            yield ctx.diag(
                join,
                f"join '{join.name}' waits for {len(sources)} tokens but "
                f"no fork produces them on distinct branches — its inputs "
                f"are sequential or mutually exclusive (deadlock)",
                hint="fan the flows out of a fork, or use a merge node "
                     "instead of a join")


@lint_rule("ACT002", "token-overfeed", "activity",
           severity=Severity.WARNING,
           description="forks sending more tokens toward a join than it "
                       "consumes")
def check_token_overfeed(activity: Activity,
                         ctx: LintContext) -> Iterable[Diagnostic]:
    reach = ctx.cache.setdefault(("act-reach", id(activity)),
                                 _reach_map(activity))
    joins = [node for node in activity.nodes if isinstance(node, JoinNode)]
    for fork in activity.nodes:
        if not isinstance(fork, ForkNode):
            continue
        branch_targets = [edge.target for edge in fork.outgoing()
                          if edge.target is not None]
        for join in joins:
            feeding = [branch for branch in branch_targets
                       if id(join) in reach.get(id(branch), set())]
            consumed = len(join.incoming())
            if len(feeding) > consumed:
                yield ctx.diag(
                    fork,
                    f"fork '{fork.name}' sends {len(feeding)} tokens "
                    f"toward join '{join.name}', which only consumes "
                    f"{consumed} — the excess tokens leak",
                    hint="balance the fork's branches against the "
                         "join's incoming edges")


@lint_rule("ACT003", "degenerate-fork", "activity",
           severity=Severity.WARNING,
           description="forks with fewer than two outgoing branches")
def check_degenerate_fork(activity: Activity,
                          ctx: LintContext) -> Iterable[Diagnostic]:
    for node in activity.nodes:
        if isinstance(node, ForkNode) and len(node.outgoing()) < 2:
            yield ctx.diag(
                node,
                f"fork '{node.name}' has {len(node.outgoing())} outgoing "
                f"branch(es) — a fork should split the flow",
                hint="remove the fork or add branches")
