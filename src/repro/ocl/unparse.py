"""Unparser: OCL ASTs back to concrete syntax.

Produces text that re-parses to an equal AST (the property tests assert
``parse(unparse(node)) == node``), which makes expressions storable,
diffable and transformable like any other model artifact.  Output is
fully parenthesised where precedence could bite, minimal where it cannot.
"""

from __future__ import annotations

from .ast import (
    ArrowCall,
    TupleLiteral,
    BinOp,
    Call,
    CollectionLiteral,
    If,
    Ident,
    Let,
    Literal,
    Nav,
    Node,
    Range,
    SelfExpr,
    UnOp,
)

# precedence levels, higher binds tighter (mirrors the parser)
_PRECEDENCE = {
    "implies": 1,
    "or": 2, "xor": 2,
    "and": 3,
    "=": 5, "<>": 5, "<": 5, "<=": 5, ">": 5, ">=": 5,
    "+": 6, "-": 6,
    "*": 7, "/": 7, "div": 7, "mod": 7,
}

_KEYWORD_OPS = {"implies", "or", "xor", "and", "div", "mod"}


def unparse(node: Node) -> str:
    """AST → concrete OCL-like syntax."""
    return _unparse(node, 0)


def _unparse(node: Node, parent_precedence: int) -> str:
    if isinstance(node, Literal):
        return _literal(node.value)
    if isinstance(node, SelfExpr):
        return "self"
    if isinstance(node, Ident):
        return node.name
    if isinstance(node, Nav):
        return f"{_unparse(node.source, 99)}.{node.name}"
    if isinstance(node, Call):
        args = ", ".join(_unparse(a, 0) for a in node.args)
        source = f"{_unparse(node.source, 99)}." if node.source else ""
        return f"{source}{node.name}({args})"
    if isinstance(node, ArrowCall):
        source = _unparse(node.source, 99)
        if node.body is not None:
            iterators = ", ".join(node.iterators)
            return (f"{source}->{node.name}({iterators} | "
                    f"{_unparse(node.body, 0)})")
        args = ", ".join(_unparse(a, 0) for a in node.args)
        return f"{source}->{node.name}({args})"
    if isinstance(node, UnOp):
        operand = _unparse(node.operand, 8)
        if node.op == "not":
            return _wrap(f"not {operand}", 4, parent_precedence)
        return _wrap(f"-{operand}", 8, parent_precedence)
    if isinstance(node, BinOp):
        precedence = _PRECEDENCE[node.op]
        spelled = node.op
        # comparisons are NON-associative in the grammar: both operands
        # must bind tighter; other ops are rendered left-associative
        comparison = spelled in ("=", "<>", "<", "<=", ">", ">=")
        left = _unparse(node.left,
                        precedence + 1 if comparison else precedence)
        right = _unparse(node.right, precedence + 1)
        return _wrap(f"{left} {spelled} {right}", precedence,
                     parent_precedence)
    if isinstance(node, If):
        return (f"if {_unparse(node.condition, 0)} "
                f"then {_unparse(node.then_branch, 0)} "
                f"else {_unparse(node.else_branch, 0)} endif")
    if isinstance(node, Let):
        return (f"let {node.name} = {_unparse(node.value, 0)} "
                f"in {_unparse(node.body, 1)}")
    if isinstance(node, TupleLiteral):
        fields = ", ".join(f"{name} = {_unparse(expr, 0)}"
                           for name, expr in node.fields)
        return f"Tuple{{{fields}}}"
    if isinstance(node, CollectionLiteral):
        items = ", ".join(
            f"{_unparse(i.first, 0)}..{_unparse(i.last, 0)}"
            if isinstance(i, Range) else _unparse(i, 0)
            for i in node.items)
        return f"{node.kind}{{{items}}}"
    raise ValueError(f"cannot unparse {node!r}")


def _literal(value) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, float):
        text = repr(value)
        return text if "." in text else f"{text}.0"
    return str(value)


def _wrap(text: str, precedence: int, parent_precedence: int) -> str:
    if precedence < parent_precedence:
        return f"({text})"
    return text
