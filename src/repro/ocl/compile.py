"""Compilation of OCL ASTs into nested Python closures.

The interpreter in :mod:`repro.ocl.evaluator` re-dispatches on node type
(``getattr`` per node), rebuilds operation tables per call and re-resolves
names on every evaluation.  For the constraint hot path — the same small
expression evaluated against thousands of elements — almost all of that
work is invariant across evaluations, so this module stages it out
(classic partial evaluation a la Futamura): :func:`compile_expression`
walks the AST **once** and returns one ``env -> value`` callable per node,
with

* operator dispatch resolved at compile time (one closure per operator,
  short-circuiting ``and``/``or``/``implies`` compiled to Python's own
  short-circuit forms);
* stdlib binding done at compile time — string/number operation tables
  are module constants, iterator operations (``select``/``collect``/
  ``exists``/``forAll`` …) are hand-compiled loops that reuse a single
  child environment and rebind the iterator variable per item instead of
  allocating an :class:`~repro.ocl.evaluator.Environment` per element;
* implicit-``self`` feature lookup specialised against the *context*
  metaclass when one is given (a monomorphic inline cache guarded by a
  ``meta is context`` test, with the generic path as fallback);
* navigation sites carrying their own monomorphic ``(meta, feature)``
  inline cache.

Compiled closures are **behaviour-compatible with the interpreter**,
including undefined (``None``) propagation and the exact
:class:`~repro.ocl.errors.OclTypeError`/``OclEvaluationError`` messages —
the differential suite in ``tests/test_ocl_compile.py`` holds compiled ==
interpreted over the generated corpus.  The interpreter stays available
behind ``evaluate(..., compiled=False)``.

Caching: each distinct expression *text* is parsed once per process
(:func:`parse_cached`) and compiled once per ``(text, context)`` pair
(:func:`compile_expression`), so re-keying the same text against a
different context metaclass never reuses the other context's
specialisation.  :func:`cache_stats` exposes hit/miss counters; with the
observability layer on, compilation runs under an ``ocl.compile`` span
and cache traffic lands in the ``ocl.compile.cache`` counter family.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..mof.kernel import Element, MetaClass, _get_value
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ast import (
    ArrowCall,
    BinOp,
    Call,
    CollectionLiteral,
    If,
    Ident,
    Let,
    Literal,
    Nav,
    Node,
    Range,
    SelfExpr,
    TupleLiteral,
    UnOp,
)
from .errors import OclEvaluationError, OclTypeError
from .evaluator import _EVALUATOR, Environment, OclEvaluator, _normalize, truthy
from .parser import parse
from .stdlib import COLLECTION_OPS, _contains

#: A compiled node: environment in, value out.
Closure = Callable[[Environment], Any]

_equal = OclEvaluator._equal
_compare = OclEvaluator._compare
_arithmetic = OclEvaluator._arithmetic


# ---------------------------------------------------------------------------
# Compile-time operation tables (the interpreter rebuilds these per call)
# ---------------------------------------------------------------------------

STR_OPS: Dict[str, Callable[[str, List[Any]], Any]] = {
    "size": lambda s, a: len(s),
    "concat": lambda s, a: s + str(a[0]),
    "toUpperCase": lambda s, a: s.upper(),
    "toLowerCase": lambda s, a: s.lower(),
    "substring": lambda s, a: s[a[0] - 1:a[1]],
    "indexOf": lambda s, a: s.find(str(a[0])) + 1,
    "startsWith": lambda s, a: s.startswith(str(a[0])),
    "endsWith": lambda s, a: s.endswith(str(a[0])),
    "contains": lambda s, a: str(a[0]) in s,
    "trim": lambda s, a: s.strip(),
    "toInteger": lambda s, a: int(s),
    "toReal": lambda s, a: float(s),
}

NUM_OPS: Dict[str, Callable[[Any, List[Any]], Any]] = {
    "abs": lambda n, a: abs(n),
    "floor": lambda n, a: int(n // 1),
    "round": lambda n, a: int(round(n)),
    "max": lambda n, a: max(n, a[0]),
    "min": lambda n, a: min(n, a[0]),
    "toString": lambda n, a: str(n),
}


def _as_collection(value: Any) -> List[Any]:
    # OCL: arrow ops treat undefined as the empty collection and wrap
    # scalars (mirrors CollectionOps.run).
    if value is None:
        return []
    if isinstance(value, list):
        return value
    return [value]


def _call_plain(name: str, str_op, num_op, source: Any, args: List[Any]) -> Any:
    """Dot-call dispatch on an evaluated source value.

    Shared verbatim between the compiled ``Call`` closure and the columnar
    row planner (:mod:`repro.ocl.columns`) so the two paths can never
    diverge in semantics or error messages."""
    if isinstance(source, str):
        if str_op is None:
            raise OclEvaluationError(f"no String operation {name!r}")
        return _normalize(str_op(source, args))
    if isinstance(source, bool):
        raise OclEvaluationError(f"no operation {name!r} on Boolean")
    if isinstance(source, (int, float)):
        if num_op is None:
            raise OclEvaluationError(f"no numeric operation {name!r}")
        return _normalize(num_op(source, args))
    if isinstance(source, Element):
        fallback = getattr(source, name, None)
        if callable(fallback):
            return _normalize(fallback(*args))
        raise OclEvaluationError(
            f"'{source.meta.name}' has no operation {name!r}")
    if source is None:
        return None
    raise OclEvaluationError(f"cannot call {name!r} on {source!r}")


_MISS = object()


def _lookup_var(env: Environment, name: str) -> Tuple[bool, Any]:
    scope: Optional[Environment] = env
    while scope is not None:
        if name in scope.vars:
            return True, scope.vars[name]
        scope = scope.parent
    return False, None


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

class _Compiler:
    """One-shot AST walker producing a closure per node.

    *context*, when given, is the metaclass invariants of which the
    expression will usually be evaluated against.  It is purely an
    optimisation hint: implicit-self lookups precompute the context's
    feature and guard it with a ``meta is context`` test, so evaluating
    the same compiled closure against elements of *other* metaclasses
    still takes the generic (correct) path.
    """

    def __init__(self, context: Optional[MetaClass] = None):
        self.context = context

    def compile(self, node: Any) -> Closure:
        method = getattr(self, f"_c_{type(node).__name__}", None)
        if method is None:
            message = f"cannot evaluate node {node!r}"

            def raise_unknown(env: Environment) -> Any:
                raise OclEvaluationError(message)
            return raise_unknown
        return method(node)

    # -- leaves ----------------------------------------------------------

    def _c_Literal(self, node: Literal) -> Closure:
        value = node.value
        return lambda env: value

    def _c_SelfExpr(self, node: SelfExpr) -> Closure:
        def run(env: Environment) -> Any:
            found, value = _lookup_var(env, "self")
            if not found:
                raise OclEvaluationError("'self' is not bound")
            return _normalize(value)
        return run

    def _c_Ident(self, node: Ident) -> Closure:
        name = node.name
        context = self.context
        context_feature = (context.find_feature(name)
                           if context is not None else None)
        miss = _MISS

        def run(env: Environment) -> Any:
            # inlined _lookup_var / lookup_type: this closure is the
            # hottest in compiled invariants, and the env chain is short
            scope: Optional[Environment] = env
            while scope is not None:
                value = scope.vars.get(name, miss)
                if value is not miss:
                    return _normalize(value)
                scope = scope.parent
            scope = env
            while scope is not None:
                metaclass = scope._types.get(name)
                if metaclass is not None:
                    return metaclass
                scope = scope.parent
            self_object = None
            scope = env
            while scope is not None:
                value = scope.vars.get("self", miss)
                if value is not miss:
                    self_object = value
                    break
                scope = scope.parent
            if isinstance(self_object, Element):
                meta = self_object.meta
                feature = (context_feature if meta is context
                           else meta.find_feature(name))
                if feature is not None:
                    return _normalize(_get_value(self_object, feature))
            if isinstance(self_object, dict) and name in self_object:
                return _normalize(self_object[name])
            raise OclEvaluationError(f"unknown name {name!r}")
        return run

    def _c_CollectionLiteral(self, node: CollectionLiteral) -> Closure:
        parts: List[Tuple[bool, Closure, Optional[Closure]]] = []
        for item in node.items:
            if isinstance(item, Range):
                parts.append((True, self.compile(item.first),
                              self.compile(item.last)))
            else:
                parts.append((False, self.compile(item), None))
        dedupe = node.kind in ("Set", "OrderedSet")

        def run(env: Environment) -> Any:
            items: List[Any] = []
            for is_range, first_c, last_c in parts:
                if is_range:
                    first = first_c(env)
                    last = last_c(env)
                    if not isinstance(first, int) or not isinstance(last, int):
                        raise OclTypeError("range bounds must be Integers")
                    items.extend(range(first, last + 1))
                else:
                    items.append(first_c(env))
            if dedupe:
                deduped: List[Any] = []
                for value in items:
                    if not any(v is value or v == value for v in deduped):
                        deduped.append(value)
                return deduped
            return items
        return run

    def _c_TupleLiteral(self, node: TupleLiteral) -> Closure:
        fields = [(name, self.compile(expr)) for name, expr in node.fields]

        def run(env: Environment) -> Any:
            return {name: closure(env) for name, closure in fields}
        return run

    # -- navigation and calls --------------------------------------------

    def _c_Nav(self, node: Nav) -> Closure:
        source_c = self.compile(node.source)
        navigate = _make_navigator(node.name)
        return lambda env: navigate(source_c(env))

    def _c_Call(self, node: Call) -> Closure:
        name = node.name
        if name == "allInstances":
            source_c = self.compile(node.source)

            def run_all(env: Environment) -> Any:
                metaclass = source_c(env)
                if not isinstance(metaclass, MetaClass):
                    raise OclTypeError("allInstances() applies to types")
                return _normalize(env.instances(metaclass))
            return run_all
        if name in ("oclIsKindOf", "oclIsTypeOf", "oclAsType"):
            return self._c_type_op(node)
        if name == "oclIsUndefined":
            source_c = self.compile(node.source)
            return lambda env: source_c(env) is None

        source_c = self.compile(node.source) if node.source else None
        arg_cs = [self.compile(arg) for arg in node.args]
        str_op = STR_OPS.get(name)
        num_op = NUM_OPS.get(name)

        def run(env: Environment) -> Any:
            source = source_c(env) if source_c is not None else None
            args = [closure(env) for closure in arg_cs]
            return _call_plain(name, str_op, num_op, source, args)
        return run

    def _c_type_op(self, node: Call) -> Closure:
        name = node.name
        if len(node.args) != 1:
            message = f"{name} expects one type argument"

            def run_arity(env: Environment) -> Any:
                raise OclEvaluationError(message)
            return run_arity
        source_c = self.compile(node.source)
        arg_c = self.compile(node.args[0])

        def run(env: Environment) -> Any:
            value = source_c(env)
            type_arg = arg_c(env)
            if not isinstance(type_arg, MetaClass):
                raise OclTypeError(f"{name} argument must be a type")
            if name == "oclIsKindOf":
                return (isinstance(value, Element)
                        and value.meta.conforms_to(type_arg))
            if name == "oclIsTypeOf":
                return isinstance(value, Element) and value.meta is type_arg
            # oclAsType: checked identity cast
            if isinstance(value, Element) and value.meta.conforms_to(type_arg):
                return value
            return None
        return run

    def _c_ArrowCall(self, node: ArrowCall) -> Closure:
        name = node.name
        source_c = self.compile(node.source)
        arg_cs = [self.compile(arg) for arg in node.args]
        if node.body is not None:
            maker = _ITERATOR_COMPILERS.get(name)
            if maker is None:
                message = f"unknown iterator operation ->{name}()"

                def run_unknown_it(env: Environment) -> Any:
                    source_c(env)
                    for closure in arg_cs:
                        closure(env)
                    raise OclEvaluationError(message)
                return run_unknown_it
            body_c = self.compile(node.body)
            generic = maker(source_c, arg_cs, list(node.iterators), body_c)
            if name in ("forAll", "exists") and not node.args \
                    and len(node.iterators) == 1:
                fast = self._column_quantifier(node, generic)
                if fast is not None:
                    return fast
            return generic
        plain = COLLECTION_OPS.plain.get(name)
        if plain is None:
            message = f"unknown collection operation ->{name}()"

            def run_unknown(env: Environment) -> Any:
                source_c(env)
                for closure in arg_cs:
                    closure(env)
                raise OclEvaluationError(message)
            return run_unknown

        def run(env: Environment) -> Any:
            source = source_c(env)
            args = [closure(env) for closure in arg_cs]
            return _normalize(
                plain(_EVALUATOR, env, _as_collection(source), args))
        return run

    def _column_quantifier(self, node: ArrowCall,
                           generic: Closure) -> Optional[Closure]:
        """The bulk-read fast path for
        ``Type.allInstances()->forAll(x | <x.attr test>)`` (and
        ``exists``): when the environment's instance scope is backed by a
        :class:`~repro.mof.columns.ColumnStore`, the quantifier runs as a
        tight loop over the attribute's contiguous column instead of
        binding an iterator variable and navigating per element.

        The predicate reuses the compiler's own ``truthy``/``_equal``/
        ``_compare`` helpers and the column holds exactly the effective
        values ``_get_value`` would return in the same extent order, so
        results *and* first-error behaviour match the generic closure —
        which stays attached as the transparent fallback for cold or
        object-backed scopes (``env.columns`` returning ``None``)."""
        source = node.source
        if not (isinstance(source, Call) and source.name == "allInstances"
                and source.source is not None and not source.args):
            return None
        predicate = _column_predicate(node.body, node.iterators[0])
        if predicate is None:
            return None
        attr, test = predicate
        type_c = self.compile(source.source)
        forall = node.name == "forAll"

        def run(env: Environment) -> Any:
            metaclass = type_c(env)
            if isinstance(metaclass, MetaClass):
                column = env.columns(metaclass, attr)
                if column is not None:
                    if forall:
                        for value in column:
                            if not test(value):
                                return False
                        return True
                    for value in column:
                        if test(value):
                            return True
                    return False
            return generic(env)
        return run

    # -- operators --------------------------------------------------------

    def _c_UnOp(self, node: UnOp) -> Closure:
        operand_c = self.compile(node.operand)
        if node.op == "not":
            return lambda env: not truthy(operand_c(env))
        if node.op == "-":
            def run(env: Environment) -> Any:
                value = operand_c(env)
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    raise OclTypeError(
                        f"unary '-' needs a number, got {value!r}")
                return -value
            return run
        message = f"unknown unary operator {node.op!r}"

        def run_unknown(env: Environment) -> Any:
            operand_c(env)
            raise OclEvaluationError(message)
        return run_unknown

    def _c_BinOp(self, node: BinOp) -> Closure:
        op = node.op
        left_c = self.compile(node.left)
        right_c = self.compile(node.right)
        if op == "and":
            return lambda env: truthy(left_c(env)) and truthy(right_c(env))
        if op == "or":
            return lambda env: truthy(left_c(env)) or truthy(right_c(env))
        if op == "implies":
            return lambda env: ((not truthy(left_c(env)))
                                or truthy(right_c(env)))
        if op == "xor":
            def run_xor(env: Environment) -> Any:
                left = truthy(left_c(env))
                return left != truthy(right_c(env))
            return run_xor
        if op == "=":
            return lambda env: _equal(left_c(env), right_c(env))
        if op == "<>":
            return lambda env: not _equal(left_c(env), right_c(env))
        if op == "+":
            def run_plus(env: Environment) -> Any:
                left = left_c(env)
                right = right_c(env)
                if isinstance(left, str) or isinstance(right, str):
                    return str(left) + str(right)
                return _arithmetic("+", left, right)
            return run_plus
        if op in ("<", "<=", ">", ">="):
            def run_cmp(env: Environment) -> Any:
                left = left_c(env)
                return _compare(op, left, right_c(env))
            return run_cmp

        def run_arith(env: Environment) -> Any:
            left = left_c(env)
            return _arithmetic(op, left, right_c(env))
        return run_arith

    # -- control ----------------------------------------------------------

    def _c_If(self, node: If) -> Closure:
        condition_c = self.compile(node.condition)
        then_c = self.compile(node.then_branch)
        else_c = self.compile(node.else_branch)
        return lambda env: (then_c(env) if truthy(condition_c(env))
                            else else_c(env))

    def _c_Let(self, node: Let) -> Closure:
        name = node.name
        value_c = self.compile(node.value)
        body_c = self.compile(node.body)

        def run(env: Environment) -> Any:
            child = env.child()
            child.vars[name] = value_c(env)
            return body_c(child)
        return run


# ---------------------------------------------------------------------------
# Hand-compiled iterator operations
#
# One child environment per operation call, with the iterator variable
# rebound per item — the interpreter allocates a fresh Environment per
# element, which dominates its iterator cost.
# ---------------------------------------------------------------------------

def _mk_select(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        out = []
        if names:
            name = names[0]
            for item in source:
                child.vars[name] = item
                if truthy(body_c(child)):
                    out.append(item)
        else:
            for item in source:
                if truthy(body_c(child)):
                    out.append(item)
        return out
    return run


def _mk_reject(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        out = []
        if names:
            name = names[0]
            for item in source:
                child.vars[name] = item
                if not truthy(body_c(child)):
                    out.append(item)
        else:
            for item in source:
                if not truthy(body_c(child)):
                    out.append(item)
        return out
    return run


def _mk_collect(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        out: List[Any] = []
        for item in source:
            if name is not None:
                child.vars[name] = item
            value = body_c(child)
            if isinstance(value, list):
                out.extend(value)           # collect flattens one level
            elif value is not None:
                out.append(value)
        return out
    return run


def _mk_collect_nested(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        out: List[Any] = []
        for item in source:
            if name is not None:
                child.vars[name] = item
            out.append(body_c(child))
        return out
    return run


def _mk_for_all(source_c, arg_cs, iterators, body_c):
    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        if len(iterators) > 1:
            # forAll(x, y | ...) iterates the cartesian product
            first, second = iterators[0], iterators[1]
            for x in source:
                for y in source:
                    child.vars[first] = x
                    child.vars[second] = y
                    if not truthy(body_c(child)):
                        return False
            return True
        name = iterators[0] if iterators else None
        for item in source:
            if name is not None:
                child.vars[name] = item
            if not truthy(body_c(child)):
                return False
        return True
    return run


def _mk_exists(source_c, arg_cs, iterators, body_c):
    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        if len(iterators) > 1:
            first, second = iterators[0], iterators[1]
            for x in source:
                for y in source:
                    child.vars[first] = x
                    child.vars[second] = y
                    if truthy(body_c(child)):
                        return True
            return False
        name = iterators[0] if iterators else None
        for item in source:
            if name is not None:
                child.vars[name] = item
            if truthy(body_c(child)):
                return True
        return False
    return run


def _mk_one(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        count = 0
        for item in source:
            if name is not None:
                child.vars[name] = item
            if truthy(body_c(child)):
                count += 1
        return count == 1
    return run


def _mk_any(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        for item in source:
            if name is not None:
                child.vars[name] = item
            if truthy(body_c(child)):
                return item
        return None
    return run


def _mk_is_unique(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        seen: List[Any] = []
        for item in source:
            if name is not None:
                child.vars[name] = item
            value = body_c(child)
            if _contains(seen, value):
                return False
            seen.append(value)
        return True
    return run


def _mk_sorted_by(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        keyed = []
        for item in source:
            if name is not None:
                child.vars[name] = item
            keyed.append((body_c(child), item))
        try:
            keyed.sort(key=lambda pair: pair[0])
        except TypeError as exc:
            raise OclTypeError(f"->sortedBy keys not comparable: {exc}")
        return [item for _value, item in keyed]
    return run


def _mk_closure(source_c, arg_cs, iterators, body_c):
    names = iterators[:1]

    def run(env: Environment) -> Any:
        source = _as_collection(source_c(env))
        for closure in arg_cs:
            closure(env)
        child = env.child()
        name = names[0] if names else None
        out: List[Any] = []
        frontier = list(source)
        while frontier:
            current = frontier.pop(0)
            if name is not None:
                child.vars[name] = current
            step = body_c(child)
            neighbours = step if isinstance(step, list) else (
                [] if step is None else [step])
            for neighbour in neighbours:
                if not _contains(out, neighbour):
                    out.append(neighbour)
                    frontier.append(neighbour)
        return out
    return run


_ITERATOR_COMPILERS = {
    "select": _mk_select,
    "reject": _mk_reject,
    "collect": _mk_collect,
    "collectNested": _mk_collect_nested,
    "forAll": _mk_for_all,
    "exists": _mk_exists,
    "one": _mk_one,
    "any": _mk_any,
    "isUnique": _mk_is_unique,
    "sortedBy": _mk_sorted_by,
    "closure": _mk_closure,
}


def _column_predicate(
        body: Node, itervar: str
) -> Optional[Tuple[str, Callable[[Any], Any]]]:
    """Recognise quantifier bodies of the shape ``<itervar>.attr <test>``
    and return ``(attr, value -> bool)``, or ``None`` for anything the
    column fast path cannot express.

    Supported tests (each built from the exact helper the generic closure
    would call, so error behaviour is identical): bare boolean attribute,
    ``not``, ``oclIsUndefined`` (optionally negated), and comparison
    against a literal on either side."""
    def nav_attr(node: Any) -> Optional[str]:
        if isinstance(node, Nav) and isinstance(node.source, Ident) \
                and node.source.name == itervar:
            return node.name
        return None

    attr = nav_attr(body)
    if attr is not None:
        return attr, truthy
    if isinstance(body, UnOp) and body.op == "not":
        inner = _column_predicate(body.operand, itervar)
        if inner is None:
            return None
        attr, test = inner
        return attr, lambda value: not truthy(test(value))
    if isinstance(body, Call) and body.name == "oclIsUndefined" \
            and not body.args:
        attr = nav_attr(body.source)
        if attr is not None:
            return attr, lambda value: value is None
        return None
    if isinstance(body, BinOp) \
            and body.op in ("=", "<>", "<", "<=", ">", ">="):
        op = body.op
        attr = nav_attr(body.left)
        if attr is not None and isinstance(body.right, Literal):
            literal = body.right.value
            if op == "=":
                return attr, lambda value: _equal(value, literal)
            if op == "<>":
                return attr, lambda value: not _equal(value, literal)
            return attr, lambda value: _compare(op, value, literal)
        attr = nav_attr(body.right)
        if attr is not None and isinstance(body.left, Literal):
            literal = body.left.value
            if op == "=":
                return attr, lambda value: _equal(literal, value)
            if op == "<>":
                return attr, lambda value: not _equal(literal, value)
            return attr, lambda value: _compare(op, literal, value)
    return None


def _make_navigator(name: str) -> Callable[[Any], Any]:
    """A navigation closure with a monomorphic (meta → feature) cache."""
    cached_meta: Optional[MetaClass] = None
    cached_feature: Any = None

    def navigate(source: Any) -> Any:
        nonlocal cached_meta, cached_feature
        if source is None:
            return None
        if isinstance(source, list):
            out: List[Any] = []
            for item in source:
                value = navigate(item)
                if isinstance(value, list):
                    out.extend(value)
                elif value is not None:
                    out.append(value)
            return out
        if isinstance(source, Element):
            meta = source.meta
            if meta is cached_meta:
                feature = cached_feature
            else:
                feature = meta.find_feature(name)
                cached_meta, cached_feature = meta, feature
            if feature is not None:
                return _normalize(_get_value(source, feature))
            fallback = getattr(source, name, None)
            if fallback is not None and not callable(fallback):
                return _normalize(fallback)
            if callable(fallback):
                return _normalize(fallback())
            raise OclEvaluationError(
                f"'{meta.name}' has no feature {name!r}")
        if isinstance(source, dict):
            if name in source:
                return _normalize(source[name])
            raise OclEvaluationError(f"no key {name!r} in {source!r}")
        fallback = getattr(source, name, None)
        if fallback is not None:
            return _normalize(fallback() if callable(fallback) else fallback)
        raise OclEvaluationError(
            f"cannot navigate {name!r} from {source!r}")
    return navigate


# ---------------------------------------------------------------------------
# Compiled expressions and the process-wide caches
# ---------------------------------------------------------------------------

class CompiledExpression:
    """An OCL expression lowered to one Python callable.

    Calling it with an :class:`~repro.ocl.evaluator.Environment` evaluates
    it; :meth:`evaluate` additionally builds the same default environment
    :func:`repro.ocl.evaluate` would.  Holds strong references to its text,
    AST and context metaclass, which also keeps cache keys (built from
    ``id(context)``) collision-free for the cache's lifetime.
    """

    __slots__ = ("text", "ast", "context", "_fn")

    def __init__(self, text: Optional[str], ast: Node,
                 context: Optional[MetaClass], fn: Closure):
        self.text = text
        self.ast = ast
        self.context = context
        self._fn = fn

    def __call__(self, env: Environment) -> Any:
        return self._fn(env)

    def evaluate(self, env: Optional[Environment] = None,
                 **bindings: Any) -> Any:
        if env is None:
            self_object = bindings.get("self")
            if isinstance(self_object, Element):
                env = Environment.for_model(self_object.root(),
                                            self_object=self_object)
            else:
                env = Environment()
        for name, value in bindings.items():
            env.define(name, value)
        return self._fn(env)

    def __repr__(self) -> str:
        context = self.context.name if self.context is not None else None
        return f"<CompiledExpression {self.text!r} context={context}>"


_PARSE_CACHE: Dict[str, Node] = {}
_COMPILE_CACHE: Dict[Tuple[str, Optional[int]], CompiledExpression] = {}
#: AST-object compilations (id-keyed; the value pins the node so its id
#: cannot be recycled).  Bounded: cleared wholesale if it ever fills up.
_NODE_CACHE: Dict[int, CompiledExpression] = {}
_NODE_CACHE_LIMIT = 2048

_STATS = {
    "parse_hits": 0, "parse_misses": 0,
    "compile_hits": 0, "compile_misses": 0,
    "node_hits": 0, "node_misses": 0,
}


def _count(cache: str, result: str) -> None:
    _STATS[f"{cache}_{result}"] += 1
    if _trace.ON:
        _metrics.REGISTRY.counter(
            "ocl.compile.cache",
            help="OCL parse/compile cache traffic",
            cache=cache, result=result).inc()


def parse_cached(text: str) -> Node:
    """:func:`repro.ocl.parse`, memoised per expression text."""
    node = _PARSE_CACHE.get(text)
    if node is not None:
        _count("parse", "hits")
        return node
    node = parse(text)
    _count("parse", "misses")
    _PARSE_CACHE[text] = node
    return node


def compile_expression(
        text_or_node: Union[str, Node],
        context: Optional[Union[MetaClass, type]] = None
) -> CompiledExpression:
    """Compile an expression (text or parsed AST) to a closure, cached.

    Text is cached per ``(text, context metaclass)`` — the same text
    compiled against two different contexts yields two independent
    specialisations.  AST objects are cached by identity.
    """
    if isinstance(context, type):
        context = context._meta
    if isinstance(text_or_node, str):
        key = (text_or_node, id(context) if context is not None else None)
        cached = _COMPILE_CACHE.get(key)
        if cached is not None and cached.context is context:
            _count("compile", "hits")
            return cached
        _count("compile", "misses")
        ast = parse_cached(text_or_node)
        compiled = _build(text_or_node, ast, context)
        _COMPILE_CACHE[key] = compiled
        return compiled
    cached = _NODE_CACHE.get(id(text_or_node))
    if cached is not None and cached.ast is text_or_node \
            and cached.context is context:
        _count("node", "hits")
        return cached
    _count("node", "misses")
    compiled = _build(None, text_or_node, context)
    if len(_NODE_CACHE) >= _NODE_CACHE_LIMIT:
        _NODE_CACHE.clear()
    _NODE_CACHE[id(text_or_node)] = compiled
    return compiled


def _build(text: Optional[str], ast: Node,
           context: Optional[MetaClass]) -> CompiledExpression:
    if not _trace.ON:
        fn = _Compiler(context).compile(ast)
    else:
        with _trace.span(
                "ocl.compile",
                context=context.name if context is not None else "",
                expression=(text if text is not None else "<ast>")[:80]):
            fn = _Compiler(context).compile(ast)
    return CompiledExpression(text, ast, context, fn)


def cache_stats() -> Dict[str, int]:
    """Sizes and hit/miss counters of the parse/compile caches."""
    stats = dict(_STATS)
    stats["parse_size"] = len(_PARSE_CACHE)
    stats["compile_size"] = len(_COMPILE_CACHE)
    stats["node_size"] = len(_NODE_CACHE)
    return stats


def clear_caches() -> None:
    """Drop all cached parses/compilations and reset the counters."""
    _PARSE_CACHE.clear()
    _COMPILE_CACHE.clear()
    _NODE_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0
