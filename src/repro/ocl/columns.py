"""Columnar row plans: evaluating invariants extent-wide over columns.

The ``invariant`` and ``constraint`` checker families evaluate one small
boolean expression against every conforming element.  With a
:class:`~repro.mof.columns.ColumnStore` active, this module compiles the
expression's AST into a **row plan** — a ``row -> value`` callable over
one exact-metaclass :class:`~repro.mof.columns.ExtentColumns` block that
reads attribute/reference columns positionally instead of going through
``Environment`` chains, ``element.root()`` walks and per-object ``eget``.

Row plans power a *suspect scan*: for each extent block, evaluate the
invariant over every row and collect the elements whose result is not
exactly ``True`` (violations **and** raisers).  The caller then re-runs
the ordinary per-element checker only over the suspects, in model order —
so the reported diagnostics are produced by the same code path as the
sequential run (byte-identical documents), while the common all-clean
case never touches a single element object.

The planner is deliberately conservative: any node it cannot prove
column-equivalent (navigation chains, iterator bodies over many-valued
features, names that could resolve to types, ``allInstances``) bails,
and the caller falls back to per-element ``Invariant.holds`` for that
(invariant, metaclass) pair — same cost as the sequential path, never
worse.  Where it does plan, every runtime primitive is the compiler's own
(``truthy``/``_equal``/``_compare``/``_arithmetic``/``_call_plain``), so
planned evaluation cannot diverge from compiled evaluation semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

from ..mof.columns import ATTR1, LENN, REF1, REFN, ColumnStore, ExtentColumns
from ..mof.kernel import Element, MetaClass, Reference
from .ast import (
    ArrowCall,
    BinOp,
    Call,
    If,
    Ident,
    Let,
    Literal,
    Nav,
    SelfExpr,
    UnOp,
)
from .compile import (
    NUM_OPS,
    STR_OPS,
    _arithmetic,
    _call_plain,
    _compare,
    _equal,
)
from .evaluator import truthy

if TYPE_CHECKING:                                   # pragma: no cover
    from .invariants import Invariant

#: A planned node: row index in, value out.
RowPlan = Callable[[int], Any]


class _Bail(Exception):
    """Raised during planning for any construct the columns can't express."""


def _type_names(store: ColumnStore,
                extra_packages: List[Any]) -> Set[str]:
    """Every classifier name the invariant environments could resolve:
    identifiers colliding with these must not be planned as implicit-self
    features (the environment resolves types before self features)."""
    packages = []
    seen: Set[int] = set()
    for meta in store.extent_metaclasses():
        if meta.package is not None:
            packages.append(meta.package)
    packages.extend(p for p in extra_packages if p is not None)
    names: Set[str] = set()
    for package in packages:
        top = package
        while getattr(top, "parent", None) is not None:
            top = top.parent
        if id(top) in seen:
            continue
        seen.add(id(top))
        for pkg in top.all_packages():
            names.update(pkg.classifiers)
    return names


class _RowPlanner:
    """Compiles one invariant AST against one extent block."""

    def __init__(self, block: ExtentColumns, type_names: Set[str]):
        self.block = block
        self.meta = block.meta
        self.type_names = type_names

    def plan(self, node: Any,
             bindings: Dict[str, RowPlan]) -> RowPlan:
        method = getattr(self, f"_p_{type(node).__name__}", None)
        if method is None:
            raise _Bail
        return method(node, bindings)

    # -- leaves -----------------------------------------------------------

    def _p_Literal(self, node: Literal, bindings) -> RowPlan:
        value = node.value
        return lambda row: value

    def _p_SelfExpr(self, node: SelfExpr, bindings) -> RowPlan:
        elements = self.block.elements
        return lambda row: elements[row]

    def _p_Ident(self, node: Ident, bindings) -> RowPlan:
        name = node.name
        bound = bindings.get(name)
        if bound is not None:
            return bound
        # generic resolution order is vars -> types -> implicit self
        # feature; only plan as a feature when no type could shadow it
        if name in self.type_names:
            raise _Bail
        return self._feature_column(name)

    # -- navigation -------------------------------------------------------

    def _p_Nav(self, node: Nav, bindings) -> RowPlan:
        if not isinstance(node.source, SelfExpr):
            raise _Bail           # single self-hop only
        return self._feature_column(node.name)

    def _feature_column(self, name: str) -> RowPlan:
        feature = self.meta.find_feature(name)
        if feature is None:
            raise _Bail           # generic path would try object fallbacks
        kind = self.block.kinds.get(name)
        if kind in (ATTR1, REF1):
            column = self.block.columns[name]
            return lambda row: column[row]
        raise _Bail               # many-valued: only sizes are columnar

    def _many_lengths(self, node: Any) -> Optional[RowPlan]:
        """Lengths plan for a ``self.<many-feature>`` navigation, or None
        when *node* is not one."""
        if isinstance(node, Nav) and isinstance(node.source, SelfExpr):
            name = node.name
        elif isinstance(node, Ident) and node.name not in self.type_names:
            name = node.name
        else:
            return None
        feature = self.meta.find_feature(name)
        if feature is None or not feature.many:
            return None
        kind = self.block.kinds.get(name)
        column = self.block.columns[name]
        if kind == LENN:
            return lambda row: column[row]
        if kind == REFN:
            return lambda row: len(column[row])
        return None

    # -- calls ------------------------------------------------------------

    def _p_Call(self, node: Call, bindings) -> RowPlan:
        name = node.name
        if name == "oclIsUndefined":
            if node.args or node.source is None:
                raise _Bail
            source = self.plan(node.source, bindings)
            return lambda row: source(row) is None
        if name in ("allInstances", "oclIsKindOf", "oclIsTypeOf",
                    "oclAsType"):
            raise _Bail           # need the environment's type namespace
        if node.source is None:
            raise _Bail
        source = self.plan(node.source, bindings)
        args = [self.plan(arg, bindings) for arg in node.args]
        str_op = STR_OPS.get(name)
        num_op = NUM_OPS.get(name)

        def run(row: int) -> Any:
            return _call_plain(name, str_op, num_op, source(row),
                               [arg(row) for arg in args])
        return run

    def _p_ArrowCall(self, node: ArrowCall, bindings) -> RowPlan:
        if node.body is not None or node.args or node.source is None:
            raise _Bail
        lengths = self._many_lengths(node.source)
        if lengths is None:
            raise _Bail
        if node.name == "size":
            return lengths
        if node.name == "isEmpty":
            return lambda row: lengths(row) == 0
        if node.name == "notEmpty":
            return lambda row: lengths(row) != 0
        raise _Bail

    # -- operators --------------------------------------------------------

    def _p_UnOp(self, node: UnOp, bindings) -> RowPlan:
        operand = self.plan(node.operand, bindings)
        if node.op == "not":
            return lambda row: not truthy(operand(row))
        if node.op == "-":
            def run(row: int) -> Any:
                value = operand(row)
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    from .errors import OclTypeError
                    raise OclTypeError(
                        f"unary '-' needs a number, got {value!r}")
                return -value
            return run
        raise _Bail

    def _p_BinOp(self, node: BinOp, bindings) -> RowPlan:
        op = node.op
        left = self.plan(node.left, bindings)
        right = self.plan(node.right, bindings)
        if op == "and":
            return lambda row: truthy(left(row)) and truthy(right(row))
        if op == "or":
            return lambda row: truthy(left(row)) or truthy(right(row))
        if op == "implies":
            return lambda row: (not truthy(left(row))) or truthy(right(row))
        if op == "xor":
            def run_xor(row: int) -> Any:
                first = truthy(left(row))
                return first != truthy(right(row))
            return run_xor
        if op == "=":
            return lambda row: _equal(left(row), right(row))
        if op == "<>":
            return lambda row: not _equal(left(row), right(row))
        if op == "+":
            def run_plus(row: int) -> Any:
                lhs = left(row)
                rhs = right(row)
                if isinstance(lhs, str) or isinstance(rhs, str):
                    return str(lhs) + str(rhs)
                return _arithmetic("+", lhs, rhs)
            return run_plus
        if op in ("<", "<=", ">", ">="):
            return lambda row: _compare(op, left(row), right(row))
        return lambda row: _arithmetic(op, left(row), right(row))

    # -- control ----------------------------------------------------------

    def _p_If(self, node: If, bindings) -> RowPlan:
        condition = self.plan(node.condition, bindings)
        then_plan = self.plan(node.then_branch, bindings)
        else_plan = self.plan(node.else_branch, bindings)
        return lambda row: (then_plan(row) if truthy(condition(row))
                            else else_plan(row))

    def _p_Let(self, node: Let, bindings) -> RowPlan:
        value_plan = self.plan(node.value, bindings)
        cell: List[Any] = [None]
        child = dict(bindings)
        child[node.name] = lambda row: cell[0]
        body_plan = self.plan(node.body, child)

        def run(row: int) -> Any:
            # eager, like the compiled Let: a raising binding must raise
            # even when the body never reads it
            cell[0] = value_plan(row)
            return body_plan(row)
        return run


def compile_row_plan(ast: Any, block: ExtentColumns,
                     type_names: Set[str]) -> Optional[RowPlan]:
    """A ``row -> value`` plan of *ast* over *block*, or ``None`` when any
    sub-expression cannot be proven column-equivalent."""
    try:
        return _RowPlanner(block, type_names).plan(ast, {})
    except _Bail:
        return None


def _scan_block(plan: RowPlan, elements: List[Element],
                flagged: Dict[int, Element]) -> None:
    # holds() maps True -> ok and everything else (False, None, non-bool,
    # raise) to "needs a diagnostic"; the re-run reproduces which one
    for row, element in enumerate(elements):
        try:
            ok = plan(row) is True
        except Exception:
            ok = False
        if not ok:
            flagged[id(element)] = element


def flag_registered_suspects(store: ColumnStore) -> Dict[int, Element]:
    """Elements that *will* carry a diagnostic from the metaclass-registered
    invariants (the ``invariant`` family), as ``{id(e): e}``.

    Exact, not an over-approximation: planned invariants are evaluated
    over columns, unplannable ones per element over the extent — either
    way an element is flagged iff ``holds()`` is not ``True`` for some
    invariant in its metaclass chain."""
    flagged: Dict[int, Element] = {}
    type_names: Optional[Set[str]] = None
    for meta in store.extent_metaclasses():
        invariants = [inv
                      for metaclass in [meta] + meta.all_superclasses()
                      for inv in metaclass.invariants]
        if not invariants:
            continue
        block = store.block(meta)
        elements = block.elements
        if not elements:
            continue
        if type_names is None:
            type_names = _type_names(
                store, [inv.context.package for inv in invariants])
        for inv in invariants:
            plan = compile_row_plan(inv.ast, block, type_names)
            if plan is not None:
                _scan_block(plan, elements, flagged)
                continue
            for element in elements:
                try:
                    ok = inv.holds(element) is True
                except Exception:
                    ok = False
                if not ok:
                    flagged[id(element)] = element
    return flagged


def flag_constraint_suspects(inv: "Invariant",
                             store: ColumnStore) -> Optional[Set[int]]:
    """The ids of conforming elements needing a diagnostic for detached
    invariant *inv* (the ``constraint`` family), or ``None`` when any
    conforming extent block cannot be planned (caller falls back to the
    full candidate loop for this invariant)."""
    flagged: Dict[int, Element] = {}
    type_names = _type_names(store, [inv.context.package])
    for meta in [inv.context] + inv.context.all_subclasses():
        block = store.block(meta)
        if not block.elements:
            continue
        plan = compile_row_plan(inv.ast, block, type_names)
        if plan is None:
            return None
        _scan_block(plan, block.elements, flagged)
    return set(flagged)
