"""AST node types for the OCL-like language.

Plain dataclasses; the evaluator dispatches on node type.  Every node keeps
its source position for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class Node:
    position: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Literal(Node):
    """An int/float/str/bool/None literal."""
    value: Any = None


@dataclass(frozen=True)
class SelfExpr(Node):
    """The contextual instance ``self``."""


@dataclass(frozen=True)
class Ident(Node):
    """A variable or type name reference."""
    name: str = ""


@dataclass(frozen=True)
class CollectionLiteral(Node):
    """``Set{...}`` / ``Sequence{...}``; ranges appear as Range items."""
    kind: str = "Set"
    items: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class TupleLiteral(Node):
    """``Tuple{name = expr, ...}`` — evaluates to a field dictionary."""
    fields: Tuple[Tuple[str, "Node"], ...] = ()


@dataclass(frozen=True)
class Range(Node):
    """``a..b`` inside a collection literal."""
    first: Optional[Node] = None
    last: Optional[Node] = None


@dataclass(frozen=True)
class Nav(Node):
    """Dot navigation ``source.name`` (attribute or association end).

    When applied to a collection, navigation maps over the elements
    (OCL's implicit collect).
    """
    source: Optional[Node] = None
    name: str = ""


@dataclass(frozen=True)
class Call(Node):
    """Dot call ``source.name(args)`` — operation on an object, or a
    built-in like ``oclIsKindOf``; ``source is None`` for bare calls."""
    source: Optional[Node] = None
    name: str = ""
    args: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class ArrowCall(Node):
    """Collection operation ``source->name(...)``.

    ``iterators`` holds the declared iterator variable names for iterator
    operations (``select``, ``forAll``...); ``body`` their expression.  For
    plain arrow operations (``size``, ``includes``...) ``args`` is used.
    """
    source: Optional[Node] = None
    name: str = ""
    iterators: Tuple[str, ...] = ()
    body: Optional[Node] = None
    args: Tuple[Node, ...] = ()


@dataclass(frozen=True)
class UnOp(Node):
    op: str = ""
    operand: Optional[Node] = None


@dataclass(frozen=True)
class BinOp(Node):
    op: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass(frozen=True)
class If(Node):
    condition: Optional[Node] = None
    then_branch: Optional[Node] = None
    else_branch: Optional[Node] = None


@dataclass(frozen=True)
class Let(Node):
    name: str = ""
    value: Optional[Node] = None
    body: Optional[Node] = None


@dataclass(frozen=True)
class TypeRef(Node):
    """A (possibly qualified) type name used as a value, e.g. in
    ``Car.allInstances()`` or ``oclIsKindOf(Car)``."""
    name: str = ""
