"""Recursive-descent parser for the OCL-like language.

Grammar (precedence low to high)::

    expr        := let | implies
    let         := 'let' IDENT '=' expr 'in' expr
    implies     := orexpr ('implies' orexpr)*
    orexpr      := andexpr (('or'|'xor') andexpr)*
    andexpr     := notexpr ('and' notexpr)*
    notexpr     := 'not' notexpr | comparison
    comparison  := additive (('='|'<>'|'<'|'<='|'>'|'>=') additive)?
    additive    := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'div'|'mod') unary)*
    unary       := '-' unary | postfix
    postfix     := primary ( '.' IDENT [ '(' args ')' ]
                           | '->' IDENT '(' [iterators '|'] args ')'
                           | '::' IDENT )*
    primary     := literal | 'self' | IDENT | 'if' ... | collection literal
                 | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    ArrowCall,
    TupleLiteral,
    BinOp,
    Call,
    CollectionLiteral,
    If,
    Ident,
    Let,
    Literal,
    Nav,
    Node,
    Range,
    SelfExpr,
    UnOp,
)
from .errors import OclSyntaxError
from .lexer import Token, TokenKind, tokenize

# Arrow operations that take iterator variables and a body expression.
ITERATOR_OPS = {
    "select", "reject", "collect", "forAll", "exists", "one", "any",
    "isUnique", "sortedBy", "closure", "collectNested",
}

COLLECTION_KINDS = {"Set", "Sequence", "Bag", "OrderedSet"}


class Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def at_op(self, *ops: str) -> bool:
        return self.current.kind is TokenKind.OP and self.current.value in ops

    def at_keyword(self, *words: str) -> bool:
        return (self.current.kind is TokenKind.KEYWORD
                and self.current.value in words)

    def expect_op(self, op: str) -> Token:
        if not self.at_op(op):
            raise OclSyntaxError(f"expected {op!r}, found "
                                 f"{self.current.value!r}",
                                 self.current.position, self.text)
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise OclSyntaxError(f"expected keyword {word!r}, found "
                                 f"{self.current.value!r}",
                                 self.current.position, self.text)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise OclSyntaxError(f"expected identifier, found "
                                 f"{self.current.value!r}",
                                 self.current.position, self.text)
        return self.advance()

    # -- entry ---------------------------------------------------------------

    def parse(self) -> Node:
        node = self.expression()
        if self.current.kind is not TokenKind.EOF:
            raise OclSyntaxError(f"unexpected trailing input "
                                 f"{self.current.value!r}",
                                 self.current.position, self.text)
        return node

    # -- precedence levels ----------------------------------------------

    def expression(self) -> Node:
        if self.at_keyword("let"):
            return self.let_expression()
        return self.implies_expression()

    def let_expression(self) -> Node:
        start = self.expect_keyword("let").position
        name = self.expect_ident().value
        # optional type annotation: let x : Integer = ...
        if self.at_op(":"):
            self.advance()
            self.expect_ident()
        self.expect_op("=")
        value = self.expression()
        self.expect_keyword("in")
        body = self.expression()
        return Let(position=start, name=name, value=value, body=body)

    def implies_expression(self) -> Node:
        left = self.or_expression()
        while self.at_keyword("implies"):
            position = self.advance().position
            right = self.or_expression()
            left = BinOp(position=position, op="implies",
                         left=left, right=right)
        return left

    def or_expression(self) -> Node:
        left = self.and_expression()
        while self.at_keyword("or", "xor"):
            token = self.advance()
            right = self.and_expression()
            left = BinOp(position=token.position, op=token.value,
                         left=left, right=right)
        return left

    def and_expression(self) -> Node:
        left = self.not_expression()
        while self.at_keyword("and"):
            position = self.advance().position
            right = self.not_expression()
            left = BinOp(position=position, op="and", left=left, right=right)
        return left

    def not_expression(self) -> Node:
        if self.at_keyword("not"):
            position = self.advance().position
            operand = self.not_expression()
            return UnOp(position=position, op="not", operand=operand)
        return self.comparison()

    def comparison(self) -> Node:
        left = self.additive()
        if self.at_op("=", "<>", "<", "<=", ">", ">="):
            token = self.advance()
            right = self.additive()
            return BinOp(position=token.position, op=token.value,
                         left=left, right=right)
        return left

    def additive(self) -> Node:
        left = self.multiplicative()
        while self.at_op("+", "-"):
            token = self.advance()
            right = self.multiplicative()
            left = BinOp(position=token.position, op=token.value,
                         left=left, right=right)
        return left

    def multiplicative(self) -> Node:
        left = self.unary()
        while True:
            if self.at_op("*", "/"):
                token = self.advance()
                op = token.value
            elif (self.current.kind is TokenKind.IDENT
                  and self.current.value in ("div", "mod")):
                token = self.advance()
                op = token.value
            else:
                return left
            right = self.unary()
            left = BinOp(position=token.position, op=op,
                         left=left, right=right)

    def unary(self) -> Node:
        if self.at_op("-"):
            position = self.advance().position
            return UnOp(position=position, op="-", operand=self.unary())
        return self.postfix()

    # -- postfix chains ----------------------------------------------------

    def postfix(self) -> Node:
        node = self.primary()
        while True:
            if self.at_op("."):
                self.advance()
                name_token = self.current
                if name_token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise OclSyntaxError("expected member name",
                                         name_token.position, self.text)
                self.advance()
                if self.at_op("("):
                    args = self.argument_list()
                    node = Call(position=name_token.position, source=node,
                                name=name_token.value, args=tuple(args))
                else:
                    node = Nav(position=name_token.position, source=node,
                               name=name_token.value)
            elif self.at_op("->"):
                self.advance()
                name_token = self.expect_ident()
                node = self.arrow_call(node, name_token)
            elif self.at_op("::"):
                self.advance()
                name_token = self.expect_ident()
                if isinstance(node, Ident):
                    node = Ident(position=node.position,
                                 name=f"{node.name}::{name_token.value}")
                else:
                    raise OclSyntaxError("'::' applies to names only",
                                         name_token.position, self.text)
            else:
                return node

    def arrow_call(self, source: Node, name_token: Token) -> Node:
        name = name_token.value
        self.expect_op("(")
        iterators: Tuple[str, ...] = ()
        body: Optional[Node] = None
        args: List[Node] = []
        if self.at_op(")"):
            self.advance()
            return ArrowCall(position=name_token.position, source=source,
                             name=name)
        if name in ITERATOR_OPS:
            iterators = self.try_iterator_declaration()
            body = self.expression()
            self.expect_op(")")
            if not iterators:
                iterators = ("__it",)
            return ArrowCall(position=name_token.position, source=source,
                             name=name, iterators=iterators, body=body)
        args.append(self.expression())
        while self.at_op(","):
            self.advance()
            args.append(self.expression())
        self.expect_op(")")
        return ArrowCall(position=name_token.position, source=source,
                         name=name, args=tuple(args))

    def try_iterator_declaration(self) -> Tuple[str, ...]:
        """Detect ``x |`` / ``x, y |`` lookahead; consume it if present."""
        saved = self.index
        names: List[str] = []
        while self.current.kind is TokenKind.IDENT:
            names.append(self.advance().value)
            if self.at_op(":"):          # optional type annotation
                self.advance()
                if self.current.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
                    self.advance()
            if self.at_op(","):
                self.advance()
                continue
            break
        if names and self.at_op("|"):
            self.advance()
            return tuple(names)
        self.index = saved
        return ()

    def argument_list(self) -> List[Node]:
        self.expect_op("(")
        args: List[Node] = []
        if not self.at_op(")"):
            args.append(self.expression())
            while self.at_op(","):
                self.advance()
                args.append(self.expression())
        self.expect_op(")")
        return args

    # -- primaries --------------------------------------------------------

    def primary(self) -> Node:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return Literal(position=token.position, value=int(token.value))
        if token.kind is TokenKind.REAL:
            self.advance()
            return Literal(position=token.position, value=float(token.value))
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(position=token.position, value=token.value)
        if token.kind is TokenKind.KEYWORD:
            if token.value == "true":
                self.advance()
                return Literal(position=token.position, value=True)
            if token.value == "false":
                self.advance()
                return Literal(position=token.position, value=False)
            if token.value == "null":
                self.advance()
                return Literal(position=token.position, value=None)
            if token.value == "self":
                self.advance()
                return SelfExpr(position=token.position)
            if token.value == "if":
                return self.if_expression()
            if token.value == "Tuple":
                return self.tuple_literal()
            if token.value in COLLECTION_KINDS:
                return self.collection_literal()
        if token.kind is TokenKind.IDENT:
            self.advance()
            return Ident(position=token.position, name=token.value)
        if self.at_op("("):
            self.advance()
            node = self.expression()
            self.expect_op(")")
            return node
        raise OclSyntaxError(f"unexpected token {token.value!r}",
                             token.position, self.text)

    def if_expression(self) -> Node:
        start = self.expect_keyword("if").position
        condition = self.expression()
        self.expect_keyword("then")
        then_branch = self.expression()
        self.expect_keyword("else")
        else_branch = self.expression()
        self.expect_keyword("endif")
        return If(position=start, condition=condition,
                  then_branch=then_branch, else_branch=else_branch)

    def tuple_literal(self) -> Node:
        start = self.advance().position        # 'Tuple'
        self.expect_op("{")
        fields = []
        while True:
            name = self.expect_ident().value
            self.expect_op("=")
            fields.append((name, self.expression()))
            if self.at_op(","):
                self.advance()
                continue
            break
        self.expect_op("}")
        return TupleLiteral(position=start, fields=tuple(fields))

    def collection_literal(self) -> Node:
        kind_token = self.advance()
        self.expect_op("{")
        items: List[Node] = []
        if not self.at_op("}"):
            items.append(self.collection_item())
            while self.at_op(","):
                self.advance()
                items.append(self.collection_item())
        self.expect_op("}")
        return CollectionLiteral(position=kind_token.position,
                                 kind=kind_token.value, items=tuple(items))

    def collection_item(self) -> Node:
        first = self.expression()
        if self.at_op(".."):
            position = self.advance().position
            last = self.expression()
            return Range(position=position, first=first, last=last)
        return first


def parse(text: str) -> Node:
    """Parse *text* into an AST."""
    return Parser(text).parse()
