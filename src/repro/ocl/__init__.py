"""``repro.ocl`` — an OCL-like constraint and query language over models.

* :func:`parse` — text → AST;
* :func:`evaluate` — evaluate text/AST with variable bindings;
* :class:`Environment` — bindings, type namespace, ``allInstances`` scope;
* :class:`Invariant` / :func:`invariant` / :class:`ConstraintSet` —
  metaclass-attached constraints picked up by the structural validator.
"""

from .ast import Node
from .compile import (
    CompiledExpression,
    cache_stats,
    clear_caches,
    compile_expression,
    parse_cached,
)
from .errors import (
    OclError,
    OclEvaluationError,
    OclSyntaxError,
    OclTypeError,
)
from .evaluator import Environment, OclEvaluator, evaluate
from .invariants import ConstraintSet, Invariant, invariant
from .lexer import Token, TokenKind, tokenize
from .parser import parse
from .typecheck import (
    OclTypeChecker,
    TypeCheckResult,
    TypeEnv,
    TypeIssue,
    typecheck,
)
from .unparse import unparse

__all__ = [
    "CompiledExpression", "ConstraintSet", "Environment", "Invariant",
    "Node", "OclError", "OclEvaluationError", "OclEvaluator",
    "OclSyntaxError", "OclTypeChecker", "OclTypeError", "Token",
    "TokenKind", "TypeCheckResult", "TypeEnv", "TypeIssue", "cache_stats",
    "clear_caches", "compile_expression", "evaluate", "invariant", "parse",
    "parse_cached", "tokenize", "typecheck", "unparse",
]
