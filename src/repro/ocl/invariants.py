"""OCL invariants attached to metaclasses.

An :class:`Invariant` carries a context metaclass and a boolean expression;
registering it places it on ``MetaClass.invariants``, where the structural
validator (:mod:`repro.mof.validate`) picks it up — so ``validate_tree``
checks both structure *and* semantics, which is exactly the "models must be
testable" discipline the paper requires.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, List, Optional, Union

from ..mof.kernel import Element, MetaClass, MetaPackage
from ..mof.repository import Model
from ..mof.validate import Severity, ValidationReport
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ast import Node
from .errors import OclError
from .evaluator import Environment, OclEvaluator, _EVALUATOR
from .parser import parse


class Invariant:
    """A named boolean constraint over instances of a context metaclass."""

    def __init__(self, context: Union[MetaClass, type], name: str,
                 expression: str, *,
                 message: str = "",
                 severity: Severity = Severity.ERROR,
                 packages: Optional[List[MetaPackage]] = None):
        if isinstance(context, type):
            context = context._meta
        self.context: MetaClass = context
        self.name = name
        self.expression = expression
        self.ast: Node = parse(expression)
        self.message = message
        self.severity = severity
        self.packages = packages

    def holds(self, element: Element) -> bool:
        """Evaluate the invariant for *element* (must conform to context).

        When the observability layer is on, each evaluation is wrapped in
        an ``ocl.invariant`` span and timed into the per-invariant
        ``ocl.invariant.seconds`` histogram.
        """
        if not _trace.ON:
            return self._holds_impl(element)
        sp = _trace.span("ocl.invariant", invariant=self.name,
                         context=self.context.name)
        with sp:
            result = self._holds_impl(element)
        _metrics.REGISTRY.counter(
            "ocl.invariant.evals",
            help="invariant evaluations").inc()
        _metrics.REGISTRY.histogram(
            "ocl.invariant.seconds",
            help="per-invariant evaluation time",
            invariant=self.name).observe(sp.duration)
        return result

    def _holds_impl(self, element: Element) -> bool:
        # The type namespace is built from the context metaclass's package
        # (plus the element's own and its root's) rather than by scanning
        # the whole model, so checking n elements stays O(n).
        env = Environment()
        packages = list(self.packages or [])
        for candidate in (self.context.package, element.meta.package,
                          element.root().meta.package):
            if candidate is not None and candidate not in packages:
                packages.append(candidate)
        for package in packages:
            env.register_package(package)
        env.set_instance_scope_from(element.root())
        env.define("self", element)
        result = _EVALUATOR.eval(self.ast, env)
        return _EVALUATOR.truthy(result)

    def register(self) -> "Invariant":
        """Attach to the context metaclass so validators see it."""
        if self not in self.context.invariants:
            self.context.invariants.append(self)
        return self

    def unregister(self) -> None:
        if self in self.context.invariants:
            self.context.invariants.remove(self)

    def __repr__(self) -> str:
        return (f"<Invariant {self.context.name}::{self.name}: "
                f"{self.expression!r}>")


def invariant(context: Union[MetaClass, type], name: str,
              expression: str, *, message: str = "",
              severity: Severity = Severity.ERROR) -> Invariant:
    """Create *and register* an invariant (the common case)."""
    return Invariant(context, name, expression, message=message,
                     severity=severity).register()


class ConstraintSet:
    """A named, detachable group of invariants — one per abstraction level
    or concern, matching the paper's "at each abstraction level a well
    defined set of tests must be performed"."""

    def __init__(self, name: str):
        self.name = name
        self.invariants: List[Invariant] = []

    def add(self, context: Union[MetaClass, type], name: str,
            expression: str, *, message: str = "",
            severity: Severity = Severity.ERROR) -> Invariant:
        inv = Invariant(context, name, expression, message=message,
                        severity=severity)
        self.invariants.append(inv)
        return inv

    def evaluate(self, scope: Union[Model, Element]) -> ValidationReport:
        """Check every invariant against all conforming elements in scope
        (without requiring registration on the metaclasses).

        This is the engine-level building block behind the
        ``"constraint"`` family of :meth:`repro.session.Session.check`.
        """
        report = ValidationReport()
        elements: Iterable[Element]
        if isinstance(scope, Model):
            elements = list(scope.all_elements())
        else:
            elements = [scope] + list(scope.all_contents())
        for inv in self.invariants:
            for element in elements:
                if not element.meta.conforms_to(inv.context):
                    continue
                try:
                    ok = inv.holds(element)
                except OclError as exc:
                    report.add(Severity.ERROR, element,
                               f"invariant '{inv.name}' raised: {exc}",
                               code="invariant-error")
                    continue
                if not ok:
                    report.add(inv.severity, element,
                               f"invariant '{inv.name}' violated"
                               + (f": {inv.message}" if inv.message else ""),
                               code="invariant")
        return report

    def check(self, scope: Union[Model, Element]) -> ValidationReport:
        """Deprecated alias of :meth:`evaluate`.

        .. deprecated::
            Use :meth:`repro.session.Session.check` with
            ``constraint_sets=[...]`` (or :meth:`evaluate` directly).
        """
        warnings.warn(
            "ConstraintSet.check() is deprecated; use repro.session."
            "Session(scope, constraint_sets=[cs]).check("
            "families=('constraint',)) or ConstraintSet.evaluate()",
            DeprecationWarning, stacklevel=2)
        return self.evaluate(scope)

    def watch(self, scope: Union[Model, Element]) -> Any:
        """An incrementally maintained :meth:`evaluate` over *scope*.

        .. deprecated::
            Use :meth:`repro.session.Session.watch` with
            ``constraint_sets=[...]``; this shim delegates to it.
        """
        warnings.warn(
            "ConstraintSet.watch() is deprecated; use repro.session."
            "Session(scope, constraint_sets=[cs]).watch("
            "families=('constraint',))",
            DeprecationWarning, stacklevel=2)
        from ..session import Session
        return Session(scope, constraint_sets=[self]).watch(
            families=("constraint",))

    def register_all(self) -> None:
        for inv in self.invariants:
            inv.register()

    def unregister_all(self) -> None:
        for inv in self.invariants:
            inv.unregister()

    def __len__(self) -> int:
        return len(self.invariants)
