"""OCL invariants attached to metaclasses.

An :class:`Invariant` carries a context metaclass and a boolean expression;
registering it places it on ``MetaClass.invariants``, where the structural
validator (:mod:`repro.mof.validate`) picks it up — so ``validate_tree``
checks both structure *and* semantics, which is exactly the "models must be
testable" discipline the paper requires.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..mof.kernel import Element, MetaClass, MetaPackage
from ..mof.repository import Model
from ..mof.validate import Severity, ValidationReport
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ast import Node
from .compile import CompiledExpression, compile_expression, parse_cached
from .errors import OclError
from .evaluator import Environment, OclEvaluator, _EVALUATOR, truthy


class Invariant:
    """A named boolean constraint over instances of a context metaclass.

    By default the expression is lowered once to a closure
    (:mod:`repro.ocl.compile`) specialised against the context
    metaclass, and the per-package type environments are cached across
    evaluations; ``compiled=False`` keeps the tree-walking interpreter
    with a fresh environment per call (behaviourally identical — the
    differential suite holds the equality).
    """

    def __init__(self, context: Union[MetaClass, type], name: str,
                 expression: str, *,
                 message: str = "",
                 severity: Severity = Severity.ERROR,
                 packages: Optional[List[MetaPackage]] = None,
                 compiled: bool = True):
        if isinstance(context, type):
            context = context._meta
        self.context: MetaClass = context
        self.name = name
        self.expression = expression
        self.ast: Node = parse_cached(expression)
        self.message = message
        self.severity = severity
        self.packages = packages
        self.compiled = compiled
        self._compiled: Optional[CompiledExpression] = (
            compile_expression(expression, context=context)
            if compiled else None)
        self._compiled_fn = (self._compiled._fn
                             if self._compiled is not None else None)
        # (element package id, root package id) -> [reusable env, its root]
        self._env_cache: Dict[Tuple[int, int], list] = {}

    def holds(self, element: Element) -> bool:
        """Evaluate the invariant for *element* (must conform to context).

        When the observability layer is on, each evaluation is wrapped in
        an ``ocl.invariant`` span and timed into the per-invariant
        ``ocl.invariant.seconds`` histogram.
        """
        if not _trace.ON:
            return self._holds_impl(element)
        sp = _trace.span("ocl.invariant", invariant=self.name,
                         context=self.context.name)
        with sp:
            result = self._holds_impl(element)
        _metrics.REGISTRY.counter(
            "ocl.invariant.evals",
            help="invariant evaluations").inc()
        _metrics.REGISTRY.histogram(
            "ocl.invariant.seconds",
            help="per-invariant evaluation time",
            invariant=self.name).observe(sp.duration)
        return result

    def _holds_impl(self, element: Element) -> bool:
        if self._compiled is None:
            return self._holds_interpreted(element)
        # Compiled path: the type namespace depends only on the element's
        # and root's packages, so one environment is built per package pair
        # and reused across calls — the closures only read it (iterator
        # variables live in child environments they create themselves), so
        # rebinding ``self`` and, when the root changes, the instance scope
        # is all a call needs.  element.root() is read eagerly (not under
        # the lambda) so dependency tracking sees the same container-chain
        # reads the interpreted path performs.
        root = element.root()
        key = (id(element.meta.package), id(root.meta.package))
        entry = self._env_cache.get(key)
        if entry is None:
            env = Environment()
            packages = list(self.packages or [])
            for candidate in (self.context.package, element.meta.package,
                              root.meta.package):
                if candidate is not None and candidate not in packages:
                    packages.append(candidate)
            for package in packages:
                env.register_package(package)
            entry = [env, None]
            self._env_cache[key] = entry
        else:
            env = entry[0]
        if entry[1] is not root:
            env.set_instance_scope_from(root)
            entry[1] = root
        env.vars["self"] = element
        result = self._compiled_fn(env)
        if result is True:
            return True
        if result is False or result is None:
            return False
        return truthy(result)

    def _holds_interpreted(self, element: Element) -> bool:
        # The type namespace is built from the context metaclass's package
        # (plus the element's own and its root's) rather than by scanning
        # the whole model, so checking n elements stays O(n).
        env = Environment()
        packages = list(self.packages or [])
        for candidate in (self.context.package, element.meta.package,
                          element.root().meta.package):
            if candidate is not None and candidate not in packages:
                packages.append(candidate)
        for package in packages:
            env.register_package(package)
        env.set_instance_scope_from(element.root())
        env.define("self", element)
        result = _EVALUATOR.eval(self.ast, env)
        return _EVALUATOR.truthy(result)

    def register(self) -> "Invariant":
        """Attach to the context metaclass so validators see it."""
        if self not in self.context.invariants:
            self.context.invariants.append(self)
        return self

    def unregister(self) -> None:
        if self in self.context.invariants:
            self.context.invariants.remove(self)

    def __repr__(self) -> str:
        return (f"<Invariant {self.context.name}::{self.name}: "
                f"{self.expression!r}>")


def invariant(context: Union[MetaClass, type], name: str,
              expression: str, *, message: str = "",
              severity: Severity = Severity.ERROR,
              compiled: bool = True) -> Invariant:
    """Create *and register* an invariant (the common case)."""
    return Invariant(context, name, expression, message=message,
                     severity=severity, compiled=compiled).register()


class ConstraintSet:
    """A named, detachable group of invariants — one per abstraction level
    or concern, matching the paper's "at each abstraction level a well
    defined set of tests must be performed".

    *compiled* is the default evaluation mode for invariants added via
    :meth:`add` (overridable per invariant)."""

    def __init__(self, name: str, *, compiled: bool = True):
        self.name = name
        self.compiled = compiled
        self.invariants: List[Invariant] = []

    def add(self, context: Union[MetaClass, type], name: str,
            expression: str, *, message: str = "",
            severity: Severity = Severity.ERROR,
            compiled: Optional[bool] = None) -> Invariant:
        inv = Invariant(context, name, expression, message=message,
                        severity=severity,
                        compiled=(self.compiled if compiled is None
                                  else compiled))
        self.invariants.append(inv)
        return inv

    def evaluate(self, scope: Union[Model, Element]) -> ValidationReport:
        """Check every invariant against all conforming elements in scope
        (without requiring registration on the metaclasses).

        This is the engine-level building block behind the
        ``"constraint"`` family of :meth:`repro.session.Session.check`.
        """
        from ..mof import kernel as _kernel

        report = ValidationReport()
        # Over a Model the per-metaclass extent index answers "all
        # conforming elements" in O(answer); the containment scan stays
        # for Element scopes and while dependency tracking is active
        # (the incremental engine must observe the per-element reads).
        indexed = isinstance(scope, Model) and _kernel._READ_HOOK is None
        column_store = scope.column_store() if indexed else None
        if column_store is not None:
            from .columns import flag_constraint_suspects
        elements: Iterable[Element]
        if indexed:
            elements = ()
        elif isinstance(scope, Model):
            elements = list(scope.all_elements())
        else:
            elements = [scope] + list(scope.all_contents())
        for inv in self.invariants:
            candidates = (scope.instances_of(inv.context) if indexed
                          else elements)
            # Columnar suspect scan: evaluate the invariant extent-wide
            # as a row plan and re-run holds() only where a diagnostic is
            # certain — candidate order (and thus the report) unchanged.
            # None means some conforming block wasn't plannable; then the
            # full candidate loop below is the evaluation.
            flagged = (flag_constraint_suspects(inv, column_store)
                       if column_store is not None else None)
            for element in candidates:
                if flagged is not None and id(element) not in flagged:
                    continue
                if not indexed and not element.meta.conforms_to(inv.context):
                    continue
                try:
                    ok = inv.holds(element)
                except OclError as exc:
                    report.add(Severity.ERROR, element,
                               f"invariant '{inv.name}' raised: {exc}",
                               code="invariant-error")
                    continue
                if not ok:
                    report.add(inv.severity, element,
                               f"invariant '{inv.name}' violated"
                               + (f": {inv.message}" if inv.message else ""),
                               code="invariant")
        return report

    def check(self, scope: Union[Model, Element]) -> ValidationReport:
        """Deprecated alias of :meth:`evaluate`.

        .. deprecated::
            Use :meth:`repro.session.Session.check` with
            ``constraint_sets=[...]`` (or :meth:`evaluate` directly).
        """
        warnings.warn(
            "ConstraintSet.check() is deprecated; use repro.session."
            "Session(scope, constraint_sets=[cs]).check("
            "families=('constraint',)) or ConstraintSet.evaluate()",
            DeprecationWarning, stacklevel=2)
        return self.evaluate(scope)

    def watch(self, scope: Union[Model, Element]) -> Any:
        """An incrementally maintained :meth:`evaluate` over *scope*.

        .. deprecated::
            Use :meth:`repro.session.Session.watch` with
            ``constraint_sets=[...]``; this shim delegates to it.
        """
        warnings.warn(
            "ConstraintSet.watch() is deprecated; use repro.session."
            "Session(scope, constraint_sets=[cs]).watch("
            "families=('constraint',))",
            DeprecationWarning, stacklevel=2)
        from ..session import Session
        return Session(scope, constraint_sets=[self]).watch(
            families=("constraint",))

    def register_all(self) -> None:
        for inv in self.invariants:
            inv.register()

    def unregister_all(self) -> None:
        for inv in self.invariants:
            inv.unregister()

    def __len__(self) -> int:
        return len(self.invariants)
