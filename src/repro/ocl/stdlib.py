"""Collection operations for the OCL-like evaluator.

Each operation receives the evaluator, the environment, the (already
evaluated) source collection, evaluated plain arguments, and — for iterator
operations — the iterator variable names plus the unevaluated body node.

Collections are represented as Python lists; ``Set`` semantics are applied
by deduplication (identity first, equality fallback) where OCL requires it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from .errors import OclEvaluationError, OclTypeError


def _dedupe(items: Sequence[Any]) -> List[Any]:
    out: List[Any] = []
    for item in items:
        if not any(existing is item or existing == item for existing in out):
            out.append(item)
    return out


def _contains(items: Sequence[Any], value: Any) -> bool:
    return any(item is value or item == value for item in items)


def _as_number_list(items: Sequence[Any], op: str) -> List[float]:
    for item in items:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise OclTypeError(f"->{op}() needs numbers, got {item!r}")
    return list(items)


class CollectionOps:
    """Dispatcher for ``source->op(...)`` calls."""

    def __init__(self) -> None:
        self.plain: Dict[str, Callable] = {}
        self.iterating: Dict[str, Callable] = {}
        self._register_all()

    # -- plumbing ---------------------------------------------------------

    def _register_all(self) -> None:
        plain = self.plain
        plain["size"] = lambda ev, env, src, args: len(src)
        plain["isEmpty"] = lambda ev, env, src, args: len(src) == 0
        plain["notEmpty"] = lambda ev, env, src, args: len(src) > 0
        plain["first"] = lambda ev, env, src, args: src[0] if src else None
        plain["last"] = lambda ev, env, src, args: src[-1] if src else None
        plain["at"] = self._op_at
        plain["includes"] = (
            lambda ev, env, src, args: _contains(src, args[0]))
        plain["excludes"] = (
            lambda ev, env, src, args: not _contains(src, args[0]))
        plain["includesAll"] = (
            lambda ev, env, src, args:
            all(_contains(src, v) for v in args[0]))
        plain["excludesAll"] = (
            lambda ev, env, src, args:
            not any(_contains(src, v) for v in args[0]))
        plain["including"] = (
            lambda ev, env, src, args: list(src) + [args[0]])
        plain["excluding"] = (
            lambda ev, env, src, args:
            [v for v in src if v is not args[0] and v != args[0]])
        plain["count"] = (
            lambda ev, env, src, args:
            sum(1 for v in src if v is args[0] or v == args[0]))
        plain["sum"] = (
            lambda ev, env, src, args: sum(_as_number_list(src, "sum")))
        plain["max"] = (
            lambda ev, env, src, args:
            max(_as_number_list(src, "max")) if src else None)
        plain["min"] = (
            lambda ev, env, src, args:
            min(_as_number_list(src, "min")) if src else None)
        plain["avg"] = self._op_avg
        plain["asSet"] = lambda ev, env, src, args: _dedupe(src)
        plain["asSequence"] = lambda ev, env, src, args: list(src)
        plain["asBag"] = lambda ev, env, src, args: list(src)
        plain["asOrderedSet"] = lambda ev, env, src, args: _dedupe(src)
        plain["union"] = (
            lambda ev, env, src, args: _dedupe(list(src) + list(args[0])))
        plain["intersection"] = (
            lambda ev, env, src, args:
            [v for v in _dedupe(src) if _contains(args[0], v)])
        plain["symmetricDifference"] = self._op_symmetric_difference
        plain["append"] = lambda ev, env, src, args: list(src) + [args[0]]
        plain["prepend"] = lambda ev, env, src, args: [args[0]] + list(src)
        plain["flatten"] = self._op_flatten
        plain["reverse"] = lambda ev, env, src, args: list(reversed(src))
        plain["indexOf"] = self._op_index_of
        plain["subSequence"] = (
            lambda ev, env, src, args: list(src)[args[0] - 1:args[1]])

        iterating = self.iterating
        iterating["select"] = self._it_select
        iterating["reject"] = self._it_reject
        iterating["collect"] = self._it_collect
        iterating["collectNested"] = self._it_collect_nested
        iterating["forAll"] = self._it_for_all
        iterating["exists"] = self._it_exists
        iterating["one"] = self._it_one
        iterating["any"] = self._it_any
        iterating["isUnique"] = self._it_is_unique
        iterating["sortedBy"] = self._it_sorted_by
        iterating["closure"] = self._it_closure

    # -- plain op bodies that need statements ------------------------------

    @staticmethod
    def _op_at(ev, env, src, args):
        index = args[0]
        if not isinstance(index, int) or isinstance(index, bool):
            raise OclTypeError(f"->at() index must be an Integer, "
                               f"got {index!r}")
        if not 1 <= index <= len(src):
            raise OclEvaluationError(
                f"->at({index}) out of range for collection of "
                f"size {len(src)} (OCL indices are 1-based)")
        return src[index - 1]

    @staticmethod
    def _op_avg(ev, env, src, args):
        numbers = _as_number_list(src, "avg")
        return sum(numbers) / len(numbers) if numbers else None

    @staticmethod
    def _op_symmetric_difference(ev, env, src, args):
        other = args[0]
        left = [v for v in _dedupe(src) if not _contains(other, v)]
        right = [v for v in _dedupe(other) if not _contains(src, v)]
        return left + right

    @staticmethod
    def _op_flatten(ev, env, src, args):
        out: List[Any] = []
        for item in src:
            if isinstance(item, list):
                out.extend(item)
            else:
                out.append(item)
        return out

    @staticmethod
    def _op_index_of(ev, env, src, args):
        for i, item in enumerate(src):
            if item is args[0] or item == args[0]:
                return i + 1
        raise OclEvaluationError(f"->indexOf: {args[0]!r} not found")

    # -- iterator op bodies --------------------------------------------------

    @staticmethod
    def _bind(env, iterators: Sequence[str], values: Sequence[Any]):
        child = env.child()
        for name, value in zip(iterators, values):
            child.define(name, value)
        return child

    def _each(self, ev, env, src, iterators, body):
        """Yield (element, evaluated-body) pairs for single-iterator ops."""
        for item in src:
            child = self._bind(env, iterators[:1], [item])
            yield item, ev.eval(body, child)

    def _it_select(self, ev, env, src, iterators, body):
        return [item for item, value in self._each(ev, env, src, iterators,
                                                   body) if ev.truthy(value)]

    def _it_reject(self, ev, env, src, iterators, body):
        return [item for item, value in self._each(ev, env, src, iterators,
                                                   body)
                if not ev.truthy(value)]

    def _it_collect(self, ev, env, src, iterators, body):
        out: List[Any] = []
        for _item, value in self._each(ev, env, src, iterators, body):
            if isinstance(value, list):
                out.extend(value)           # collect flattens one level
            elif value is not None:
                out.append(value)
        return out

    def _it_collect_nested(self, ev, env, src, iterators, body):
        return [value for _item, value
                in self._each(ev, env, src, iterators, body)]

    def _it_for_all(self, ev, env, src, iterators, body):
        if len(iterators) > 1:
            # forAll(x, y | ...) iterates the cartesian product
            for x in src:
                for y in src:
                    child = self._bind(env, iterators[:2], [x, y])
                    if not ev.truthy(ev.eval(body, child)):
                        return False
            return True
        return all(ev.truthy(value) for _item, value
                   in self._each(ev, env, src, iterators, body))

    def _it_exists(self, ev, env, src, iterators, body):
        if len(iterators) > 1:
            for x in src:
                for y in src:
                    child = self._bind(env, iterators[:2], [x, y])
                    if ev.truthy(ev.eval(body, child)):
                        return True
            return False
        return any(ev.truthy(value) for _item, value
                   in self._each(ev, env, src, iterators, body))

    def _it_one(self, ev, env, src, iterators, body):
        count = sum(1 for _item, value
                    in self._each(ev, env, src, iterators, body)
                    if ev.truthy(value))
        return count == 1

    def _it_any(self, ev, env, src, iterators, body):
        for item, value in self._each(ev, env, src, iterators, body):
            if ev.truthy(value):
                return item
        return None

    def _it_is_unique(self, ev, env, src, iterators, body):
        seen: List[Any] = []
        for _item, value in self._each(ev, env, src, iterators, body):
            if _contains(seen, value):
                return False
            seen.append(value)
        return True

    def _it_sorted_by(self, ev, env, src, iterators, body):
        keyed = [(value, item) for item, value
                 in self._each(ev, env, src, iterators, body)]
        try:
            keyed.sort(key=lambda pair: pair[0])
        except TypeError as exc:
            raise OclTypeError(f"->sortedBy keys not comparable: {exc}")
        return [item for _value, item in keyed]

    def _it_closure(self, ev, env, src, iterators, body):
        out: List[Any] = []
        frontier = list(src)
        while frontier:
            current = frontier.pop(0)
            child = self._bind(env, iterators[:1], [current])
            step = ev.eval(body, child)
            neighbours = step if isinstance(step, list) else (
                [] if step is None else [step])
            for neighbour in neighbours:
                if not _contains(out, neighbour):
                    out.append(neighbour)
                    frontier.append(neighbour)
        return out

    # -- dispatch ----------------------------------------------------------

    def run(self, ev, env, name: str, source: Any,
            args: Sequence[Any], iterators: Sequence[str],
            body) -> Any:
        if source is None:
            source = []
        if not isinstance(source, list):
            source = [source]     # OCL: arrow ops on a scalar wrap it
        if body is not None:
            op = self.iterating.get(name)
            if op is None:
                raise OclEvaluationError(f"unknown iterator operation "
                                         f"->{name}()")
            return op(ev, env, source, iterators, body)
        op = self.plain.get(name)
        if op is None:
            raise OclEvaluationError(f"unknown collection operation "
                                     f"->{name}()")
        return op(ev, env, source, list(args))


COLLECTION_OPS = CollectionOps()
