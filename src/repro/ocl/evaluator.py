"""Evaluator for the OCL-like language over MOF/UML models.

The evaluator walks ASTs from :mod:`repro.ocl.parser` against an
:class:`Environment` that supplies variable bindings, a type namespace
(name → :class:`~repro.mof.kernel.MetaClass`) and an instance scope for
``allInstances()``.

Value universe: ``int``/``float``/``str``/``bool``/``None``, Python lists
(OCL collections) and model elements.  Navigation over a collection is the
implicit-collect of OCL; navigation into an absent feature of an element
falls back to the element's Python attributes, so helper methods defined on
metaclasses (``all_supers`` etc.) are available to expressions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from ..mof.kernel import Element, FeatureList, MetaClass, MetaPackage
from ..mof.repository import Model, Repository
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .ast import (
    ArrowCall,
    TupleLiteral,
    BinOp,
    Call,
    CollectionLiteral,
    If,
    Ident,
    Let,
    Literal,
    Nav,
    Node,
    Range,
    SelfExpr,
    UnOp,
)
from .errors import OclEvaluationError, OclTypeError
from .parser import parse
from .stdlib import COLLECTION_OPS


class Environment:
    """Variable bindings + type namespace + instance scope."""

    def __init__(self, parent: Optional["Environment"] = None):
        self.parent = parent
        self.depth = parent.depth + 1 if parent is not None else 0
        self.vars: Dict[str, Any] = {}
        self._types: Dict[str, MetaClass] = {}
        self._instance_scope: Optional[Callable[[MetaClass], List[Element]]] \
            = None
        self._column_scope: Optional[Callable[[MetaClass, str], Any]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def for_model(cls, scope: Union[Model, Repository, Element],
                  packages: Optional[List[MetaPackage]] = None,
                  self_object: Any = None) -> "Environment":
        """Build an environment whose types come from *packages* (defaults
        to the metamodel packages of the elements in scope) and whose
        ``allInstances`` searches *scope*."""
        env = cls()
        if packages:
            for package in packages:
                env.register_package(package)
        else:
            env._auto_register_types(scope)
        env.set_instance_scope_from(scope)
        if self_object is not None:
            env.define("self", self_object)
        return env

    def _auto_register_types(self,
                             scope: Union[Model, Repository, Element]) -> None:
        elements = _scope_elements(scope)
        seen = set()
        for element in elements:
            package = element.meta.package
            if package is not None and id(package) not in seen:
                seen.add(id(package))
                self.register_package(package)

    def register_package(self, package: MetaPackage) -> None:
        for pkg in package.all_packages():
            for name, classifier in pkg.classifiers.items():
                if isinstance(classifier, MetaClass):
                    self._types.setdefault(name, classifier)
                    self._types.setdefault(f"{pkg.name}::{name}", classifier)

    def register_type(self, name: str, metaclass: MetaClass) -> None:
        self._types[name] = metaclass

    def set_instance_scope_from(
            self, scope: Union[Model, Repository, Element]) -> None:
        if isinstance(scope, Repository):
            # Repository/Model queries go through the incrementally
            # maintained extent index (repro.mof.index) when no read
            # hook is active — O(answer) instead of O(model).
            self._instance_scope = scope.all_instances
            self._column_scope = None
        elif isinstance(scope, Model):
            self._instance_scope = scope.instances_of
            self._column_scope = scope.column_values
        else:
            def lookup(metaclass: MetaClass) -> List[Element]:
                return [e for e in _scope_elements(scope)
                        if e.meta.conforms_to(metaclass)]
            self._instance_scope = lookup
            self._column_scope = _element_column_scope(scope)

    # -- scoping ----------------------------------------------------------

    def child(self) -> "Environment":
        child = Environment(parent=self)
        if _trace.ON:
            _metrics.REGISTRY.histogram(
                "ocl.env.depth",
                help="environment nesting depth at scope creation",
                buckets=(1, 2, 4, 8, 16, 32, 64)).observe(child.depth)
        return child

    def define(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise KeyError(name)

    def lookup_type(self, name: str) -> Optional[MetaClass]:
        env: Optional[Environment] = self
        while env is not None:
            if name in env._types:
                return env._types[name]
            env = env.parent
        return None

    def instances(self, metaclass: MetaClass) -> List[Element]:
        env: Optional[Environment] = self
        while env is not None:
            if env._instance_scope is not None:
                return env._instance_scope(metaclass)
            env = env.parent
        raise OclEvaluationError(
            "allInstances() used without an instance scope")

    def columns(self, metaclass: MetaClass, name: str) -> Any:
        """Bulk column read for ``Type.allInstances()`` fast paths: the
        effective values of single attribute *name* over the instance
        scope, in :meth:`instances` order — or ``None`` whenever the
        per-element path must be used (no columnar store, dependency
        read hook active, feature shape not columnar, or the scope is
        not column-backed).  Resolved at the same environment that owns
        the instance scope, so fast paths can never read a different
        extent than the generic path would iterate."""
        env: Optional[Environment] = self
        while env is not None:
            if env._instance_scope is not None:
                reader = env._column_scope
                if reader is None:
                    return None
                return reader(metaclass, name)
            env = env.parent
        return None


def _element_column_scope(scope: Element):
    """A column reader for an *Element* instance scope, valid only while
    the element is the sole root of a column-enabled model (then the
    subtree scope and the model extent hold exactly the same elements).
    The guard re-checks per call: environments are cached across
    evaluations and roots can come and go under them."""
    model = getattr(scope, "_model", None)
    if model is None or not hasattr(model, "column_values"):
        return None

    def reader(metaclass: MetaClass, name: str) -> Any:
        roots = model.roots
        if len(roots) != 1 or roots[0] is not scope:
            return None
        return model.column_values(metaclass, name)
    return reader


def _scope_elements(scope: Union[Model, Repository, Element]) -> List[Element]:
    if isinstance(scope, Repository):
        return list(scope.all_elements())
    if isinstance(scope, Model):
        return list(scope.all_elements())
    if isinstance(scope, Element):
        return [scope] + list(scope.all_contents())
    raise OclTypeError(f"invalid instance scope {scope!r}")


_SCALAR_TYPES = (str, int, float, bool, type(None))


def _normalize(value: Any) -> Any:
    if value.__class__ in _SCALAR_TYPES:
        return value
    if isinstance(value, FeatureList):
        return list(value)
    if isinstance(value, tuple):
        return list(value)
    return value


def truthy(value: Any) -> bool:
    """Boolean interpretation: only True is true; None (OCL undefined)
    is false, and non-boolean values are a type error."""
    if value is True:
        return True
    if value is False or value is None:
        return False
    raise OclTypeError(f"expected Boolean, got {value!r}")


class OclEvaluator:
    """Evaluates parsed OCL-like expressions."""

    def truthy(self, value: Any) -> bool:
        """See the module-level :func:`truthy` (shared with the compiler)."""
        return truthy(value)

    # -- dispatch ----------------------------------------------------------

    def eval(self, node: Node, env: Environment) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise OclEvaluationError(f"cannot evaluate node {node!r}")
        return _normalize(method(node, env))

    # -- leaves ----------------------------------------------------------

    def _eval_Literal(self, node: Literal, env: Environment) -> Any:
        return node.value

    def _eval_SelfExpr(self, node: SelfExpr, env: Environment) -> Any:
        try:
            return env.lookup("self")
        except KeyError:
            raise OclEvaluationError("'self' is not bound")

    def _eval_Ident(self, node: Ident, env: Environment) -> Any:
        try:
            return env.lookup(node.name)
        except KeyError:
            pass
        metaclass = env.lookup_type(node.name)
        if metaclass is not None:
            return metaclass
        # implicit self-feature shorthand (OCL allows 'attr' for 'self.attr')
        try:
            self_object = env.lookup("self")
        except KeyError:
            self_object = None
        if isinstance(self_object, Element):
            feature = self_object.meta.find_feature(node.name)
            if feature is not None:
                return _normalize(self_object.eget(node.name))
        if isinstance(self_object, dict) and node.name in self_object:
            return _normalize(self_object[node.name])
        raise OclEvaluationError(f"unknown name {node.name!r}")

    def _eval_CollectionLiteral(self, node: CollectionLiteral,
                                env: Environment) -> Any:
        items: List[Any] = []
        for item in node.items:
            if isinstance(item, Range):
                first = self.eval(item.first, env)
                last = self.eval(item.last, env)
                if not isinstance(first, int) or not isinstance(last, int):
                    raise OclTypeError("range bounds must be Integers")
                items.extend(range(first, last + 1))
            else:
                items.append(self.eval(item, env))
        if node.kind in ("Set", "OrderedSet"):
            deduped: List[Any] = []
            for value in items:
                if not any(v is value or v == value for v in deduped):
                    deduped.append(value)
            return deduped
        return items

    def _eval_TupleLiteral(self, node: TupleLiteral,
                           env: Environment) -> Any:
        return {name: self.eval(expr, env) for name, expr in node.fields}

    # -- navigation and calls -------------------------------------------

    def _eval_Nav(self, node: Nav, env: Environment) -> Any:
        source = self.eval(node.source, env)
        return self._navigate(source, node.name)

    def _navigate(self, source: Any, name: str) -> Any:
        if source is None:
            return None
        if isinstance(source, list):
            out: List[Any] = []
            for item in source:
                value = self._navigate(item, name)
                if isinstance(value, list):
                    out.extend(value)
                elif value is not None:
                    out.append(value)
            return out
        if isinstance(source, Element):
            feature = source.meta.find_feature(name)
            if feature is not None:
                return _normalize(source.eget(name))
            fallback = getattr(source, name, None)
            if fallback is not None and not callable(fallback):
                return _normalize(fallback)
            if callable(fallback):
                return _normalize(fallback())
            raise OclEvaluationError(
                f"'{source.meta.name}' has no feature {name!r}")
        if isinstance(source, dict):
            if name in source:
                return _normalize(source[name])
            raise OclEvaluationError(f"no key {name!r} in {source!r}")
        fallback = getattr(source, name, None)
        if fallback is not None:
            return _normalize(fallback() if callable(fallback) else fallback)
        raise OclEvaluationError(
            f"cannot navigate {name!r} from {source!r}")

    def _eval_Call(self, node: Call, env: Environment) -> Any:
        # allInstances on a type
        if node.name == "allInstances":
            metaclass = self.eval(node.source, env)
            if not isinstance(metaclass, MetaClass):
                raise OclTypeError("allInstances() applies to types")
            return env.instances(metaclass)
        if node.name in ("oclIsKindOf", "oclIsTypeOf", "oclAsType"):
            return self._ocl_type_op(node, env)
        if node.name == "oclIsUndefined":
            return self.eval(node.source, env) is None
        source = self.eval(node.source, env) if node.source else None
        args = [self.eval(arg, env) for arg in node.args]
        return self._call(source, node.name, args)

    def _ocl_type_op(self, node: Call, env: Environment) -> Any:
        if len(node.args) != 1:
            raise OclEvaluationError(f"{node.name} expects one type argument")
        value = self.eval(node.source, env)
        type_arg = self.eval(node.args[0], env)
        if not isinstance(type_arg, MetaClass):
            raise OclTypeError(f"{node.name} argument must be a type")
        if node.name == "oclIsKindOf":
            return (isinstance(value, Element)
                    and value.meta.conforms_to(type_arg))
        if node.name == "oclIsTypeOf":
            return isinstance(value, Element) and value.meta is type_arg
        # oclAsType: checked identity cast
        if isinstance(value, Element) and value.meta.conforms_to(type_arg):
            return value
        return None

    def _call(self, source: Any, name: str, args: List[Any]) -> Any:
        if isinstance(source, str):
            return self._string_op(source, name, args)
        if isinstance(source, bool):
            raise OclEvaluationError(f"no operation {name!r} on Boolean")
        if isinstance(source, (int, float)):
            return self._number_op(source, name, args)
        if isinstance(source, Element):
            fallback = getattr(source, name, None)
            if callable(fallback):
                return _normalize(fallback(*args))
            raise OclEvaluationError(
                f"'{source.meta.name}' has no operation {name!r}")
        if source is None:
            return None
        raise OclEvaluationError(f"cannot call {name!r} on {source!r}")

    @staticmethod
    def _string_op(source: str, name: str, args: List[Any]) -> Any:
        ops: Dict[str, Callable[[], Any]] = {
            "size": lambda: len(source),
            "concat": lambda: source + str(args[0]),
            "toUpperCase": lambda: source.upper(),
            "toLowerCase": lambda: source.lower(),
            "substring": lambda: source[args[0] - 1:args[1]],
            "indexOf": lambda: source.find(str(args[0])) + 1,
            "startsWith": lambda: source.startswith(str(args[0])),
            "endsWith": lambda: source.endswith(str(args[0])),
            "contains": lambda: str(args[0]) in source,
            "trim": lambda: source.strip(),
            "toInteger": lambda: int(source),
            "toReal": lambda: float(source),
        }
        if name not in ops:
            raise OclEvaluationError(f"no String operation {name!r}")
        return ops[name]()

    @staticmethod
    def _number_op(source: Union[int, float], name: str,
                   args: List[Any]) -> Any:
        ops: Dict[str, Callable[[], Any]] = {
            "abs": lambda: abs(source),
            "floor": lambda: int(source // 1),
            "round": lambda: int(round(source)),
            "max": lambda: max(source, args[0]),
            "min": lambda: min(source, args[0]),
            "toString": lambda: str(source),
        }
        if name not in ops:
            raise OclEvaluationError(f"no numeric operation {name!r}")
        return ops[name]()

    def _eval_ArrowCall(self, node: ArrowCall, env: Environment) -> Any:
        source = self.eval(node.source, env)
        args = [self.eval(arg, env) for arg in node.args]
        return COLLECTION_OPS.run(self, env, node.name, source, args,
                                  list(node.iterators), node.body)

    # -- operators --------------------------------------------------------

    def _eval_UnOp(self, node: UnOp, env: Environment) -> Any:
        value = self.eval(node.operand, env)
        if node.op == "not":
            return not self.truthy(value)
        if node.op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise OclTypeError(f"unary '-' needs a number, got {value!r}")
            return -value
        raise OclEvaluationError(f"unknown unary operator {node.op!r}")

    def _eval_BinOp(self, node: BinOp, env: Environment) -> Any:
        op = node.op
        if op in ("and", "or", "implies", "xor"):
            return self._boolean_op(node, env)
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if op == "=":
            return self._equal(left, right)
        if op == "<>":
            return not self._equal(left, right)
        if op == "+" and (isinstance(left, str) or isinstance(right, str)):
            return str(left) + str(right)
        if op in ("<", "<=", ">", ">="):
            return self._compare(op, left, right)
        return self._arithmetic(op, left, right)

    def _boolean_op(self, node: BinOp, env: Environment) -> bool:
        left = self.truthy(self.eval(node.left, env))
        if node.op == "and":
            return left and self.truthy(self.eval(node.right, env))
        if node.op == "or":
            return left or self.truthy(self.eval(node.right, env))
        if node.op == "implies":
            return (not left) or self.truthy(self.eval(node.right, env))
        right = self.truthy(self.eval(node.right, env))
        return left != right    # xor

    @staticmethod
    def _equal(left: Any, right: Any) -> bool:
        if isinstance(left, Element) or isinstance(right, Element):
            return left is right
        if isinstance(left, bool) != isinstance(right, bool):
            return False
        return left == right

    @staticmethod
    def _compare(op: str, left: Any, right: Any) -> bool:
        comparable = (
            (isinstance(left, (int, float)) and not isinstance(left, bool)
             and isinstance(right, (int, float))
             and not isinstance(right, bool))
            or (isinstance(left, str) and isinstance(right, str)))
        if not comparable:
            raise OclTypeError(
                f"cannot compare {left!r} {op} {right!r}")
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right

    @staticmethod
    def _arithmetic(op: str, left: Any, right: Any) -> Any:
        for value in (left, right):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise OclTypeError(
                    f"arithmetic '{op}' needs numbers, got {value!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise OclEvaluationError("division by zero")
            return left / right
        if op == "div":
            if right == 0:
                raise OclEvaluationError("division by zero")
            return int(left // right)
        if op == "mod":
            if right == 0:
                raise OclEvaluationError("division by zero")
            return int(left % right)
        raise OclEvaluationError(f"unknown operator {op!r}")

    # -- control ----------------------------------------------------------

    def _eval_If(self, node: If, env: Environment) -> Any:
        if self.truthy(self.eval(node.condition, env)):
            return self.eval(node.then_branch, env)
        return self.eval(node.else_branch, env)

    def _eval_Let(self, node: Let, env: Environment) -> Any:
        child = env.child()
        child.define(node.name, self.eval(node.value, env))
        return self.eval(node.body, child)


_EVALUATOR = OclEvaluator()


def evaluate(text_or_node: Union[str, Node],
             env: Optional[Environment] = None, *,
             compiled: bool = True, **bindings: Any) -> Any:
    """Parse (if needed) and evaluate an expression.

    Keyword bindings become variables; ``self=obj`` binds the context
    object.  If no environment is given and ``self`` is a model element, a
    default environment scoped to the element's containment tree is built.

    By default the expression is run through the closure compiler
    (:mod:`repro.ocl.compile`) with its process-wide parse+compile cache;
    ``compiled=False`` keeps the tree-walking interpreter — behaviourally
    identical, retained for differential testing.  (One caveat of the
    keyword: a *binding* literally named ``compiled`` can no longer be
    passed through ``**bindings``; build an :class:`Environment` for that.)
    """
    if env is None:
        self_object = bindings.get("self")
        if isinstance(self_object, Element):
            env = Environment.for_model(self_object.root(),
                                        self_object=self_object)
        else:
            env = Environment()
    for name, value in bindings.items():
        env.define(name, value)
    if compiled:
        from .compile import compile_expression
        return compile_expression(text_or_node)(env)
    node = parse(text_or_node) if isinstance(text_or_node, str) \
        else text_or_node
    return _EVALUATOR.eval(node, env)
