"""Errors raised by the OCL subsystem."""

from __future__ import annotations


class OclError(Exception):
    """Base class for OCL errors."""


class OclSyntaxError(OclError):
    """Lexing or parsing failed."""

    def __init__(self, message: str, position: int, text: str = ""):
        self.position = position
        self.text = text
        pointer = ""
        if text:
            pointer = f"\n  {text}\n  {' ' * position}^"
        super().__init__(f"{message} at position {position}{pointer}")


class OclEvaluationError(OclError):
    """Evaluation failed (unknown name, type error at runtime, ...)."""


class OclTypeError(OclEvaluationError):
    """An operand had the wrong runtime kind."""
