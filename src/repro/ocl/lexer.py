"""Tokenizer for the OCL-like expression language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .errors import OclSyntaxError


class TokenKind(enum.Enum):
    INT = "int"
    REAL = "real"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


KEYWORDS = {
    "and", "or", "xor", "not", "implies",
    "if", "then", "else", "endif",
    "let", "in",
    "true", "false", "null", "self",
    "Set", "Sequence", "Bag", "OrderedSet", "Tuple",
}

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "->", "<=", ">=", "<>", "::", "..",
    "+", "-", "*", "/", "=", "<", ">",
    "(", ")", "{", "}", "[", "]", ",", ".", "|", ":",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.value!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Turn *text* into a token list ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):          # line comment
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            # a real needs 'digit . digit'; '..' is the range operator
            if (i + 1 < n and text[i] == "." and text[i + 1].isdigit()):
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
                tokens.append(Token(TokenKind.REAL, text[start:i], start))
            else:
                tokens.append(Token(TokenKind.INT, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: List[str] = []
            while i < n and text[i] != "'":
                if text[i] == "\\" and i + 1 < n:
                    escape = text[i + 1]
                    chunks.append({"n": "\n", "t": "\t", "'": "'",
                                   "\\": "\\"}.get(escape, escape))
                    i += 2
                else:
                    chunks.append(text[i])
                    i += 1
            if i >= n:
                raise OclSyntaxError("unterminated string literal", start, text)
            i += 1  # closing quote
            tokens.append(Token(TokenKind.STRING, "".join(chunks), start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, start))
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, i))
                i += len(op)
                break
        else:
            raise OclSyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
