"""Static type checking of OCL expressions — no evaluation involved.

The checker abstractly interprets the AST against a type environment:
every sub-expression gets a static :class:`OclType`, and deviations are
collected as :class:`TypeIssue` records with stable codes.  It catches,
*before* any model instance exists, the defects the evaluator would only
surface at runtime: unknown properties and operations, non-boolean
invariant/guard bodies, collection-operation arity and type mismatches,
and navigation that treats a collection as a scalar (or vice versa).

Diagnostic codes (stable, documented in DESIGN.md):

========  ==========================================================
OCL001    unknown property / identifier
OCL002    unknown operation on the inferred type
OCL003    expression must be Boolean (invariant / guard body)
OCL004    unknown collection operation
OCL005    wrong number of arguments
OCL006    operand / argument type mismatch
OCL007    unknown type name
OCL008    syntax error in the expression
OCL009    navigation into a non-object value
OCL010    iterator body has the wrong type
========  ==========================================================

Typing is *gradual*: wherever nothing is known (helper methods resolved
through the Python fallback, dynamically bound variables) the checker
assigns ``OclAny``, which conforms to everything — so it never reports a
false positive on an expression it cannot fully analyse.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..mof.kernel import Attribute, MetaClass, MetaPackage, Reference
from .ast import (
    ArrowCall,
    BinOp,
    Call,
    CollectionLiteral,
    Ident,
    If,
    Let,
    Literal,
    Nav,
    Node,
    Range,
    SelfExpr,
    TupleLiteral,
    TypeRef,
    UnOp,
)
from .compile import parse_cached
from .errors import OclSyntaxError
from .parser import parse

# ---------------------------------------------------------------------------
# The type lattice
# ---------------------------------------------------------------------------


class OclType:
    """Base of the static type lattice."""

    name = "OclAny"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{self.name}>"


class _AnyType(OclType):
    name = "OclAny"


class _VoidType(OclType):
    name = "OclVoid"


@dataclass(frozen=True, repr=False)
class PrimitiveOclType(OclType):
    primitive: str          # 'Integer' | 'Real' | 'String' | 'Boolean'

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.primitive


ANY = _AnyType()
VOID = _VoidType()
INTEGER = PrimitiveOclType("Integer")
REAL = PrimitiveOclType("Real")
STRING = PrimitiveOclType("String")
BOOLEAN = PrimitiveOclType("Boolean")

NUMERICS = (INTEGER, REAL)


class ObjectTypeView:
    """Adapter protocol: how the checker sees a classifier.

    Implementations exist for MOF metaclasses (here) and UML classifiers
    (:mod:`repro.analysis.rules_ocl`); anything implementing this duck
    type plugs in.
    """

    def type_name(self) -> str:
        raise NotImplementedError

    def feature_type(self, name: str) -> Optional[OclType]:
        """Static type of property *name*, or None when unknown."""
        raise NotImplementedError

    def feature_names(self) -> List[str]:
        return []

    def operation_signature(self, name: str) -> Optional[
            Tuple[List[OclType], OclType]]:
        """(parameter types, return type) of operation *name*."""
        return None

    def has_fallback(self, name: str) -> bool:
        """True when the evaluator would resolve *name* dynamically
        (Python attribute / helper method) — typed as OclAny."""
        return False

    def conforms_to(self, other: "ObjectTypeView") -> bool:
        return self is other


@dataclass(frozen=True, repr=False)
class ObjectType(OclType):
    view: ObjectTypeView

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.view.type_name()


@dataclass(frozen=True, repr=False)
class CollectionType(OclType):
    kind: str               # 'Set'|'Sequence'|'Bag'|'OrderedSet'|'Collection'
    element: OclType

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.kind}({self.element.name})"


@dataclass(frozen=True, repr=False)
class TupleType(OclType):
    fields: Tuple[Tuple[str, OclType], ...]

    @property
    def name(self) -> str:  # type: ignore[override]
        inner = ", ".join(f"{n}: {t.name}" for n, t in self.fields)
        return f"Tuple({inner})"

    def field_type(self, name: str) -> Optional[OclType]:
        for field_name, field_type in self.fields:
            if field_name == name:
                return field_type
        return None


@dataclass(frozen=True, repr=False)
class TypeType(OclType):
    """The type of a type name used as a value (``Clazz.allInstances()``)."""

    referent: OclType

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"Type({self.referent.name})"


def conforms(actual: OclType, expected: OclType) -> bool:
    """Gradual conformance: OclAny and OclVoid conform both ways."""
    if isinstance(actual, (_AnyType, _VoidType)):
        return True
    if isinstance(expected, _AnyType):
        return True
    if isinstance(actual, PrimitiveOclType) \
            and isinstance(expected, PrimitiveOclType):
        if actual == expected:
            return True
        return actual == INTEGER and expected == REAL
    if isinstance(actual, ObjectType) and isinstance(expected, ObjectType):
        return actual.view.conforms_to(expected.view)
    if isinstance(actual, CollectionType) \
            and isinstance(expected, CollectionType):
        kinds_ok = (actual.kind == expected.kind
                    or "Collection" in (actual.kind, expected.kind))
        return kinds_ok and conforms(actual.element, expected.element)
    if isinstance(actual, TupleType) and isinstance(expected, TupleType):
        return actual == expected
    return False


def common_type(a: OclType, b: OclType) -> OclType:
    if conforms(a, b):
        return b if not isinstance(b, (_AnyType, _VoidType)) else a
    if conforms(b, a):
        return a
    if a in NUMERICS and b in NUMERICS:
        return REAL
    return ANY


def is_numeric(t: OclType) -> bool:
    return t in NUMERICS or isinstance(t, (_AnyType, _VoidType))


def is_boolean(t: OclType) -> bool:
    return t == BOOLEAN or isinstance(t, (_AnyType, _VoidType))


# ---------------------------------------------------------------------------
# Metaclass adapter (M2 features from the MOF kernel)
# ---------------------------------------------------------------------------

_PRIMITIVE_MAP = {"String": STRING, "Integer": INTEGER,
                  "Real": REAL, "Boolean": BOOLEAN}


class MetaClassView(ObjectTypeView):
    """Types navigation through a :class:`~repro.mof.kernel.MetaClass`."""

    def __init__(self, metaclass: MetaClass):
        self.metaclass = metaclass

    def type_name(self) -> str:
        return self.metaclass.name

    def feature_type(self, name: str) -> Optional[OclType]:
        feature = self.metaclass.find_feature(name)
        if feature is None:
            return None
        base: OclType
        if isinstance(feature, Attribute):
            base = _PRIMITIVE_MAP.get(
                getattr(feature.type, "name", ""), STRING)
        elif isinstance(feature, Reference):
            base = ObjectType(MetaClassView(feature.target))
        else:
            return ANY
        if feature.many:
            return CollectionType("Collection", base)
        return base

    def feature_names(self) -> List[str]:
        return sorted(self.metaclass.all_features())

    def has_fallback(self, name: str) -> bool:
        python_class = getattr(self.metaclass, "python_class", None)
        return (python_class is not None
                and getattr(python_class, name, None) is not None)

    def conforms_to(self, other: ObjectTypeView) -> bool:
        if isinstance(other, MetaClassView):
            return self.metaclass.conforms_to(other.metaclass)
        return False

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, MetaClassView)
                and other.metaclass is self.metaclass)

    def __hash__(self) -> int:
        return hash(id(self.metaclass))


# ---------------------------------------------------------------------------
# Issues and environment
# ---------------------------------------------------------------------------


@dataclass
class TypeIssue:
    """One static finding inside an expression."""

    code: str
    message: str
    position: int = 0
    hint: str = ""

    def __str__(self) -> str:
        text = f"{self.code} at {self.position}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class TypeCheckResult:
    """Outcome of checking one expression."""

    type: OclType
    issues: List[TypeIssue] = field(default_factory=list)
    expression: str = ""

    @property
    def ok(self) -> bool:
        return not self.issues


class TypeEnv:
    """Variable and type-name bindings for one check."""

    def __init__(self, parent: Optional["TypeEnv"] = None):
        self.parent = parent
        self.vars: Dict[str, OclType] = {}
        self.types: Dict[str, OclType] = {}

    def child(self) -> "TypeEnv":
        return TypeEnv(parent=self)

    def define(self, name: str, ocl_type: OclType) -> None:
        self.vars[name] = ocl_type

    def define_type(self, name: str, ocl_type: OclType) -> None:
        self.types[name] = ocl_type

    def register_metapackage(self, package: MetaPackage) -> None:
        for pkg in package.all_packages():
            for name, classifier in pkg.classifiers.items():
                if isinstance(classifier, MetaClass):
                    obj = ObjectType(MetaClassView(classifier))
                    self.types.setdefault(name, obj)
                    self.types.setdefault(f"{pkg.name}::{name}", obj)

    def lookup_var(self, name: str) -> Optional[OclType]:
        env: Optional[TypeEnv] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return None

    def lookup_type(self, name: str) -> Optional[OclType]:
        env: Optional[TypeEnv] = self
        while env is not None:
            if name in env.types:
                return env.types[name]
            env = env.parent
        return None

    def known_names(self) -> List[str]:
        names: List[str] = []
        env: Optional[TypeEnv] = self
        while env is not None:
            names.extend(env.vars)
            names.extend(env.types)
            env = env.parent
        return names


# ---------------------------------------------------------------------------
# Operation signature tables
# ---------------------------------------------------------------------------

# Collection ops: name -> (argument spec, result spec).  Specs use small
# callables evaluated against (element type, checked arg types).
_ELEM = object()          # marker: the collection's element type
_SAME = object()          # marker: the source collection type itself

_PLAIN_COLLECTION_OPS: Dict[str, Tuple[Tuple[Any, ...], Any]] = {
    "size": ((), INTEGER),
    "isEmpty": ((), BOOLEAN),
    "notEmpty": ((), BOOLEAN),
    "first": ((), _ELEM),
    "last": ((), _ELEM),
    "at": ((INTEGER,), _ELEM),
    "includes": ((_ELEM,), BOOLEAN),
    "excludes": ((_ELEM,), BOOLEAN),
    "includesAll": ((_SAME,), BOOLEAN),
    "excludesAll": ((_SAME,), BOOLEAN),
    "including": ((_ELEM,), _SAME),
    "excluding": ((_ELEM,), _SAME),
    "count": ((_ELEM,), INTEGER),
    "sum": ((), "numeric-elem"),
    "max": ((), "numeric-elem"),
    "min": ((), "numeric-elem"),
    "avg": ((), REAL),
    "asSet": ((), "as:Set"),
    "asSequence": ((), "as:Sequence"),
    "asBag": ((), "as:Bag"),
    "asOrderedSet": ((), "as:OrderedSet"),
    "union": ((_SAME,), _SAME),
    "intersection": ((_SAME,), _SAME),
    "symmetricDifference": ((_SAME,), _SAME),
    "append": ((_ELEM,), _SAME),
    "prepend": ((_ELEM,), _SAME),
    "flatten": ((), "flatten"),
    "reverse": ((), _SAME),
    "indexOf": ((_ELEM,), INTEGER),
    "subSequence": ((INTEGER, INTEGER), _SAME),
}

_BOOLEAN_BODY_ITERATORS = {"select", "reject", "forAll", "exists",
                           "one", "any", "isUnique"}

_STRING_OPS: Dict[str, Tuple[Tuple[OclType, ...], OclType]] = {
    "size": ((), INTEGER),
    "concat": ((STRING,), STRING),
    "toUpperCase": ((), STRING),
    "toLowerCase": ((), STRING),
    "substring": ((INTEGER, INTEGER), STRING),
    "indexOf": ((STRING,), INTEGER),
    "startsWith": ((STRING,), BOOLEAN),
    "endsWith": ((STRING,), BOOLEAN),
    "contains": ((STRING,), BOOLEAN),
    "trim": ((), STRING),
    "toInteger": ((), INTEGER),
    "toReal": ((), REAL),
}

_NUMBER_OPS: Dict[str, Tuple[Tuple[OclType, ...], Any]] = {
    "abs": ((), "same"),
    "floor": ((), INTEGER),
    "round": ((), INTEGER),
    "max": ((REAL,), "common"),
    "min": ((REAL,), "common"),
    "toString": ((), STRING),
}


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class OclTypeChecker:
    """Infers a static type for every expression node, collecting issues."""

    def __init__(self, env: Optional[TypeEnv] = None):
        self.env = env or TypeEnv()

    # -- public entry ------------------------------------------------------

    def check(self, expression: Union[str, Node], *,
              self_type: Optional[OclType] = None,
              expect_boolean: bool = False) -> TypeCheckResult:
        text = expression if isinstance(expression, str) else ""
        issues: List[TypeIssue] = []
        if isinstance(expression, str):
            try:
                node = parse_cached(expression)
            except OclSyntaxError as exc:
                issues.append(TypeIssue(
                    "OCL008", f"syntax error: {str(exc).splitlines()[0]}",
                    getattr(exc, "position", 0) or 0))
                return TypeCheckResult(ANY, issues, text)
        else:
            node = expression
        state = _CheckState(self.env, issues, self_type)
        inferred = state.infer(node, self.env)
        if expect_boolean and not is_boolean(inferred):
            issues.append(TypeIssue(
                "OCL003",
                f"expression must be Boolean, inferred {inferred.name}",
                node.position,
                hint="invariants and guards must evaluate to true/false"))
        return TypeCheckResult(inferred, issues, text)


class _CheckState:
    """One traversal: environment threading plus issue collection."""

    def __init__(self, root_env: TypeEnv, issues: List[TypeIssue],
                 self_type: Optional[OclType]):
        self.root_env = root_env
        self.issues = issues
        self.self_type = self_type or ANY

    def error(self, code: str, node: Node, message: str,
              hint: str = "") -> OclType:
        self.issues.append(TypeIssue(code, message, node.position, hint))
        return ANY

    # -- dispatch ----------------------------------------------------------

    def infer(self, node: Node, env: TypeEnv) -> OclType:
        method = getattr(self, f"_infer_{type(node).__name__.lower()}", None)
        if method is None:
            return ANY
        return method(node, env)

    # -- leaves ------------------------------------------------------------

    def _infer_literal(self, node: Literal, env: TypeEnv) -> OclType:
        value = node.value
        if value is None:
            return VOID
        if isinstance(value, bool):
            return BOOLEAN
        if isinstance(value, int):
            return INTEGER
        if isinstance(value, float):
            return REAL
        return STRING

    def _infer_selfexpr(self, node: SelfExpr, env: TypeEnv) -> OclType:
        return self.self_type

    def _infer_ident(self, node: Ident, env: TypeEnv) -> OclType:
        bound = env.lookup_var(node.name)
        if bound is not None:
            return bound
        as_type = env.lookup_type(node.name)
        if as_type is not None:
            return TypeType(as_type)
        # implicit-self shorthand: a bare name may be a feature of self
        if isinstance(self.self_type, ObjectType):
            feature = self.self_type.view.feature_type(node.name)
            if feature is not None:
                return feature
            if self.self_type.view.has_fallback(node.name):
                return ANY
        hint = self._suggest(node.name, env)
        return self.error("OCL001", node,
                          f"unknown identifier '{node.name}'", hint)

    def _infer_typeref(self, node: TypeRef, env: TypeEnv) -> OclType:
        found = env.lookup_type(node.name)
        if found is None:
            return self.error("OCL007", node,
                              f"unknown type '{node.name}'")
        return TypeType(found)

    # -- literals with structure ------------------------------------------

    def _infer_collectionliteral(self, node: CollectionLiteral,
                                 env: TypeEnv) -> OclType:
        element: OclType = VOID
        for item in node.items:
            if isinstance(item, Range):
                for bound in (item.first, item.last):
                    bound_type = self.infer(bound, env)
                    if not conforms(bound_type, INTEGER):
                        self.error("OCL006", bound,
                                   f"range bounds must be Integer, got "
                                   f"{bound_type.name}")
                item_type: OclType = INTEGER
            else:
                item_type = self.infer(item, env)
            element = item_type if element == VOID \
                else common_type(element, item_type)
        if element == VOID:
            element = ANY
        return CollectionType(node.kind, element)

    def _infer_tupleliteral(self, node: TupleLiteral,
                            env: TypeEnv) -> OclType:
        return TupleType(tuple((name, self.infer(value, env))
                               for name, value in node.fields))

    def _infer_range(self, node: Range, env: TypeEnv) -> OclType:
        return CollectionType("Sequence", INTEGER)

    # -- navigation --------------------------------------------------------

    def _infer_nav(self, node: Nav, env: TypeEnv) -> OclType:
        source = self.infer(node.source, env)
        return self._navigate(node, source, node.name)

    def _navigate(self, node: Node, source: OclType, name: str) -> OclType:
        if isinstance(source, (_AnyType, _VoidType)):
            return ANY
        if isinstance(source, CollectionType):
            # implicit collect: navigate the element type, flatten
            inner = self._navigate(node, source.element, name)
            if isinstance(inner, CollectionType):
                return CollectionType("Collection", inner.element)
            if isinstance(inner, (_AnyType, _VoidType)):
                return CollectionType("Collection", ANY)
            return CollectionType("Collection", inner)
        if isinstance(source, TupleType):
            found = source.field_type(name)
            if found is None:
                return self.error(
                    "OCL001", node,
                    f"tuple has no field '{name}'",
                    hint=f"fields: "
                         f"{', '.join(n for n, _ in source.fields)}")
            return found
        if isinstance(source, ObjectType):
            feature = source.view.feature_type(name)
            if feature is not None:
                return feature
            if source.view.has_fallback(name):
                return ANY
            hint = ""
            close = difflib.get_close_matches(
                name, source.view.feature_names(), n=1)
            if close:
                hint = f"did you mean '{close[0]}'?"
            return self.error(
                "OCL001", node,
                f"'{source.name}' has no property '{name}'", hint)
        return self.error(
            "OCL009", node,
            f"cannot navigate '{name}' on {source.name} value",
            hint="only objects, tuples and collections are navigable")

    # -- operation calls ---------------------------------------------------

    def _infer_call(self, node: Call, env: TypeEnv) -> OclType:
        source = self.infer(node.source, env)
        name = node.name
        arg_types = [self.infer(arg, env) for arg in node.args]

        # universal OCL operations
        if name == "oclIsUndefined":
            self._expect_arity(node, name, arg_types, 0)
            return BOOLEAN
        if name in ("oclIsKindOf", "oclIsTypeOf", "oclAsType"):
            referent = self._type_argument(node, env)
            if name == "oclAsType":
                return referent if referent is not None else ANY
            return BOOLEAN
        if name == "allInstances":
            self._expect_arity(node, name, arg_types, 0)
            if isinstance(source, TypeType):
                return CollectionType("Set", source.referent)
            if isinstance(source, (_AnyType, _VoidType)):
                return CollectionType("Set", ANY)
            return self.error(
                "OCL002", node,
                f"allInstances() applies to type names, not "
                f"{source.name} values")

        if isinstance(source, (_AnyType, _VoidType)):
            return ANY
        if source == STRING:
            return self._table_call(node, name, arg_types, _STRING_OPS,
                                    "String")
        if source in NUMERICS:
            return self._number_call(node, source, name, arg_types)
        if isinstance(source, ObjectType):
            signature = source.view.operation_signature(name)
            if signature is not None:
                params, result = signature
                if len(arg_types) != len(params):
                    self.error("OCL005", node,
                               f"'{name}' expects {len(params)} "
                               f"argument(s), got {len(arg_types)}")
                else:
                    for index, (actual, expected) in enumerate(
                            zip(arg_types, params)):
                        if not conforms(actual, expected):
                            self.error(
                                "OCL006", node.args[index],
                                f"argument {index + 1} of '{name}': "
                                f"expected {expected.name}, got "
                                f"{actual.name}")
                return result
            if source.view.has_fallback(name):
                return ANY
            return self.error(
                "OCL002", node,
                f"'{source.name}' has no operation '{name}()'")
        if isinstance(source, CollectionType):
            # dot-call over a collection: implicit collect of the call
            return CollectionType("Collection", ANY)
        return self.error(
            "OCL002", node,
            f"no operation '{name}()' on {source.name}")

    def _type_argument(self, node: Call, env: TypeEnv) -> Optional[OclType]:
        if len(node.args) != 1:
            self.error("OCL005", node,
                       f"'{node.name}' expects exactly one type argument")
            return None
        arg = node.args[0]
        type_name = arg.name if isinstance(arg, (Ident, TypeRef)) else None
        if type_name is None:
            self.error("OCL007", node,
                       f"'{node.name}' needs a type name argument")
            return None
        found = env.lookup_type(type_name)
        if found is None:
            self.error("OCL007", arg, f"unknown type '{type_name}'")
            return None
        return found

    def _table_call(self, node: Call, name: str,
                    arg_types: List[OclType],
                    table: Dict[str, Tuple[Tuple[OclType, ...], OclType]],
                    kind: str) -> OclType:
        entry = table.get(name)
        if entry is None:
            return self.error("OCL002", node,
                              f"no operation '{name}()' on {kind}")
        params, result = entry
        if not self._expect_arity(node, name, arg_types, len(params)):
            return result
        for index, (actual, expected) in enumerate(zip(arg_types, params)):
            if not conforms(actual, expected):
                self.error("OCL006", node.args[index],
                           f"argument {index + 1} of '{name}': expected "
                           f"{expected.name}, got {actual.name}")
        return result

    def _number_call(self, node: Call, source: OclType, name: str,
                     arg_types: List[OclType]) -> OclType:
        entry = _NUMBER_OPS.get(name)
        if entry is None:
            return self.error("OCL002", node,
                              f"no operation '{name}()' on {source.name}")
        params, result = entry
        if not self._expect_arity(node, name, arg_types, len(params)):
            return source
        for index, actual in enumerate(arg_types):
            if not is_numeric(actual):
                self.error("OCL006", node.args[index],
                           f"argument {index + 1} of '{name}' must be "
                           f"numeric, got {actual.name}")
        if result == "same":
            return source
        if result == "common":
            merged = source
            for actual in arg_types:
                if actual in NUMERICS:
                    merged = common_type(merged, actual)
            return merged
        return result

    def _expect_arity(self, node: Node, name: str,
                      arg_types: Sequence[OclType], count: int) -> bool:
        if len(arg_types) != count:
            self.error("OCL005", node,
                       f"'{name}' expects {count} argument(s), got "
                       f"{len(arg_types)}")
            return False
        return True

    # -- arrow calls -------------------------------------------------------

    def _infer_arrowcall(self, node: ArrowCall, env: TypeEnv) -> OclType:
        source = self.infer(node.source, env)
        if isinstance(source, CollectionType):
            collection = source
        elif isinstance(source, (_AnyType, _VoidType)):
            collection = CollectionType("Collection", ANY)
        else:
            # OCL semantics: an arrow op on a scalar wraps it in a Set
            collection = CollectionType("Set", source)
        if node.body is not None:
            return self._iterate(node, collection, env)
        return self._plain_collection_op(node, collection, env)

    def _iterate(self, node: ArrowCall, collection: CollectionType,
                 env: TypeEnv) -> OclType:
        child = env.child()
        for iterator in node.iterators:
            child.define(iterator, collection.element)
        body_type = self.infer(node.body, child)
        name = node.name
        if name in _BOOLEAN_BODY_ITERATORS and not is_boolean(body_type):
            self.error("OCL010", node.body,
                       f"body of '{name}' must be Boolean, inferred "
                       f"{body_type.name}")
        if name in ("select", "reject"):
            return collection
        if name in ("forAll", "exists", "one", "isUnique"):
            return BOOLEAN
        if name == "any":
            return collection.element
        if name == "collect":
            if isinstance(body_type, CollectionType):
                return CollectionType("Collection", body_type.element)
            return CollectionType("Collection", body_type)
        if name == "collectNested":
            return CollectionType("Sequence", body_type)
        if name == "sortedBy":
            if not (is_numeric(body_type) or body_type == STRING):
                self.error("OCL010", node.body,
                           f"'sortedBy' body must be comparable "
                           f"(number or String), inferred {body_type.name}")
            return CollectionType("Sequence", collection.element)
        if name == "closure":
            ok = conforms(body_type, collection.element) or (
                isinstance(body_type, CollectionType)
                and conforms(body_type.element, collection.element))
            if not ok:
                self.error("OCL010", node.body,
                           f"'closure' body must yield "
                           f"{collection.element.name} (or a collection "
                           f"of it), inferred {body_type.name}")
            return CollectionType("Set", collection.element)
        return self.error("OCL004", node,
                          f"unknown iterator operation '{name}'")

    def _plain_collection_op(self, node: ArrowCall,
                             collection: CollectionType,
                             env: TypeEnv) -> OclType:
        name = node.name
        entry = _PLAIN_COLLECTION_OPS.get(name)
        if entry is None:
            hint = ""
            close = difflib.get_close_matches(
                name, list(_PLAIN_COLLECTION_OPS), n=1)
            if close:
                hint = f"did you mean '->{close[0]}'?"
            return self.error("OCL004", node,
                              f"unknown collection operation '{name}'",
                              hint)
        params, result = entry
        arg_types = [self.infer(arg, env) for arg in node.args]
        if len(arg_types) != len(params):
            self.error("OCL005", node,
                       f"'->{name}' expects {len(params)} argument(s), "
                       f"got {len(arg_types)}")
            arg_types = arg_types[:len(params)]
        for index, (actual, expected) in enumerate(zip(arg_types, params)):
            if expected is _ELEM:
                if not (conforms(actual, collection.element)
                        or conforms(collection.element, actual)):
                    self.error(
                        "OCL006", node.args[index],
                        f"argument of '->{name}': expected "
                        f"{collection.element.name}, got {actual.name}")
            elif expected is _SAME:
                if not isinstance(actual,
                                  (CollectionType, _AnyType, _VoidType)):
                    self.error(
                        "OCL006", node.args[index],
                        f"argument of '->{name}' must be a collection, "
                        f"got {actual.name}")
            elif isinstance(expected, OclType):
                if not conforms(actual, expected):
                    self.error(
                        "OCL006", node.args[index],
                        f"argument {index + 1} of '->{name}': expected "
                        f"{expected.name}, got {actual.name}")
        if result is _ELEM:
            return collection.element
        if result is _SAME:
            return collection
        if result == "numeric-elem":
            if not is_numeric(collection.element) \
                    and collection.element != STRING:
                self.error("OCL006", node,
                           f"'->{name}' needs numeric elements, got "
                           f"{collection.element.name}")
            return collection.element
        if isinstance(result, str) and result.startswith("as:"):
            return CollectionType(result[3:], collection.element)
        if result == "flatten":
            element = collection.element
            while isinstance(element, CollectionType):
                element = element.element
            return CollectionType(collection.kind, element)
        return result  # a concrete OclType

    # -- operators ---------------------------------------------------------

    def _infer_unop(self, node: UnOp, env: TypeEnv) -> OclType:
        operand = self.infer(node.operand, env)
        if node.op == "not":
            if not is_boolean(operand):
                self.error("OCL006", node,
                           f"'not' needs a Boolean operand, got "
                           f"{operand.name}")
            return BOOLEAN
        if not is_numeric(operand):
            self.error("OCL006", node,
                       f"unary '-' needs a number, got {operand.name}")
            return ANY
        return operand if operand in NUMERICS else ANY

    def _infer_binop(self, node: BinOp, env: TypeEnv) -> OclType:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        op = node.op
        if op in ("and", "or", "xor", "implies"):
            for side, side_type in ((node.left, left), (node.right, right)):
                if not is_boolean(side_type):
                    self.error("OCL006", side,
                               f"'{op}' needs Boolean operands, got "
                               f"{side_type.name}")
            return BOOLEAN
        if op in ("=", "<>"):
            if self._definitely_incomparable(left, right):
                self.error("OCL006", node,
                           f"comparison {left.name} {op} {right.name} "
                           f"is always "
                           f"{'false' if op == '=' else 'true'}",
                           hint="the operand types can never be equal")
            return BOOLEAN
        if op in ("<", "<=", ">", ">="):
            both_numeric = is_numeric(left) and is_numeric(right)
            both_string = (left in (STRING, ANY, VOID)
                           and right in (STRING, ANY, VOID))
            if not (both_numeric or both_string):
                self.error("OCL006", node,
                           f"'{op}' cannot order {left.name} and "
                           f"{right.name}")
            return BOOLEAN
        if op in ("div", "mod"):
            self._require_numeric(node, op, left, right)
            return INTEGER
        if op == "/":
            self._require_numeric(node, op, left, right)
            return REAL
        if op in ("+", "-", "*"):
            if op == "+" and (left == STRING or right == STRING):
                if conforms(left, STRING) and conforms(right, STRING):
                    return STRING
            self._require_numeric(node, op, left, right)
            if left == REAL or right == REAL:
                return REAL
            if left == INTEGER and right == INTEGER:
                return INTEGER
            return ANY
        return ANY

    def _require_numeric(self, node: BinOp, op: str,
                         left: OclType, right: OclType) -> None:
        for side, side_type in ((node.left, left), (node.right, right)):
            if not is_numeric(side_type):
                self.error("OCL006", side,
                           f"'{op}' needs numeric operands, got "
                           f"{side_type.name}")

    @staticmethod
    def _definitely_incomparable(left: OclType, right: OclType) -> bool:
        concrete = (PrimitiveOclType,)
        if not (isinstance(left, concrete) and isinstance(right, concrete)):
            return False
        families = {INTEGER: "number", REAL: "number",
                    STRING: "string", BOOLEAN: "boolean"}
        return families[left] != families[right]

    # -- control forms -----------------------------------------------------

    def _infer_if(self, node: If, env: TypeEnv) -> OclType:
        condition = self.infer(node.condition, env)
        if not is_boolean(condition):
            self.error("OCL006", node.condition,
                       f"'if' condition must be Boolean, got "
                       f"{condition.name}")
        then_type = self.infer(node.then_branch, env)
        else_type = self.infer(node.else_branch, env)
        return common_type(then_type, else_type)

    def _infer_let(self, node: Let, env: TypeEnv) -> OclType:
        value_type = self.infer(node.value, env)
        child = env.child()
        child.define(node.name, value_type)
        return self.infer(node.body, child)

    # -- hints -------------------------------------------------------------

    def _suggest(self, name: str, env: TypeEnv) -> str:
        candidates = env.known_names()
        if isinstance(self.self_type, ObjectType):
            candidates = candidates + self.self_type.view.feature_names()
        close = difflib.get_close_matches(name, candidates, n=1)
        return f"did you mean '{close[0]}'?" if close else ""


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def env_for_metamodel(*packages: MetaPackage) -> TypeEnv:
    """A type environment whose type namespace covers *packages*."""
    env = TypeEnv()
    for package in packages:
        env.register_metapackage(package)
    return env


def typecheck(expression: Union[str, Node], *,
              context: Union[MetaClass, type, ObjectTypeView,
                             OclType, None] = None,
              env: Optional[TypeEnv] = None,
              expect_boolean: bool = False) -> TypeCheckResult:
    """Statically check *expression*.

    ``context`` types ``self``: a MetaClass (or Element subclass), an
    :class:`ObjectTypeView`, or a ready :class:`OclType`.  When a
    MetaClass is given and no *env*, its package populates the type
    namespace automatically.
    """
    if isinstance(context, type):
        context = getattr(context, "_meta", None)
    self_type: Optional[OclType] = None
    if isinstance(context, MetaClass):
        if env is None:
            env = TypeEnv()
            if context.package is not None:
                env.register_metapackage(context.package)
        self_type = ObjectType(MetaClassView(context))
    elif isinstance(context, ObjectTypeView):
        self_type = ObjectType(context)
    elif isinstance(context, OclType):
        self_type = context
    checker = OclTypeChecker(env or TypeEnv())
    return checker.check(expression, self_type=self_type,
                        expect_boolean=expect_boolean)
