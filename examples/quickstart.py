#!/usr/bin/env python3
"""Quickstart: model → validate → transform (PIM→PSM) → generate code.

The 60-second tour of the framework:

1. build a small object-oriented PIM with the :class:`ModelFactory`;
2. validate it (kernel structure + UML well-formedness);
3. map it onto the POSIX platform with the generic platform-parametric
   PIM→PSM engine;
4. compile the PSM to C through the language-neutral IR.

Run:  python examples/quickstart.py
"""

from repro.codegen import generate_c, lower_model
from repro.platforms import posix_platform, make_pim_to_psm
from repro.session import Session
from repro.uml import ModelFactory, StateMachine


def build_pim() -> ModelFactory:
    """A thermostat: one active controller class with a state machine."""
    factory = ModelFactory("thermostat")
    controller = factory.clazz(
        "Thermostat",
        attrs={"temperature": "Integer", "setpoint": "Integer"},
        is_active=True)
    factory.operation(controller, "calibrate",
                      params={"offset": "Integer"},
                      body="temperature := temperature + offset")

    machine = StateMachine(name="ThermostatSM")
    controller.owned_behaviors.append(machine)
    controller.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    idle = region.add_state("Idle")
    heating = region.add_state("Heating")
    region.add_transition(initial, idle)
    region.add_transition(idle, heating, trigger="sample",
                          guard="temperature < setpoint",
                          effect="temperature := temperature + 1")
    region.add_transition(heating, idle, trigger="sample",
                          guard="temperature >= setpoint")
    return factory


def main() -> None:
    factory = build_pim()
    model = factory.model

    print("== 1. the PIM ==")
    for element in model.packaged_elements:
        print(f"  {element.meta.name}: {element.name}")

    print("\n== 2. validation ==")
    checked = Session(model).check()
    print(f"  families: {', '.join(checked.families)}")
    print(f"  verdict: {'ok' if checked.ok else checked.render()}")

    print("\n== 3. PIM -> PSM (platform: POSIX RTOS) ==")
    platform = posix_platform()
    transformation = make_pim_to_psm(platform)
    result = transformation.run(model, platform=platform)
    psm = result.primary_root
    print(f"  transformation: {transformation.name}")
    print(f"  trace links: {len(result.trace)}")
    for element in psm.packaged_elements:
        print(f"  PSM member: {element.name}")

    print("\n== 4. model compilation (PSM -> IR -> C) ==")
    code = lower_model(psm)
    print(f"  IR: {code.stats()}")
    for filename, text in generate_c(code).items():
        print(f"\n---- {filename} ({text.count(chr(10))} lines) ----")
        print(text)


if __name__ == "__main__":
    main()
