#!/usr/bin/env python3
"""The classic MDA demo: one information model, two targets.

A webshop's *domain* information model (pure PIM, zero platform words)
is mapped two ways:

* onto a **relational platform** with the era-defining class→table
  transformation — the target metamodel (Schema/Table/Column/ForeignKey)
  is defined *dynamically* through the MOF kernel, and the schema prints
  as SQL DDL;
* onto the **POSIX platform** with the generic engine, printing C structs.

Both PSMs trace back to the same PIM elements, and the class diagram is
emitted as Graphviz DOT for documentation.

Run:  python examples/information_model.py
"""

from repro.codegen import generate_c, lower_model
from repro.method import check_domain_purity
from repro.platforms import make_pim_to_psm, posix_platform
from repro.transform import schema_to_sql, uml_to_relational
from repro.uml import ModelFactory, class_diagram


def build_pim() -> ModelFactory:
    factory = ModelFactory("webshop")
    customer = factory.clazz("Customer",
                             attrs={"name": "String", "age": "Integer"})
    order = factory.clazz("Order",
                          attrs={"total": "Real", "paid": "Boolean"})
    product = factory.clazz("Product",
                            attrs={"sku": "String", "price": "Real"})
    factory.associate(customer, order, end_b="orders", b_upper=-1)
    factory.associate(order, customer, end_b="buyer",
                      b_lower=1, b_upper=1)
    factory.associate(order, product, end_b="lines", b_upper=-1)
    factory.clazz("VipCustomer", supers=[customer],
                  attrs={"discount": "Real"})
    return factory


def main() -> None:
    factory = build_pim()

    print("== the PIM (domain information model) ==")
    purity = check_domain_purity(factory.model, [posix_platform()])
    print(f"  platform purity: {'clean' if purity.clean else purity}")
    print("  class diagram (Graphviz DOT, excerpt):")
    for line in class_diagram(factory.model).splitlines()[:8]:
        print("    " + line)

    print("\n== target 1: relational schema (class -> table) ==")
    transformation = uml_to_relational()
    result = transformation.run(factory.model)
    schema = result.primary_root
    print(f"  {transformation.name}: {len(result.trace)} trace links, "
          f"{len(schema.tables)} tables")
    print(schema_to_sql(schema))

    print("== target 2: POSIX C structs (same PIM) ==")
    platform = posix_platform()
    psm = make_pim_to_psm(platform).run(
        factory.model, platform=platform).primary_root
    text = "".join(generate_c(lower_model(psm)).values())
    struct_lines = [line for line in text.splitlines()
                    if "typedef struct" in line or line.startswith("} ")
                    or ("    " in line and ";" in line
                        and "(" not in line)]
    for line in struct_lines[:18]:
        print("  " + line)

    print("\n== traceability across both targets ==")
    customer = factory.model.member("Customer")
    table = result.trace.resolve(customer)
    print(f"  PIM 'Customer' -> relational table '{table.name}' "
          f"({len(table.columns)} columns)")
    print("  PIM 'Customer' -> C struct 'Customer' (posix PSM)")


if __name__ == "__main__":
    main()
