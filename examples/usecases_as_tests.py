#!/usr/bin/env python3
"""Use cases as tests, and why functional decomposition loses.

Reproduces the paper's §1 argument in executable form:

* a use case is captured as a requirement with realising interactions —
  then *replayed as a conformance test* against the class model's
  emergent behaviour (never "implemented" directly);
* the well-formedness rules catch the classic failure mode (lifelines
  that exist in no class diagram);
* the same functionality built twice — once as a proper OO collaboration
  and once as a use-case-driven functional decomposition — is compared
  with design metrics, showing the coupling / single-function-class /
  deep-inheritance pathology the paper describes.

Run:  python examples/usecases_as_tests.py
"""

from repro.session import Session
from repro.uml import (
    Actor,
    Interaction,
    ModelFactory,
    StateMachine,
    UseCase,
)
from repro.validation import (
    Collaboration,
    Scenario,
    compute_model_metrics,
    run_use_case_tests,
)


def build_oo_design():
    """ATM cash withdrawal as an object collaboration."""
    factory = ModelFactory("atm_oo")
    atm = factory.clazz("Atm", attrs={"dispensed": "Integer"},
                        is_active=True)
    account = factory.clazz("Account", attrs={"balance": "Integer"},
                            is_active=True)
    dispenser = factory.clazz("Dispenser", attrs={"notes": "Integer"},
                              is_active=True)
    factory.associate(atm, account, end_b="account", end_a="atm",
                      navigable_b_to_a=True)
    factory.associate(atm, dispenser, end_b="dispenser", end_a="atm",
                      navigable_b_to_a=True)

    atm_machine = StateMachine(name="AtmSM")
    atm.owned_behaviors.append(atm_machine)
    atm.classifier_behavior = atm_machine
    region = atm_machine.main_region()
    initial = region.add_initial()
    idle = region.add_state("Idle")
    checking = region.add_state("Checking")
    region.add_transition(initial, idle)
    region.add_transition(idle, checking, trigger="withdraw",
                          effect="send account.debit()")
    region.add_transition(checking, idle, trigger="approved",
                          effect="send dispenser.dispense()")
    region.add_transition(checking, idle, trigger="denied")

    account_machine = StateMachine(name="AccountSM")
    account.owned_behaviors.append(account_machine)
    account.classifier_behavior = account_machine
    account_region = account_machine.main_region()
    account_initial = account_region.add_initial()
    open_state = account_region.add_state("Open")
    account_region.add_transition(account_initial, open_state)
    account_region.add_transition(
        open_state, open_state, trigger="debit", kind="internal",
        guard="balance >= 100",
        effect="balance := balance - 100; send atm.approved()")
    account_region.add_transition(
        open_state, open_state, trigger="debit", kind="internal",
        guard="balance < 100", effect="send atm.denied()")

    dispenser_machine = StateMachine(name="DispenserSM")
    dispenser.owned_behaviors.append(dispenser_machine)
    dispenser.classifier_behavior = dispenser_machine
    dispenser_region = dispenser_machine.main_region()
    dispenser_initial = dispenser_region.add_initial()
    ready = dispenser_region.add_state("Ready")
    dispenser_region.add_transition(dispenser_initial, ready)
    dispenser_region.add_transition(
        ready, ready, trigger="dispense", kind="internal",
        effect="notes := notes + 5; send atm.done()")
    return factory, atm, account, dispenser


def build_functional_design():
    """The same functionality as a use-case-driven decomposition: one
    'controller' class per use-case step, chained by inheritance."""
    factory = ModelFactory("atm_functional")
    previous = factory.clazz("WithdrawCashStep")
    factory.operation(previous, "execute")
    steps = [previous]
    for step_name in ("ReadCard", "CheckPin", "CheckBalance",
                      "DebitAccount", "DispenseCash", "PrintReceipt"):
        cls = factory.clazz(f"{step_name}Step", supers=[previous])
        factory.operation(cls, "execute")
        steps.append(cls)
        previous = cls
    # every step talks to every other step (global-state style)
    for cls in steps:
        for other in steps:
            if cls is not other:
                factory.associate(cls, other,
                                  end_b=f"to_{other.name.lower()}")
    return factory


def main() -> None:
    factory, atm, account, dispenser = build_oo_design()
    model = factory.model

    print("== the use case, as requirement + scenario ==")
    customer = Actor(name="Customer")
    model.add(customer)
    withdraw = UseCase(name="WithdrawCash",
                       description="customer withdraws 100 from account")
    model.add(withdraw)
    withdraw.actors.append(customer)

    interaction = Interaction(name="happy-path")
    model.add(interaction)
    customer_line = interaction.add_lifeline("customer", customer)
    atm_line = interaction.add_lifeline("atm", atm)
    account_line = interaction.add_lifeline("account", account)
    dispenser_line = interaction.add_lifeline("dispenser", dispenser)
    interaction.add_message(customer_line, atm_line, "withdraw")
    interaction.add_message(atm_line, account_line, "debit")
    interaction.add_message(account_line, atm_line, "approved")
    interaction.add_message(atm_line, dispenser_line, "dispense")
    withdraw.scenarios.append(interaction)
    print(f"  use case '{withdraw.name}' testable: "
          f"{withdraw.is_testable()}")

    wf = Session(model).check(families=("wellformed",))
    print(f"  well-formedness: {'ok' if wf.ok else wf.render()}")

    print("\n== replaying the scenario against the collaboration ==")

    def sut() -> Collaboration:
        collab = Collaboration("atm")
        collab.create_object("atm", atm)
        collab.create_object("account", account, balance=250)
        collab.create_object("dispenser", dispenser)
        collab.link("atm", "account", "account")
        collab.link("account", "atm", "atm")
        collab.link("atm", "dispenser", "dispenser")
        collab.link("dispenser", "atm", "atm")
        return collab

    for result in run_use_case_tests(withdraw, sut):
        print(f"  {result.explain()}")

    print("\n  insufficient funds variant (emergent denial):")
    deny = Scenario("deny", [("atm", "account", "debit"),
                             ("account", "atm", "denied")],
                    stimuli=[("atm", "withdraw")])
    collab = Collaboration("atm2")
    collab.create_object("atm", atm)
    collab.create_object("account", account, balance=50)
    collab.create_object("dispenser", dispenser)
    collab.link("atm", "account", "account")
    collab.link("account", "atm", "atm")
    collab.link("atm", "dispenser", "dispenser")
    result = deny.run(collab)
    print(f"  {result.explain()}")
    print(f"  balance untouched: "
          f"{collab.attribute('account', 'balance')}")

    print("\n== OO vs use-case-driven decomposition (metrics) ==")
    oo_metrics = compute_model_metrics(model)
    functional_metrics = compute_model_metrics(
        build_functional_design().model)
    header = f"  {'metric':<26}{'OO design':>12}{'functional':>12}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    rows = [
        ("classes", oo_metrics.class_count,
         functional_metrics.class_count),
        ("coupling density", f"{oo_metrics.coupling_density:.2f}",
         f"{functional_metrics.coupling_density:.2f}"),
        ("avg CBO", f"{oo_metrics.avg_cbo:.2f}",
         f"{functional_metrics.avg_cbo:.2f}"),
        ("max inheritance depth", oo_metrics.max_dit,
         functional_metrics.max_dit),
        ("single-operation ratio",
         f"{oo_metrics.single_operation_ratio:.2f}",
         f"{functional_metrics.single_operation_ratio:.2f}"),
        ("deep-inheritance ratio",
         f"{oo_metrics.deep_inheritance_ratio:.2f}",
         f"{functional_metrics.deep_inheritance_ratio:.2f}"),
    ]
    for label, oo_value, functional_value in rows:
        print(f"  {label:<26}{oo_value!s:>12}{functional_value!s:>12}")
    print("\n  -> the paper's §1 pathology, measured: near-total coupling,"
          "\n     one function per class, inheritance as plumbing.")


if __name__ == "__main__":
    main()
