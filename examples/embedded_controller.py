#!/usr/bin/env python3
"""An embedded cruise-control unit: hierarchy, verification, timing, HW.

The systems-design side of the paper:

* a hierarchical state machine models the controller's modes;
* the *semantic* flattening transformation prepares it for execution;
* simulation animates a drive; the model checker verifies safety over
  every interleaving;
* the SPT profile proves the task set schedulable (utilisation bound +
  response-time analysis);
* the bare-metal platform mapping retypes everything to fixed-point HW
  types and the SystemC printer emits a hardware module.

Run:  python examples/embedded_controller.py
"""

from repro.codegen import generate_systemc, lower_model
from repro.platforms import baremetal_platform, make_pim_to_psm
from repro.profiles import SA_SCHEDULABLE, analyze_model
from repro.transform import flatten_state_machine, state_machine_to_table
from repro.uml import ModelFactory, StateMachine
from repro.validation import (
    Collaboration,
    check_collaboration,
    state_history,
    timeline,
)


def build_pim():
    factory = ModelFactory("cruise_unit")
    controller = factory.clazz(
        "Cruise", attrs={"speed": "Integer", "target": "Integer"},
        is_active=True)
    throttle = factory.clazz("Throttle", attrs={"level": "Integer"},
                             is_active=True)
    factory.associate(controller, throttle, end_b="throttle",
                      end_a="cruise", navigable_b_to_a=True)

    machine = StateMachine(name="CruiseSM")
    controller.owned_behaviors.append(machine)
    controller.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    off = region.add_state("Off")
    active = region.add_state("Active", entry="target := speed")
    inner = active.add_region("modes")
    inner_initial = inner.add_initial()
    steady = inner.add_state("Steady")
    accel = inner.add_state("Accelerating",
                            entry="send throttle.more()")
    inner.add_transition(inner_initial, steady)
    inner.add_transition(steady, accel, trigger="drag",
                         effect="speed := speed - 2")
    inner.add_transition(accel, steady, trigger="recovered",
                         effect="speed := target")
    region.add_transition(initial, off)
    region.add_transition(off, active, trigger="engage")
    region.add_transition(active, off, trigger="brake",
                          effect="send throttle.idle()")

    throttle_machine = StateMachine(name="ThrottleSM")
    throttle.owned_behaviors.append(throttle_machine)
    throttle.classifier_behavior = throttle_machine
    throttle_region = throttle_machine.main_region()
    throttle_initial = throttle_region.add_initial()
    ready = throttle_region.add_state("Ready")
    throttle_region.add_transition(throttle_initial, ready)
    throttle_region.add_transition(
        ready, ready, trigger="more", kind="internal",
        effect="level := level + 1; send cruise.recovered()")
    throttle_region.add_transition(
        ready, ready, trigger="idle", kind="internal",
        effect="level := 0")
    return factory, controller, throttle, machine


def build_collaboration(controller, throttle) -> Collaboration:
    collab = Collaboration("drive")
    collab.create_object("cruise", controller, speed=90)
    collab.create_object("throttle", throttle)
    collab.link("cruise", "throttle", "throttle")
    collab.link("throttle", "cruise", "cruise")
    return collab


def main() -> None:
    factory, controller, throttle, machine = build_pim()

    print("== semantic transformation: flattening the hierarchy ==")
    flat = flatten_state_machine(machine)
    for row in state_machine_to_table(flat):
        guard = f" [{row.guard}]" if row.guard else ""
        print(f"  {row.source:<18} --{row.trigger or 'ε'}{guard}--> "
              f"{row.target}")

    print("\n== simulation (animation) ==")
    collab = build_collaboration(controller, throttle)
    collab.start()
    collab.send("cruise", "engage")
    collab.send("cruise", "drag")
    collab.send("cruise", "brake")
    collab.run()
    print("  cruise state history:",
          " -> ".join(state_history(collab, "cruise")))
    print("  throttle level:", collab.attribute("throttle", "level"))
    print("  trace (sends only):")
    for line in timeline(collab, kinds=["send"]).splitlines():
        print("    " + line)

    print("\n== verification (model checking all interleavings) ==")
    checker_result = check_collaboration(
        build_collaboration(controller, throttle),
        [("cruise", "engage"), ("cruise", "drag"), ("cruise", "brake")],
        invariants={
            "throttle-bounded":
                lambda c: c.attribute("throttle", "level") <= 1,
        })
    print(f"  {checker_result.summary()}")
    for violation in checker_result.violations:
        print(f"  !! {violation}")

    print("\n== timing (SPT profile) ==")
    SA_SCHEDULABLE.apply(controller, sa_period_ms=20.0, sa_wcet_ms=4.0)
    SA_SCHEDULABLE.apply(throttle, sa_period_ms=10.0, sa_wcet_ms=2.0)
    report = analyze_model(factory.model)
    print(f"  {report.summary()}")
    for analysis in report.tasks:
        print(f"  task {analysis.task.name:<10} "
              f"T={analysis.task.period_ms:>5}ms "
              f"C={analysis.task.wcet_ms:>4}ms "
              f"R={analysis.response_ms:>5}ms "
              f"{'ok' if analysis.schedulable else 'MISS'}")

    print("\n== bare-metal PSM and SystemC hardware view ==")
    platform = baremetal_platform()
    psm = make_pim_to_psm(platform).run(factory.model,
                                        platform=platform).primary_root
    cruise_psm = [e for e in psm.packaged_elements
                  if e.name == "Cruise"][0]
    print("  retyped attributes:",
          {p.name: p.type.name for p in cruise_psm.owned_attributes
           if p.type is not None})
    code = lower_model(psm)
    for filename, text in generate_systemc(code).items():
        module_lines = [line for line in text.splitlines()
                        if "SC_MODULE" in line or "sc_int" in line]
        print(f"  {filename}:")
        for line in module_lines[:8]:
            print("    " + line.strip())


if __name__ == "__main__":
    main()
