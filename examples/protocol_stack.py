#!/usr/bin/env python3
"""A layered communication protocol stack — the Nokia-flavoured workload.

Demonstrates the full methodology on a telecom-style system:

* the ETSI communicating-systems profile builds a 4-layer stack PIM;
* an interaction realises the "send a message" use case and is replayed
  as a conformance test against the simulated stack (use cases as tests);
* the same PIM maps onto two very different platforms (POSIX RTOS and
  publish/subscribe middleware) through the one generic engine;
* QoS contracts are checked against platform latency estimates;
* C code is generated for the embedded target.

Run:  python examples/protocol_stack.py
"""

from repro.codegen import generate_c, lower_model
from repro.method import check_domain_purity, platform_content_ratio
from repro.platforms import (
    make_pim_to_psm,
    middleware_platform,
    posix_platform,
)
from repro.profiles import (
    QOS_OFFERED,
    QOS_REQUIRED,
    build_protocol_stack,
    check_contracts,
    estimate_path_latency_ms,
)
from repro.uml import ModelFactory
from repro.validation import Collaboration, Scenario, sequence_diagram

LAYERS = ["Session", "Transport", "Network", "Mac"]


def build_pim():
    factory = ModelFactory("comms")
    layers = build_protocol_stack(factory, LAYERS)
    return factory, layers


def build_stack_collaboration(layers) -> Collaboration:
    collab = Collaboration("stack")
    names = [layer.name.lower() for layer in layers]
    for name, layer in zip(names, layers):
        collab.create_object(name, layer)
    for upper, lower in zip(names, names[1:]):
        collab.link(upper, "lower", lower)
        collab.link(lower, "upper", upper)
    return collab


def main() -> None:
    factory, layers = build_pim()
    names = [layer.name.lower() for layer in layers]

    print("== the stack PIM ==")
    print("  layers (top to bottom):", " / ".join(LAYERS))
    purity = check_domain_purity(factory.model,
                                 [posix_platform(),
                                  middleware_platform()])
    print(f"  domain purity: {'clean' if purity.clean else purity}")

    print("\n== use case as a test: 'send one SDU' ==")
    expected = []
    for upper, lower in zip(names, names[1:]):
        expected.append((upper, lower, "tx_request"))
    for lower, upper in zip(reversed(names), reversed(names[:-1])):
        expected.append((lower, upper, "tx_confirm"))
    scenario = Scenario("send-sdu", expected,
                        stimuli=[(names[0], "tx_request")])
    collab = build_stack_collaboration(layers)
    result = scenario.run(collab)
    print(f"  conformance: {'PASS' if result.passed else result.explain()}")
    print("  emergent message flow:")
    print("\n".join("    " + line
                    for line in sequence_diagram(collab).splitlines()))

    print("\n== one PIM, two platforms ==")
    for platform in (posix_platform(), middleware_platform()):
        transformation = make_pim_to_psm(platform)
        psm = transformation.run(factory.model,
                                 platform=platform).primary_root
        ratio = platform_content_ratio(psm, platform)
        channels = [e.name for e in psm.all_members()
                    if "queue" in e.name or "topic" in e.name]
        print(f"  {platform.name:<12} platform-content={ratio:.2f} "
              f"channels={channels}")

    print("\n== QoS contract check ==")
    session, mac = layers[0], layers[-1]
    QOS_REQUIRED.apply(session, latency_ms=1.0)
    QOS_OFFERED.apply(mac, latency_ms=0.2)
    for check in check_contracts(factory.model):
        status = "ok" if check.passed else f"VIOLATED {check.problems}"
        print(f"  {check.client} -> {check.supplier}: {status}")
    posix = posix_platform()
    end_to_end = estimate_path_latency_ms(posix, hops=len(LAYERS) - 1,
                                          per_hop_processing_ms=0.05)
    print(f"  estimated end-to-end latency on {posix.name}: "
          f"{end_to_end:.3f} ms")

    print("\n== generated C for the POSIX target (excerpt) ==")
    psm = make_pim_to_psm(posix).run(factory.model,
                                     platform=posix).primary_root
    code = lower_model(psm)
    text = "".join(generate_c(code).values())
    dispatch_lines = [line for line in text.splitlines()
                      if "dispatch" in line or "typedef enum" in line]
    for line in dispatch_lines[:12]:
        print("  " + line.strip())
    print(f"  ... total generated: {text.count(chr(10))} lines of C")


if __name__ == "__main__":
    main()
