#!/usr/bin/env python3
"""Model evolution: interchange, diff, and the quality dashboard.

The day-2 story of a model-driven project: models live in files, change
over time, and every revision must answer "is it still good?".

* serialize the cruise-control PIM to the XMI dialect (stereotypes
  included) and reload it losslessly;
* evolve the model (add a class, retune a timing annotation, break a
  naming rule);
* diff old vs new revision structurally;
* regenerate the one-page quality report before and after;
* show the same operations through the command-line interface.

Run:  python examples/model_evolution.py
"""

import os
import subprocess
import sys
import tempfile

from repro.mof import Model, compare
from repro.profiles import SA_SCHEDULABLE, SPT
from repro.uml import ModelFactory, StateMachine, UML
from repro.session import Session
from repro.platforms import posix_platform
from repro.xmi import read_xml, write_xml


def build_revision_1() -> ModelFactory:
    factory = ModelFactory("gearbox")
    controller = factory.clazz("GearController",
                               attrs={"gear": "Integer"}, is_active=True)
    sensor = factory.clazz("RpmSensor", attrs={"rpm": "Integer"},
                           is_active=True)
    factory.associate(sensor, controller, end_b="controller",
                      end_a="sensor", navigable_b_to_a=True)
    machine = StateMachine(name="GearSM")
    controller.owned_behaviors.append(machine)
    controller.classifier_behavior = machine
    region = machine.main_region()
    initial = region.add_initial()
    neutral = region.add_state("Neutral")
    driving = region.add_state("Driving")
    region.add_transition(initial, neutral)
    region.add_transition(neutral, driving, trigger="clutch",
                          effect="gear := 1")
    region.add_transition(driving, neutral, trigger="stop",
                          effect="gear := 0")
    SA_SCHEDULABLE.apply(controller, sa_period_ms=20.0, sa_wcet_ms=3.0)
    SA_SCHEDULABLE.apply(sensor, sa_period_ms=5.0, sa_wcet_ms=1.0)
    return factory


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-evolution-")
    platform = posix_platform()

    print("== revision 1: build, report, persist ==")
    revision_1 = build_revision_1()
    report_1 = Session(revision_1.model).quality_report(platforms=[platform])
    print("\n".join("  " + line
                    for line in report_1.render().splitlines()))

    path_1 = os.path.join(workdir, "gearbox_r1.xmi")
    wrapper = Model("urn:gearbox", "gearbox")
    wrapper.add_root(revision_1.model)
    with open(path_1, "w") as handle:
        handle.write(write_xml(wrapper))
    print(f"\n  persisted to {path_1}")

    print("\n== reload: lossless, stereotypes intact ==")
    loaded = read_xml(open(path_1).read(), [UML], profiles=[SPT])
    controller = [e for e in loaded.all_elements()
                  if getattr(e, "name", "") == "GearController"][0]
    print(f"  reloaded {sum(1 for _ in loaded.all_elements())} elements; "
          f"«SASchedulable» period on GearController: "
          f"{SA_SCHEDULABLE.value_on(controller, 'sa_period_ms')} ms")
    assert write_xml(loaded) == open(path_1).read()
    print("  round trip is byte-identical")

    print("\n== revision 2: evolve the reloaded model ==")
    root = loaded.roots[0]
    factory_like_member = root.member("GearController")
    from repro.uml import Clazz, Property
    display = Clazz(name="GearDisplay")
    display.owned_attributes.append(Property(name="digits"))
    root.add(display)
    factory_like_member.attribute("gear").name = "current_gear"
    print("  + class GearDisplay")
    print("  ~ renamed attribute gear -> current_gear")

    diff = compare(wrapper.roots[0], root)
    print(f"\n  structural diff ({diff.summary()}):")
    for difference in diff.differences:
        print(f"    {difference}")

    report_2 = Session(root).quality_report(platforms=[platform])
    print("\n  revision-2 quality: "
          + ("PASS" if report_2.passed else "FAIL"))
    warnings = report_2.section("uml well-formedness")
    for line in warnings.lines:
        print(f"    {line}")

    print("\n== the same toolchain from the shell ==")
    for args in (["validate", path_1],
                 ["metrics", path_1],
                 ["schedule", path_1]):
        command = [sys.executable, "-m", "repro", *args]
        print(f"  $ python -m repro {' '.join(args)}")
        output = subprocess.run(command, capture_output=True, text=True,
                                cwd=os.path.dirname(__file__) or ".")
        for line in output.stdout.strip().splitlines():
            print(f"    {line}")


if __name__ == "__main__":
    main()
